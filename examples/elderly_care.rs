//! Dementia anti-wandering scenario (the paper's motivating application).
//!
//! ```text
//! cargo run --release --example elderly_care
//! ```
//!
//! A resident of a two-story house wears a tracker. After a short
//! perimeter walk (done once by a caregiver), GEM watches the scan
//! stream. The simulated day includes two excursions; the example
//! reports when alerts fire and the detection latency for each exit.

use gem::core::{Gem, GemConfig};
use gem::rfsim::{waypoint_roam, Scenario, ScenarioConfig, TimeProfile};
use gem::signal::{Label, RecordSet};

fn main() {
    let mut cfg = ScenarioConfig::user(10); // the detached two-story house
    cfg.train_duration_s = 300.0;
    let scenario = Scenario::build(cfg);

    // Caregiver setup: one perimeter walk, both floors.
    let train_positions = scenario.training_positions();
    let mut rng = scenario.rng(0xE1DE);
    let train: RecordSet =
        scenario.sense_positions(&train_positions, &TimeProfile::QUIET, 0.0, &mut rng);
    println!("setup: {} training scans collected by the caregiver", train.len());
    let mut gem = Gem::fit(GemConfig::default(), &train);

    // A day in the life: inside → garden excursion → inside → street
    // excursion → inside. One scan every 2 seconds of walking.
    let inside: Vec<_> = scenario.world.inside_regions.clone();
    let garden = vec![scenario.world.outside_regions[1]]; // back yard
    let street = vec![scenario.world.outside_regions[3]]; // street / neighbor lot
    let mut segments: Vec<(&str, Label, Vec<gem::rfsim::Position>)> = Vec::new();
    let mut seg_rng = scenario.rng(0xDA11);
    segments.push((
        "morning indoors",
        Label::In,
        waypoint_roam(&inside, 0.6, 2.0, 120, &mut seg_rng),
    ));
    segments.push((
        "garden excursion",
        Label::Out,
        waypoint_roam(&garden, 0.8, 2.0, 40, &mut seg_rng),
    ));
    segments.push((
        "afternoon indoors",
        Label::In,
        waypoint_roam(&inside, 0.6, 2.0, 120, &mut seg_rng),
    ));
    segments.push((
        "street wandering",
        Label::Out,
        waypoint_roam(&street, 0.9, 2.0, 50, &mut seg_rng),
    ));
    segments.push((
        "evening indoors",
        Label::In,
        waypoint_roam(&inside, 0.5, 2.0, 100, &mut seg_rng),
    ));

    let mut t = 0.0f64;
    let mut false_alerts = 0usize;
    for (name, truth, positions) in segments {
        let records = scenario.sense_positions(&positions, &TimeProfile::QUIET, t, &mut rng);
        t += positions.len() as f64 * 2.0;
        let mut alerts = 0usize;
        let mut first_alert_scan: Option<usize> = None;
        for (i, rec) in records.iter().enumerate() {
            let decision = gem.infer(rec);
            if decision.label == Label::Out {
                alerts += 1;
                first_alert_scan.get_or_insert(i);
            }
        }
        match truth {
            Label::Out => {
                let latency = first_alert_scan
                    .map(|i| format!("{:.0} s after leaving", i as f64 * 2.0))
                    .unwrap_or_else(|| "MISSED".to_string());
                println!(
                    "{name:>18}: {alerts}/{} scans alerted — first alert {latency}",
                    records.len()
                );
            }
            Label::In => {
                false_alerts += alerts;
                println!("{name:>18}: {alerts}/{} scans alerted (false alerts)", records.len());
            }
        }
    }
    println!("\ntotal false alerts while indoors: {false_alerts}");
    println!("detector absorbed {} confident in-premises scans online", gem.detector().n_updates);
}
