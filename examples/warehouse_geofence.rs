//! Logistics scenario: freight must stay inside a warehouse area
//! (the paper's logistics-management motivation), evaluated with the
//! algorithm grid so the comparison of Table I can be reproduced on a
//! single scenario in seconds.
//!
//! ```text
//! cargo run --release --example warehouse_geofence
//! ```

use gem::baselines::{Inoa, InoaConfig, SignatureHome, SignatureHomeConfig};
use gem::core::{Gem, GemConfig};
use gem::eval::Confusion;
use gem::rfsim::{Scenario, ScenarioConfig};

fn main() {
    // The open-plan lab layout doubles as a small warehouse floor.
    let mut cfg = ScenarioConfig::lab();
    cfg.name = "warehouse".into();
    cfg.train_duration_s = 240.0;
    cfg.n_test_in = 120;
    cfg.n_test_out = 120;
    let dataset = Scenario::build(cfg).generate();
    println!(
        "warehouse dataset: {} training scans, {} test scans",
        dataset.train.len(),
        dataset.test.len()
    );

    // GEM.
    let mut gem = Gem::fit(GemConfig::default(), &dataset.train);
    let mut gem_c = Confusion::default();
    for t in &dataset.test {
        gem_c.record(t.label, gem.infer(&t.record).label);
    }

    // Two classical geofencing baselines on the same stream.
    let sh = SignatureHome::fit(SignatureHomeConfig::default(), &dataset.train);
    let mut sh_c = Confusion::default();
    for t in &dataset.test {
        sh_c.record(t.label, sh.infer(&t.record).0);
    }
    let inoa = Inoa::fit(InoaConfig::default(), &dataset.train);
    let mut inoa_c = Confusion::default();
    for t in &dataset.test {
        inoa_c.record(t.label, inoa.infer(&t.record).0);
    }

    println!("\n{:<16} {:>6} {:>6} {:>6}", "system", "F_in", "F_out", "acc");
    for (name, c) in [("GEM", gem_c), ("SignatureHome", sh_c), ("INOA", inoa_c)] {
        println!(
            "{:<16} {:>6.3} {:>6.3} {:>6.3}",
            name,
            c.in_metrics().f_score,
            c.out_metrics().f_score,
            c.accuracy()
        );
    }
}
