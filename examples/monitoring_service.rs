//! The server-side deployment story: a monitoring service with alert
//! debouncing, a background worker thread, and model persistence across
//! "restarts".
//!
//! ```text
//! cargo run --release --example monitoring_service
//! ```

use gem::core::{Gem, GemConfig};
use gem::rfsim::{Scenario, ScenarioConfig};
use gem::service::{Event, Monitor, MonitorConfig, Supervisor};

fn main() {
    let mut cfg = ScenarioConfig::user(5);
    cfg.train_duration_s = 240.0;
    cfg.n_test_in = 80;
    cfg.n_test_out = 80;
    let dataset = Scenario::build(cfg).generate();

    // Day 0: initial setup and training.
    let gem = Gem::fit(GemConfig::default(), &dataset.train);
    let model_path = std::env::temp_dir().join("gem_monitoring_example.json");
    gem.save(&model_path).expect("save model");
    println!("model trained and persisted to {}", model_path.display());

    // The service starts (possibly days later, after a restart): restore
    // the model and run the monitor on a worker thread.
    let gem = Gem::load(&model_path).expect("load model");
    let monitor = Monitor::new(gem, MonitorConfig { alert_after: 3, clear_after: 2 });
    let supervisor = Supervisor::spawn(monitor, 32);

    // Device uplink: scans arrive one by one.
    let n = dataset.test.len();
    for t in &dataset.test {
        supervisor.submit(t.record.clone());
    }

    // Alert handler: consume events as they stream out.
    let mut decisions = 0;
    while decisions < n {
        match supervisor.events().recv() {
            Ok(Event::Decision { .. }) => decisions += 1,
            Ok(Event::AlertRaised { timestamp_s, consecutive_out }) => {
                println!(
                    "t={timestamp_s:8.1}s  ALERT ({consecutive_out} consecutive outside scans)"
                );
            }
            Ok(Event::AlertCleared { timestamp_s }) => {
                println!("t={timestamp_s:8.1}s  alert cleared");
            }
            Err(_) => break,
        }
    }

    // Graceful shutdown: reclaim the monitor and persist the (self-
    // enhanced) model for the next session.
    let monitor = supervisor.shutdown();
    let stats = monitor.stats();
    println!(
        "\nsession: {} scans, {} in / {} out, {} alerts, {} online model updates",
        stats.scans, stats.in_decisions, stats.out_decisions, stats.alerts, stats.model_updates
    );
    monitor.gem().save(&model_path).expect("save updated model");
    println!("updated model persisted; next restart resumes from here");
    let _ = std::fs::remove_file(&model_path);
}
