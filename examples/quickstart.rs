//! Five-minute tour of GEM.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Simulates a small apartment, trains GEM on a perimeter walk, then
//! streams labeled test scans through the online in-out detector.

use gem::core::{Gem, GemConfig};
use gem::eval::Confusion;
use gem::rfsim::{Scenario, ScenarioConfig};
use gem::signal::Label;

fn main() {
    // 1. A simulated world standing in for the paper's Android data
    //    collection: user 3 lives in a ~50 m² apartment.
    let mut scenario_cfg = ScenarioConfig::user(3);
    scenario_cfg.train_duration_s = 240.0; // four-minute perimeter walk
    scenario_cfg.n_test_in = 100;
    scenario_cfg.n_test_out = 100;
    let scenario = Scenario::build(scenario_cfg);
    let dataset = scenario.generate();
    println!(
        "world: {:.0} m² premises, {} ambient APs, {} training scans",
        scenario.world.plan.area_m2(),
        scenario.world.aps.len(),
        dataset.train.len(),
    );

    // 2. Fit GEM: bipartite graph → BiSAGE embeddings → enhanced
    //    histogram detector. All hyperparameters default to the paper's.
    let mut gem = Gem::fit(GemConfig::default(), &dataset.train);
    println!(
        "trained: {} graph nodes, {} edges, final loss {:.3}",
        gem.graph().n_nodes(),
        gem.graph().n_edges(),
        gem.train_report().epoch_losses.last().copied().unwrap_or(f32::NAN),
    );

    // 3. Stream the test scans through online inference. Each call adds
    //    the scan to the graph, embeds it inductively, classifies it, and
    //    self-updates on highly confident in-premises samples.
    let mut confusion = Confusion::default();
    for labeled in &dataset.test {
        let decision = gem.infer(&labeled.record);
        confusion.record(labeled.label, decision.label);
    }

    let in_m = confusion.in_metrics();
    let out_m = confusion.out_metrics();
    println!("\nresults over {} scans:", confusion.total());
    println!("  in-premises  P {:.2}  R {:.2}  F {:.2}", in_m.precision, in_m.recall, in_m.f_score);
    println!(
        "  outside      P {:.2}  R {:.2}  F {:.2}",
        out_m.precision, out_m.recall, out_m.f_score
    );
    println!("  online updates absorbed: {}", gem.detector().n_updates);

    // 4. A scan full of never-seen MACs is an outlier by rule.
    let alien = gem.infer(&gem::signal::SignalRecord::from_pairs(
        0.0,
        [(gem::signal::MacAddr::from_raw(0xDEAD_BEEF), -40.0)],
    ));
    assert_eq!(alien.label, Label::Out);
    println!("\nan unknown-MAC scan is flagged {:?} (score {:.2})", alien.label, alien.score);
}
