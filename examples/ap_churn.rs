//! Robustness to AP dynamics (the paper's micro-benchmarks, Figs. 10–13):
//! MAC pruning and the two-state ON-OFF Markov model.
//!
//! ```text
//! cargo run --release --example ap_churn
//! ```

use gem::core::{Gem, GemConfig};
use gem::eval::Confusion;
use gem::rfsim::{prune_macs, MarkovOnOff, Scenario, ScenarioConfig};
use gem::signal::rng::child_rng;

fn f_scores(ds: &gem::signal::Dataset) -> (f64, f64) {
    let mut gem = Gem::fit(GemConfig::default(), &ds.train);
    let mut c = Confusion::default();
    for t in &ds.test {
        c.record(t.label, gem.infer(&t.record).label);
    }
    (c.in_metrics().f_score, c.out_metrics().f_score)
}

fn main() {
    let mut cfg = ScenarioConfig::user(6);
    cfg.train_duration_s = 240.0;
    cfg.n_test_in = 100;
    cfg.n_test_out = 100;
    let base = Scenario::build(cfg).generate();

    println!("baseline (no churn):");
    let (fi, fo) = f_scores(&base);
    println!("  F_in {fi:.3}  F_out {fo:.3}\n");

    println!("pruning MACs from the training set (paper Fig. 10):");
    for pct in [10usize, 25] {
        let mut ds = base.clone();
        let mut rng = child_rng(1, pct as u64);
        let removed = prune_macs(&mut ds.train, pct as f64 / 100.0, &mut rng);
        let (fi, fo) = f_scores(&ds);
        println!("  {pct:>2}% pruned ({} MACs gone): F_in {fi:.3}  F_out {fo:.3}", removed.len());
    }

    println!("\nAP ON-OFF Markov dynamics (paper Figs. 12–13):");
    for (p, q) in [(0.1, 0.9), (0.5, 0.5), (0.9, 0.1)] {
        let mut ds = base.clone();
        let chain = MarkovOnOff::new(p, q);
        let mut rng = child_rng(2, (p * 10.0) as u64);
        chain.apply(&mut ds, &mut rng);
        let (fi, fo) = f_scores(&ds);
        println!(
            "  p={p:.1} q={q:.1} (stationary ON {:.0}%): F_in {fi:.3}  F_out {fo:.3}",
            chain.stationary_on() * 100.0
        );
    }
}
