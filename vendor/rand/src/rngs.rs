//! RNG implementations. One algorithm only: xoshiro256++, the same
//! generator family the real `rand` uses for its small-fast RNGs —
//! excellent statistical quality, 4x u64 state, trivially portable.

use crate::{RngCore, SeedableRng};

/// SplitMix64 step — used to expand a 64-bit seed into full state and as
/// a stream-mixing finalizer elsewhere in the workspace.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ generator. Deterministic across platforms.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is the one forbidden point; SplitMix64 cannot
        // produce four zeros from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl StdRng {
    /// The raw xoshiro256++ state, for checkpointing a generator
    /// mid-stream (snapshot/restore must resume the exact sequence).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a previously captured [`StdRng::state`].
    /// The all-zero state is the generator's one forbidden fixed point
    /// and is remapped the same way seeding does.
    pub fn from_state(mut s: [u64; 4]) -> StdRng {
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // Reference sequence for xoshiro256++ with state {1, 2, 3, 4},
        // from the public reference implementation.
        let mut rng = StdRng { s: [1, 2, 3, 4] };
        let expect: [u64; 5] =
            [41943041, 58720359, 3588806011781223, 3591011842654386, 9228616714210784205];
        for e in expect {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seeding_is_splitmix() {
        let rng = StdRng::seed_from_u64(0);
        let mut sm = 0u64;
        let want =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        assert_eq!(rng.s, want);
    }
}
