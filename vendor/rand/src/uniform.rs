//! Uniform sampling over ranges: `rng.random_range(lo..hi)` and
//! `rng.random_range(lo..=hi)` for the integer and float types the
//! workspace uses.
//!
//! Integers use Lemire-style widening multiply with rejection, so every
//! value in the span is exactly equally likely. Floats use an affine map
//! of a 53-bit (f64) / 24-bit (f32) unit sample.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Sample a u64 uniformly in `[0, span)`, `span >= 1`.
#[inline]
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    if span == 1 {
        return 0;
    }
    // Widening-multiply rejection sampling (unbiased).
    let zone = span.wrapping_neg() % span; // number of biased low results
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

/// Types samplable over a user-provided range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Sample uniformly from `[lo, hi)` if `inclusive` is false, else
    /// `[lo, hi]`. Callers guarantee the range is non-empty.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as u64;
                let hi_w = hi as u64;
                if inclusive && lo_w == 0 && hi_w == <$t>::MAX as u64 && <$t>::MAX as u128 == u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let span = hi_w - lo_w + if inclusive { 1 } else { 0 };
                lo + sample_span(rng, span) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                // Shift to unsigned offset arithmetic to avoid overflow.
                let lo_w = (lo as i64).wrapping_sub(<$t>::MIN as i64) as u64;
                let hi_w = (hi as i64).wrapping_sub(<$t>::MIN as i64) as u64;
                let span = hi_w - lo_w + if inclusive { 1 } else { 0 };
                if span == 0 {
                    // Full u64-sized span (i64::MIN..=i64::MAX only).
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(sample_span(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty => $unit:expr),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let u: $t = $unit(rng);
                let v = lo + u * (hi - lo);
                // Guard against rounding up to the open upper bound.
                if v >= hi { <$t>::max(lo, hi - (hi - lo) * <$t>::EPSILON) } else { v }
            }
        }
    )*};
}

impl_sample_uniform_float!(
    f64 => |rng: &mut R| (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64),
    f32 => |rng: &mut R| (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
);

/// Range forms accepted by `random_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + std::fmt::Debug> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(
            self.start < self.end,
            "random_range: empty range {:?}..{:?}",
            self.start,
            self.end
        );
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + std::fmt::Debug> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "random_range: empty range {lo:?}..={hi:?}");
        T::sample_between(rng, lo, hi, true)
    }
}

#[cfg(test)]
mod tests {
    use crate::{RngExt, SeedableRng, StdRng};

    #[test]
    fn integer_uniformity_rough() {
        let mut rng = StdRng::seed_from_u64(123);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts={counts:?}");
        }
    }

    #[test]
    fn negative_ranges() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..10_000 {
            let v: i64 = rng.random_range(-1_000_000..-999_990);
            assert!((-1_000_000..-999_990).contains(&v));
        }
    }

    #[test]
    fn float_range_never_hits_open_bound() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..100_000 {
            let v: f32 = rng.random_range(0.0..1.0e-30);
            assert!(v < 1.0e-30);
        }
    }
}
