//! Minimal offline `rand` replacement.
//!
//! Implements exactly the surface this workspace uses: a xoshiro256++
//! `StdRng` seeded via SplitMix64 (`SeedableRng::seed_from_u64`), and the
//! `RngExt` extension trait with `random`, `random_range`, and
//! `random_bool`. Uniform sampling only — no distributions module.
//!
//! Determinism is part of the contract: for a fixed seed, every method
//! here produces an identical stream on every platform and build. Do not
//! change sampling algorithms without a migration plan for persisted
//! artifacts and golden tests.

pub mod rngs;
mod uniform;

pub use rngs::StdRng;
pub use uniform::{SampleRange, SampleUniform};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Construction from a `u64` seed. The only seeding path supported.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly over their "standard" domain:
/// floats in `[0, 1)`, integers over the full range, `bool` fair coin.
pub trait StandardUniform: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardUniform for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl StandardUniform for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardUniform for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardUniform for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardUniform for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Convenience sampling methods, blanket-implemented for every `RngCore`.
pub trait RngExt: RngCore {
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "random_bool p out of [0,1]: {p}");
        self.random::<f64>() < p
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn range_sampling_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u = rng.random_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn range_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "heads={heads}");
    }

    #[test]
    fn full_range_integers_hit_both_halves() {
        let mut rng = StdRng::seed_from_u64(5);
        let vals: Vec<i64> = (0..256).map(|_| rng.random()).collect();
        assert!(vals.iter().any(|&v| v < 0) && vals.iter().any(|&v| v > 0));
    }
}
