//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored value-based serde. No `syn`/`quote`: the input item is parsed
//! with a small recursive-descent walker over `proc_macro::TokenTree`s
//! and the impl is emitted as a source string.
//!
//! Supported item shapes (everything this workspace derives on):
//! - structs with named fields
//! - tuple structs (newtype semantics for a single field)
//! - unit structs
//! - enums with unit, tuple, and named-field variants
//!
//! Not supported (compile error, by design): generic items and
//! `#[serde(...)]` attributes — with one exception: `#[serde(default)]`
//! on a named field substitutes `Default::default()` when the field is
//! absent from the serialized object (schema evolution for snapshots).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit(gen_serialize(&item))
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit(gen_deserialize(&item))
}

fn emit(code: String) -> TokenStream {
    code.parse().unwrap_or_else(|e| panic!("serde_derive generated invalid code: {e}\n{code}"))
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

/// A named field plus its one recognized attribute.
struct Field {
    name: String,
    /// `#[serde(default)]`: substitute `Default::default()` when absent.
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor { toks: ts.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Skip outer attributes. `#[serde(...)]` is rejected loudly rather
    /// than silently ignored.
    fn skip_attrs(&mut self) {
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.next();
            if let Some(TokenTree::Group(g)) = self.next() {
                let mut inner = g.stream().into_iter();
                if let Some(TokenTree::Ident(id)) = inner.next() {
                    if id.to_string() == "serde" {
                        panic!("vendored serde_derive does not support #[serde(...)] attributes");
                    }
                }
            } else {
                panic!("malformed attribute");
            }
        }
    }

    /// Skip field attributes, recognizing `#[serde(default)]`. Any other
    /// `#[serde(...)]` content is rejected loudly. Returns whether the
    /// field carries `default`.
    fn take_field_attrs(&mut self) -> bool {
        let mut default = false;
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.next();
            let Some(TokenTree::Group(g)) = self.next() else {
                panic!("malformed attribute");
            };
            let mut inner = g.stream().into_iter();
            let Some(TokenTree::Ident(id)) = inner.next() else { continue };
            if id.to_string() != "serde" {
                continue;
            }
            let Some(TokenTree::Group(args)) = inner.next() else {
                panic!("malformed #[serde(...)] attribute");
            };
            for tok in args.stream() {
                match &tok {
                    TokenTree::Ident(id) if id.to_string() == "default" => default = true,
                    TokenTree::Punct(p) if p.as_char() == ',' => {}
                    other => panic!(
                        "vendored serde_derive only supports #[serde(default)] \
                         on fields, got {other}"
                    ),
                }
            }
        }
        default
    }

    fn skip_vis(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            self.next();
            if matches!(
                self.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected {what}, got {other:?}"),
        }
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch) {
            self.next();
            true
        } else {
            false
        }
    }

    /// Consume a type (after `:` in a field), stopping at a `,` outside
    /// any `<...>` nesting. Groups are single tokens, so parens/brackets
    /// never confuse the comma scan.
    fn skip_type(&mut self) {
        let mut angle = 0i32;
        while let Some(tok) = self.peek() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => return,
                    _ => {}
                }
            }
            self.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    cur.skip_attrs();
    cur.skip_vis();
    let keyword = cur.expect_ident("`struct` or `enum`");
    let name = cur.expect_ident("item name");
    if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic items ({name})");
    }
    let kind = match keyword.as_str() {
        "struct" => parse_struct_body(&mut cur, &name),
        "enum" => parse_enum_body(&mut cur, &name),
        other => panic!("cannot derive serde impls for `{other} {name}`"),
    };
    Item { name, kind }
}

fn parse_struct_body(cur: &mut Cursor, name: &str) -> ItemKind {
    match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            ItemKind::NamedStruct(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            ItemKind::TupleStruct(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
        other => panic!("unexpected token after `struct {name}`: {other:?}"),
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(body);
    let mut fields = Vec::new();
    loop {
        let default = cur.take_field_attrs();
        if cur.at_end() {
            break;
        }
        cur.skip_vis();
        let field = cur.expect_ident("field name");
        if !cur.eat_punct(':') {
            panic!("expected `:` after field `{field}`");
        }
        cur.skip_type();
        fields.push(Field { name: field, default });
        if !cur.eat_punct(',') {
            break;
        }
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut cur = Cursor::new(body);
    let mut count = 0usize;
    loop {
        cur.skip_attrs();
        if cur.at_end() {
            break;
        }
        cur.skip_vis();
        cur.skip_type();
        count += 1;
        if !cur.eat_punct(',') {
            break;
        }
    }
    count
}

fn parse_enum_body(cur: &mut Cursor, name: &str) -> ItemKind {
    let body = match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("unexpected token after `enum {name}`: {other:?}"),
    };
    let mut cur = Cursor::new(body);
    let mut variants = Vec::new();
    loop {
        cur.skip_attrs();
        if cur.at_end() {
            break;
        }
        let vname = cur.expect_ident("variant name");
        let kind = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let k = VariantKind::Tuple(count_tuple_fields(g.stream()));
                cur.next();
                k
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let k = VariantKind::Named(parse_named_fields(g.stream()));
                cur.next();
                k
            }
            _ => VariantKind::Unit,
        };
        if cur.eat_punct('=') {
            // Explicit discriminant on a unit variant: skip the expression.
            cur.skip_type();
        }
        variants.push(Variant { name: vname, kind });
        if !cur.eat_punct(',') {
            break;
        }
    }
    ItemKind::Enum(variants)
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn wrap_impl(body: String) -> String {
    format!(
        "const _: () = {{\n\
         extern crate serde as _serde;\n\
         #[automatically_derived]\n\
         #[allow(unused_variables, clippy::all)]\n\
         {body}\n\
         }};"
    )
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         _serde::Serialize::serialize(&self.{f})),"
                    )
                })
                .collect();
            format!("_serde::Value::Object(::std::vec![{entries}])")
        }
        ItemKind::TupleStruct(1) => "_serde::Serialize::serialize(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let entries: String =
                (0..*n).map(|i| format!("_serde::Serialize::serialize(&self.{i}),")).collect();
            format!("_serde::Value::Array(::std::vec![{entries}])")
        }
        ItemKind::UnitStruct => "_serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let arms: String = variants.iter().map(|v| gen_variant_ser(name, v)).collect();
            format!("match self {{ {arms} }}")
        }
    };
    wrap_impl(format!(
        "impl _serde::Serialize for {name} {{\n\
         fn serialize(&self) -> _serde::Value {{ {body} }}\n\
         }}"
    ))
}

fn gen_variant_ser(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => format!(
            "{name}::{vname} => \
             _serde::Value::Str(::std::string::String::from(\"{vname}\")),"
        ),
        VariantKind::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let payload = if *n == 1 {
                "_serde::Serialize::serialize(__f0)".to_string()
            } else {
                let items: String =
                    binds.iter().map(|b| format!("_serde::Serialize::serialize({b}),")).collect();
                format!("_serde::Value::Array(::std::vec![{items}])")
            };
            format!(
                "{name}::{vname}({}) => _serde::Value::Object(::std::vec![\
                 (::std::string::String::from(\"{vname}\"), {payload})]),",
                binds.join(", ")
            )
        }
        VariantKind::Named(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         _serde::Serialize::serialize({f})),"
                    )
                })
                .collect();
            let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
            format!(
                "{name}::{vname} {{ {} }} => _serde::Value::Object(::std::vec![\
                 (::std::string::String::from(\"{vname}\"), \
                 _serde::Value::Object(::std::vec![{entries}]))]),",
                binds.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let inits: String =
                fields.iter().map(|f| gen_named_field_de(name, "__fields", f)).collect();
            format!(
                "let __fields = __value.as_object().ok_or_else(|| \
                 _serde::Error::type_mismatch(\"struct {name}\", __value))?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        ItemKind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(_serde::Deserialize::deserialize(__value)?))")
        }
        ItemKind::TupleStruct(n) => {
            let inits: String = (0..*n)
                .map(|i| format!("_serde::Deserialize::deserialize(&__items[{i}])?,"))
                .collect();
            format!(
                "let __items = __value.as_array().ok_or_else(|| \
                 _serde::Error::type_mismatch(\"tuple struct {name}\", __value))?;\n\
                 if __items.len() != {n} {{\n\
                 return ::std::result::Result::Err(_serde::Error::custom(\
                 ::std::format!(\"expected {n} elements for {name}, got {{}}\", __items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({inits}))"
            )
        }
        ItemKind::UnitStruct => format!(
            "match __value {{\n\
             _serde::Value::Null => ::std::result::Result::Ok({name}),\n\
             __other => ::std::result::Result::Err(\
             _serde::Error::type_mismatch(\"unit struct {name}\", __other)),\n\
             }}"
        ),
        ItemKind::Enum(variants) => gen_enum_de(name, variants),
    };
    wrap_impl(format!(
        "impl _serde::Deserialize for {name} {{\n\
         fn deserialize(__value: &_serde::Value) -> \
         ::std::result::Result<Self, _serde::Error> {{\n{body}\n}}\n\
         }}"
    ))
}

/// One `field: <expr>,` initializer for a named field. `#[serde(default)]`
/// fields tolerate absence by substituting `Default::default()`.
fn gen_named_field_de(ty: &str, fields_bind: &str, f: &Field) -> String {
    let name = &f.name;
    if f.default {
        format!(
            "{name}: match _serde::get_field_opt({fields_bind}, \"{name}\") {{\n\
             ::std::option::Option::Some(__v) => _serde::Deserialize::deserialize(__v)?,\n\
             ::std::option::Option::None => ::std::default::Default::default(),\n\
             }},"
        )
    } else {
        format!(
            "{name}: _serde::Deserialize::deserialize(\
             _serde::get_field({fields_bind}, \"{ty}\", \"{name}\")?)?,"
        )
    }
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            format!(
                "\"{vname}\" => return ::std::result::Result::Ok({name}::{vname}),",
                vname = v.name
            )
        })
        .collect();
    let data_arms: String = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Unit => None,
                VariantKind::Tuple(1) => Some(format!(
                    "\"{vname}\" => return ::std::result::Result::Ok(\
                     {name}::{vname}(_serde::Deserialize::deserialize(__inner)?)),"
                )),
                VariantKind::Tuple(n) => {
                    let inits: String = (0..*n)
                        .map(|i| format!("_serde::Deserialize::deserialize(&__items[{i}])?,"))
                        .collect();
                    Some(format!(
                        "\"{vname}\" => {{\n\
                         let __items = __inner.as_array().ok_or_else(|| \
                         _serde::Error::type_mismatch(\"{name}::{vname} payload\", __inner))?;\n\
                         if __items.len() != {n} {{\n\
                         return ::std::result::Result::Err(_serde::Error::custom(\
                         \"wrong payload arity for {name}::{vname}\"));\n\
                         }}\n\
                         return ::std::result::Result::Ok({name}::{vname}({inits}));\n\
                         }}"
                    ))
                }
                VariantKind::Named(fields) => {
                    let inits: String = fields
                        .iter()
                        .map(|f| gen_named_field_de(&format!("{name}::{vname}"), "__vfields", f))
                        .collect();
                    Some(format!(
                        "\"{vname}\" => {{\n\
                         let __vfields = __inner.as_object().ok_or_else(|| \
                         _serde::Error::type_mismatch(\"{name}::{vname} payload\", __inner))?;\n\
                         return ::std::result::Result::Ok({name}::{vname} {{ {inits} }});\n\
                         }}"
                    ))
                }
            }
        })
        .collect();
    format!(
        "if let _serde::Value::Str(__s) = __value {{\n\
         match __s.as_str() {{ {unit_arms} _ => {{}} }}\n\
         }}\n\
         if let _serde::Value::Object(__obj) = __value {{\n\
         if __obj.len() == 1 {{\n\
         let (__tag, __inner) = &__obj[0];\n\
         match __tag.as_str() {{ {data_arms} _ => {{}} }}\n\
         }}\n\
         }}\n\
         ::std::result::Result::Err(_serde::Error::custom(\
         ::std::format!(\"invalid value for enum {name}: {{}}\", __value.kind())))"
    )
}
