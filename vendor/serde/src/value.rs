//! The interchange tree. Numeric values keep three variants (`U64`,
//! `I64`, `F64`) so integers survive round-trips without precision loss
//! and floats keep their exact bit patterns via shortest-round-trip
//! formatting in `serde_json`.

#[derive(Debug, Clone, Default, PartialEq)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Objects preserve insertion order; duplicate keys are not produced
    /// by derived impls and the first match wins on lookup.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) => "unsigned integer",
            Value::I64(_) => "signed integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric coercion to u64 (exact only).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// Numeric coercion to i64 (exact only).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }

    /// Numeric coercion to f64; integers convert (possibly rounding,
    /// as in JSON where `1` is a valid float).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            _ => None,
        }
    }
}
