//! Minimal offline `serde` replacement.
//!
//! Instead of serde's visitor architecture, this uses a concrete
//! [`Value`] tree as the interchange type: `Serialize` renders a value
//! into a `Value`, `Deserialize` reads one back. `serde_json` (vendored)
//! converts `Value` to and from JSON text. The only compatibility goal is
//! self-consistency — anything this workspace serializes must round-trip
//! bit-exactly — not wire compatibility with upstream serde.

mod impls;
mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

use std::fmt;

/// Serialization/deserialization error. A message string is all the
/// workspace ever inspects (via `Display`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error(format!("missing field `{field}` for `{ty}`"))
    }

    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        Error(format!("expected {expected}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn serialize(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Look up a struct field in an object body. Used by derived impls.
pub fn get_field<'v>(
    fields: &'v [(String, Value)],
    ty: &str,
    name: &str,
) -> Result<&'v Value, Error> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::missing_field(ty, name))
}

/// Optional field lookup for `#[serde(default)]` fields: absence is not
/// an error, the derived impl substitutes `Default::default()`.
pub fn get_field_opt<'v>(fields: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn primitives_round_trip() {
        fn rt<T: Serialize + Deserialize + PartialEq + fmt::Debug>(v: T) {
            let val = v.serialize();
            assert_eq!(T::deserialize(&val).unwrap(), v);
        }
        rt(0u8);
        rt(255u8);
        rt(u64::MAX);
        rt(i64::MIN);
        rt(-1i32);
        rt(3.5f32);
        rt(std::f64::consts::PI);
        rt(true);
        rt(String::from("héllo \"quoted\"\n"));
        rt(Some(42u32));
        rt(Option::<u32>::None);
        rt(vec![1u64, 2, 3]);
        rt((1u32, -2i64, 0.5f64));
    }

    #[test]
    fn map_round_trip() {
        let mut m = HashMap::new();
        m.insert(7u64, vec![1.0f32, 2.0]);
        m.insert(9u64, vec![]);
        let val = m.serialize();
        let back: HashMap<u64, Vec<f32>> = Deserialize::deserialize(&val).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn float_precision_preserved() {
        let x = 0.1f32 + 0.2f32;
        let v = x.serialize();
        assert_eq!(f32::deserialize(&v).unwrap().to_bits(), x.to_bits());
        let y = 0.1f64 + 0.2f64;
        let v = y.serialize();
        assert_eq!(f64::deserialize(&v).unwrap().to_bits(), y.to_bits());
    }

    #[test]
    fn missing_field_error_mentions_name() {
        let obj = Value::Object(vec![]);
        let fields = match &obj {
            Value::Object(f) => f,
            _ => unreachable!(),
        };
        let err = get_field(fields, "Foo", "bar").unwrap_err();
        assert!(err.to_string().contains("bar"));
    }
}
