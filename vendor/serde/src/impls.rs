//! `Serialize`/`Deserialize` implementations for std types used by the
//! workspace: primitives, `String`, `Option`, `Vec`, arrays-as-vecs are
//! not needed, tuples up to 4, and hash/btree maps. Maps serialize as
//! arrays of `[key, value]` pairs so non-string keys work uniformly.

use crate::{Deserialize, Error, Serialize, Value};
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| Error::type_mismatch(stringify!($t), value))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!(
                        "value {raw} out of range for {}", stringify!($t)
                    )))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| Error::type_mismatch(stringify!($t), value))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!(
                        "value {raw} out of range for {}", stringify!($t)
                    )))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::type_mismatch("f64", value))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        // Widening f32 -> f64 is exact; narrowing back recovers the
        // original bit pattern.
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_f64().map(|v| v as f32).ok_or_else(|| Error::type_mismatch("f32", value))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::type_mismatch("bool", value)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_owned).ok_or_else(|| Error::type_mismatch("string", value))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = value.as_str().ok_or_else(|| Error::type_mismatch("char", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::type_mismatch("array", value))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) => $len:literal),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::type_mismatch("tuple array", value))?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected tuple of {}, got array of {}", $len, items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple!(
    (A: 0) => 1,
    (A: 0, B: 1) => 2,
    (A: 0, B: 1, C: 2) => 3,
    (A: 0, B: 1, C: 2, D: 3) => 4
);

fn serialize_pairs<'a, K: Serialize + 'a, V: Serialize + 'a>(
    pairs: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Array(pairs.map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()])).collect())
}

fn deserialize_pairs<K: Deserialize, V: Deserialize>(value: &Value) -> Result<Vec<(K, V)>, Error> {
    let items =
        value.as_array().ok_or_else(|| Error::type_mismatch("map (array of pairs)", value))?;
    items
        .iter()
        .map(|pair| {
            let kv =
                pair.as_array().ok_or_else(|| Error::type_mismatch("[key, value] pair", pair))?;
            if kv.len() != 2 {
                return Err(Error::custom("map entry must be a [key, value] pair"));
            }
            Ok((K::deserialize(&kv[0])?, V::deserialize(&kv[1])?))
        })
        .collect()
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        // Sort entries by serialized key text so output is deterministic
        // across hasher states (important for snapshot diffing).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                (format!("{:?}", k.serialize()), Value::Array(vec![k.serialize(), v.serialize()]))
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Array(entries.into_iter().map(|(_, v)| v).collect())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(deserialize_pairs::<K, V>(value)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        serialize_pairs(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(deserialize_pairs::<K, V>(value)?.into_iter().collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value.as_array().ok_or_else(|| Error::type_mismatch("array", value))?;
        if items.len() != N {
            return Err(Error::custom(format!("expected {N}-element array, got {}", items.len())));
        }
        let vec: Vec<T> = items.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        vec.try_into().map_err(|_| Error::custom("array length changed during conversion"))
    }
}

/// Identity impls so a [`Value`] can pass through derived structs
/// untouched (schema-free sidecar fields).
impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
