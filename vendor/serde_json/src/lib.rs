//! Minimal offline `serde_json`: JSON text <-> the vendored serde
//! [`Value`] tree.
//!
//! Two deliberate extensions beyond strict JSON, so float round-trips
//! never lose information: non-finite numbers serialize as the bare
//! tokens `NaN`, `inf`, `-inf` and are accepted back by the parser.
//! Floats print with Rust's shortest-round-trip formatting and always
//! carry a `.`/exponent so they re-parse as floats, not integers.

pub use serde::Error;
pub use serde::Value;

pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.serialize(), &mut out);
    Ok(out)
}

/// Two-space-indented rendering, for human-inspected files (manifests).
/// Parses back identically to the compact form.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit_pretty(&value.serialize(), 0, &mut out);
    Ok(out)
}

pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::deserialize(&value)
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn emit(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => emit_f64(*x, out),
        Value::Str(s) => emit_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_string(key, out);
                out.push(':');
                emit(val, out);
            }
            out.push('}');
        }
    }
}

fn emit_pretty(value: &Value, indent: usize, out: &mut String) {
    let pad = |out: &mut String, n: usize| out.push_str(&"  ".repeat(n));
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                emit_pretty(item, indent + 1, out);
            }
            out.push('\n');
            pad(out, indent);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                emit_string(key, out);
                out.push_str(": ");
                emit_pretty(val, indent + 1, out);
            }
            out.push('\n');
            pad(out, indent);
            out.push('}');
        }
        other => emit(other, out),
    }
}

fn emit_f64(x: f64, out: &mut String) {
    if x.is_nan() {
        out.push_str("NaN");
    } else if x.is_infinite() {
        out.push_str(if x > 0.0 { "inf" } else { "-inf" });
    } else {
        // `{:?}` is Rust's shortest representation that round-trips
        // exactly; it always includes a '.' or an exponent.
        let s = format!("{x:?}");
        out.push_str(&s);
        debug_assert!(s.contains('.') || s.contains('e') || s.contains('E'));
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser { text, bytes: text.as_bytes(), pos: 0 };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!("expected '{}' at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::F64(f64::NAN)),
            Some(b'i') if self.eat_keyword("inf") => Ok(Value::F64(f64::INFINITY)),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-inf") => {
                self.pos += 4;
                Ok(Value::F64(f64::NEG_INFINITY))
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::custom(format!(
                "unexpected character '{}' at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::custom(format!("expected ',' or '}}' at byte {}", self.pos)))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!("expected ',' or ']' at byte {}", self.pos)))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape {other:?} at byte {}",
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the whole run up to the next quote or escape
                    // in one slice. The stop bytes are ASCII and cannot
                    // occur inside a multi-byte UTF-8 sequence, so both
                    // ends land on character boundaries and the input
                    // (already a &str) needs no re-validation.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(&self.text[start..self.pos]);
                }
            }
        }
    }

    /// Called with `pos` on the `u`; consumes `uXXXX` (and a low
    /// surrogate pair if needed), leaving `pos` after the escape.
    fn unicode_escape(&mut self) -> Result<char, Error> {
        self.pos += 1;
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            if !self.bytes[self.pos..].starts_with(b"\\u") {
                return Err(Error::custom("unpaired high surrogate"));
            }
            self.pos += 2;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(Error::custom("invalid low surrogate"));
            }
            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(cp).ok_or_else(|| Error::custom("invalid surrogate pair"))
        } else {
            char::from_u32(hi).ok_or_else(|| Error::custom("invalid \\u escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| Error::custom("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::custom("bad hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number bytes"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error::custom(format!("bad float `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error::custom(format!("bad integer `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error::custom(format!("bad integer `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(text: &str) -> Value {
        parse(text).unwrap()
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(rt("null"), Value::Null);
        assert_eq!(rt("true"), Value::Bool(true));
        assert_eq!(rt(" 42 "), Value::U64(42));
        assert_eq!(rt("-17"), Value::I64(-17));
        assert_eq!(rt("2.5"), Value::F64(2.5));
        assert_eq!(rt("1e3"), Value::F64(1000.0));
        assert_eq!(rt("\"a\\nb\""), Value::Str("a\nb".into()));
    }

    #[test]
    fn parse_nested() {
        let v = rt(r#"{"a":[1,2,{"b":null}],"c":"x"}"#);
        let obj = v.as_object().unwrap();
        assert_eq!(obj.len(), 2);
        assert_eq!(obj[0].0, "a");
        assert_eq!(obj[0].1.as_array().unwrap().len(), 3);
    }

    #[test]
    fn emit_parse_round_trip() {
        let v = Value::Object(vec![
            ("f".into(), Value::F64(0.1 + 0.2)),
            ("i".into(), Value::I64(-9_007_199_254_740_993)),
            ("u".into(), Value::U64(u64::MAX)),
            ("s".into(), Value::Str("quote\" slash\\ tab\t unicode é 中".into())),
            ("n".into(), Value::Null),
            ("arr".into(), Value::Array(vec![Value::Bool(false), Value::F64(f64::INFINITY)])),
        ]);
        let mut text = String::new();
        emit(&v, &mut text);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn non_finite_floats() {
        let mut s = String::new();
        emit(&Value::F64(f64::NAN), &mut s);
        assert_eq!(s, "NaN");
        assert!(matches!(rt("NaN"), Value::F64(x) if x.is_nan()));
        assert_eq!(rt("-inf"), Value::F64(f64::NEG_INFINITY));
    }

    #[test]
    fn float_bits_survive_text_round_trip() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e-300, 6.02214076e23, -0.0] {
            let mut s = String::new();
            emit(&Value::F64(x), &mut s);
            match parse(&s).unwrap() {
                Value::F64(y) => assert_eq!(x.to_bits(), y.to_bits(), "{s}"),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn typed_round_trip_via_api() {
        let v: Vec<Option<f32>> = vec![Some(1.5), None, Some(-0.25)];
        let text = to_string(&v).unwrap();
        let back: Vec<Option<f32>> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("'single'").is_err());
    }
}
