//! Minimal offline `criterion` replacement: a wall-clock benchmark
//! harness with the same macro/builder surface the workspace benches
//! use, but a much simpler measurement model.
//!
//! Measurement: each benchmark is calibrated to pick an iteration count
//! whose batch runtime is ~`target_batch` (default 25 ms), then
//! `sample_size` batches are timed and the median per-iteration time is
//! reported. A wall-clock cap bounds runaway benchmarks.
//!
//! Environment knobs:
//! - `CRITERION_SAMPLES`  — override every group's sample size
//! - `CRITERION_MAX_SECS` — per-benchmark wall-clock cap (default 10 s)

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Debug)]
pub struct BenchReport {
    pub group: String,
    pub name: String,
    pub median_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
    pub samples: usize,
    pub iters_per_sample: u64,
}

#[derive(Default)]
pub struct Criterion {
    reports: Vec<BenchReport>,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, group: name.into(), sample_size: 100 }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }

    pub fn reports(&self) -> &[BenchReport] {
        &self.reports
    }

    /// Print a summary of every recorded benchmark. Called by
    /// `criterion_main!` after all groups run.
    pub fn final_summary(&self) {
        for r in &self.reports {
            let label =
                if r.group.is_empty() { r.name.clone() } else { format!("{}/{}", r.group, r.name) };
            println!(
                "{label:<48} time: [{} {} {}]  ({} samples x {} iters)",
                fmt_ns(r.min_ns),
                fmt_ns(r.median_ns),
                fmt_ns(r.max_ns),
                r.samples,
                r.iters_per_sample
            );
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let samples = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.sample_size)
            .max(2);
        let max_secs: f64 =
            std::env::var("CRITERION_MAX_SECS").ok().and_then(|s| s.parse().ok()).unwrap_or(10.0);

        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };

        // Calibration: grow the iteration count until one batch takes
        // at least ~target_batch, or a single iteration already exceeds it.
        let target_batch = Duration::from_millis(25);
        loop {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            if bencher.elapsed >= target_batch || bencher.iters >= 1 << 20 {
                break;
            }
            let grow = if bencher.elapsed.is_zero() {
                16
            } else {
                let ratio = target_batch.as_secs_f64() / bencher.elapsed.as_secs_f64();
                ratio.clamp(1.5, 16.0) as u64 + 1
            };
            bencher.iters = (bencher.iters * grow).min(1 << 20);
        }

        let iters = bencher.iters;
        let started = Instant::now();
        let mut per_iter_ns = Vec::with_capacity(samples);
        for _ in 0..samples {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            per_iter_ns.push(bencher.elapsed.as_secs_f64() * 1e9 / iters as f64);
            if started.elapsed().as_secs_f64() > max_secs {
                break;
            }
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let report = BenchReport {
            group: self.group.clone(),
            name: id.to_string(),
            median_ns: median,
            min_ns: per_iter_ns[0],
            max_ns: *per_iter_ns.last().unwrap(),
            samples: per_iter_ns.len(),
            iters_per_sample: iters,
        };
        let label = if report.group.is_empty() {
            report.name.clone()
        } else {
            format!("{}/{}", report.group, report.name)
        };
        println!(
            "{label:<48} time: [{} {} {}]",
            fmt_ns(report.min_ns),
            fmt_ns(report.median_ns),
            fmt_ns(report.max_ns)
        );
        self.criterion.reports.push(report);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed += start.elapsed();
    }

    pub fn iter_with_setup<S, O, SF: FnMut() -> S, F: FnMut(S) -> O>(
        &mut self,
        mut setup: SF,
        mut body: F,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(body(input));
            total += start.elapsed();
        }
        self.elapsed += total;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        std::env::set_var("CRITERION_SAMPLES", "3");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(3);
        g.bench_function("spin", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
        g.bench_function("with_setup", |b| {
            b.iter_with_setup(|| vec![1u64; 256], |v| v.iter().sum::<u64>());
        });
        g.finish();
        std::env::remove_var("CRITERION_SAMPLES");
        assert_eq!(c.reports().len(), 2);
        assert!(c.reports().iter().all(|r| r.median_ns > 0.0));
    }
}
