//! Minimal offline `proptest` replacement.
//!
//! Implements the subset this workspace's property tests use: range and
//! tuple strategies, `prop::collection::vec`, `prop::array::uniform6`,
//! `any::<T>()`, `prop_map`, the `proptest!` macro with
//! `#![proptest_config(ProptestConfig::with_cases(N))]`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, by design: cases are generated from a
//! fixed deterministic seed (per test name) so failures reproduce
//! exactly, and there is NO shrinking — the failing input is printed
//! as-is. `.proptest-regressions` files are ignored.

use rand::{RngExt, SeedableRng, StdRng};
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{any, prop, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Namespace mirror of `proptest::prop`, so `prop::collection::vec(..)`
/// works after `use proptest::prelude::*`.
pub mod prop {
    pub use crate::array;
    pub use crate::collection;
}

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values. `sample` must be deterministic in `rng`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: rand::SampleUniform + std::fmt::Debug + Copy> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T: rand::SampleUniform + std::fmt::Debug + Copy> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// Full-domain strategies, `any::<T>()`.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// Samples `T` uniformly over its entire domain via `rand`'s standard
/// distribution.
pub struct StandardAny<T>(std::marker::PhantomData<T>);

impl<T: rand::StandardUniform> Strategy for StandardAny<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random()
    }
}

macro_rules! impl_arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = StandardAny<$t>;

            fn arbitrary() -> Self::Strategy {
                StandardAny(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_standard!(u8, u16, u32, u64, usize, i32, i64, bool, f32, f64);

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::RngExt;
    use std::ops::Range;

    /// Size specification: an exact length or a range of lengths.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod array {
    use super::{StdRng, Strategy};

    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn sample(&self, rng: &mut StdRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.0.sample(rng))
        }
    }

    macro_rules! uniform_ctor {
        ($($name:ident => $n:literal),*) => {$(
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray(element)
            }
        )*};
    }

    uniform_ctor!(
        uniform2 => 2, uniform3 => 3, uniform4 => 4,
        uniform6 => 6, uniform8 => 8, uniform16 => 16
    );
}

/// Test-runner core used by the `proptest!` macro expansion. Runs
/// `cases` deterministic cases; panics (with seed info) on the first
/// failure.
pub fn run_cases<F>(cases: u32, test_name: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), String>,
{
    // Stable per-test seed: same inputs on every run and platform.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case in 0..cases {
        let seed = h.wrapping_add(case as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(msg) = body(&mut rng) {
            panic!("proptest `{test_name}` failed at case {case}/{cases} (seed {seed:#x}):\n{msg}");
        }
    }
}

/// The `proptest!` block macro. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `fn name(pat in strategy, ...) { body }`
/// items, each expanded to a `#[test]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(config.cases, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __proptest_rng);)+
                let mut __proptest_case =
                    || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        Ok(())
                    };
                __proptest_case()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assertion macros: on failure they return an `Err` from the enclosing
/// case closure, so the runner can report the case index and seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond), file!(), line!(), ::std::format!($($fmt)+)
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}` ({}:{})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}` ({}:{}): {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(),
                ::std::format!($($fmt)+), l, r
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}` ({}:{})\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_across_runs() {
        let mut first: Vec<u64> = Vec::new();
        crate::run_cases(10, "det", |rng| {
            first.push(crate::Strategy::sample(&(0u64..1000), rng));
            Ok(())
        });
        let mut second: Vec<u64> = Vec::new();
        crate::run_cases(10, "det", |rng| {
            second.push(crate::Strategy::sample(&(0u64..1000), rng));
            Ok(())
        });
        assert_eq!(first, second);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0u8..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn arrays_and_tuples(a in prop::array::uniform6(any::<u8>()),
                             p in (0u64..4, -1.0f32..1.0)) {
            prop_assert_eq!(a.len(), 6);
            prop_assert!(p.0 < 4);
            prop_assert_ne!(p.1, 2.0);
        }

        #[test]
        fn mapped(t in (1usize..4, 1usize..4).prop_map(|(r, c)| vec![0f32; r * c])) {
            prop_assert!(!t.is_empty() && t.len() <= 9);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failure_reports_case() {
        crate::run_cases(5, "fail", |_rng| Err("boom".into()));
    }
}
