//! Minimal offline `crossbeam` replacement. Only `crossbeam::channel`
//! bounded channels are provided, delegating to `std::sync::mpsc`
//! rendezvous/sync channels, which have the same blocking semantics for
//! the single-consumer usage in this workspace.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    #[derive(Debug)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks while the channel is full, like crossbeam's bounded send.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }

        pub fn try_send(&self, value: T) -> Result<(), mpsc::TrySendError<T>> {
            self.0.try_send(value)
        }
    }

    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn bounded_roundtrip() {
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert!(rx.recv_timeout(Duration::from_millis(5)).is_err());
    }

    #[test]
    fn recv_fails_after_senders_drop() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn rendezvous_channel() {
        let (tx, rx) = channel::bounded::<u32>(0);
        let h = std::thread::spawn(move || tx.send(7));
        assert_eq!(rx.recv().unwrap(), 7);
        h.join().unwrap().unwrap();
    }
}
