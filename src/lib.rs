//! # GEM — geofencing with network embedding on ambient RF signals
//!
//! Umbrella crate re-exporting the whole workspace, so examples and
//! downstream users can depend on a single crate:
//!
//! * [`signal`] — records, MAC addresses, datasets;
//! * [`rfsim`] — the RF propagation / mobility simulator;
//! * [`graph`] — the weighted bipartite graph substrate;
//! * [`nn`] — tensors, autograd, optimizers;
//! * [`core`] — BiSAGE, the enhanced histogram detector, and the
//!   end-to-end [`core::Gem`](gem_core) pipeline;
//! * [`baselines`] — every comparator from the paper's evaluation;
//! * [`eval`] — metrics, ROC/AUC, t-SNE;
//! * [`service`] — the streaming monitor/alert layer.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use gem_baselines as baselines;
pub use gem_core as core;
pub use gem_eval as eval;
pub use gem_graph as graph;
pub use gem_nn as nn;
pub use gem_rfsim as rfsim;
pub use gem_service as service;
pub use gem_signal as signal;
