//! Tape-free streaming inference engine (paper Section V-A serving loop).
//!
//! [`crate::BiSage::embed_nodes_filtered`] evaluates the aggregation
//! through the autodiff tape: a fresh [`gem_nn::tape::Graph`], a fresh
//! forward scratch, and clones of the aggregation matrices for every
//! embedded record. That machinery exists to produce gradients — which
//! inference never needs. [`InferenceEngine`] evaluates the exact same
//! arithmetic directly on raw tensors:
//!
//! - **Persistent scratch.** Every buffer the forward pass touches —
//!   neighborhood lists, concat/linear tensors, aggregate accumulators —
//!   lives on the engine and is reshaped in place
//!   ([`gem_nn::Tensor::reset_to`]), so the steady-state single-record
//!   path performs zero heap allocations (gated in the `infer` bench via
//!   the `count-allocs` allocator).
//! - **Half-cone evaluation.** The layer-0 primary output depends only on
//!   the `h` chain at even tree depths and the `l` chain at odd depths,
//!   so the engine evaluates half of the tape's `(chain, depth)` grid.
//!   Every op is row- and element-independent, so the result is bitwise
//!   identical to the tape's.
//! - **Per-MAC aggregate cache.** For the default two-round model the
//!   only shareable intermediate is each MAC's round-1 carrier `l¹` (the
//!   level-`K−1` aggregate). Entries are tagged with the trust epoch and
//!   the MAC's degree at computation time: growing the graph bumps the
//!   degree of exactly the MACs that gained edges, and
//!   [`InferenceEngine::notify_trust_change`] bumps the epoch when the
//!   trusted-record set changes (e.g. via `Embedder::feedback`), so
//!   stale entries can never be read. Entries whose neighborhood
//!   included an *untrusted* record — the streamed target itself (always
//!   admitted into its own expansion) or a raw-neighborhood fallback —
//!   are additionally pinned to the producing call, because their
//!   segment depends on which records are being embedded right now.
//!
//! The batched path ([`InferenceEngine::embed_records_batch`]) amortizes
//! further: targets sharing a MAC compute its `l¹` once, neighborhood
//! collection fans out over `gem_par` workers, and the three matmuls run
//! over the whole batch. Note the batch admits the *whole target set*
//! into neighborhood expansions (one filter for one tree), so a batch is
//! bitwise identical to the tape run over the same target set, not to a
//! sequence of single-record calls.
//!
//! Callers must keep base rows initialized (`ensure_rows*`) before
//! embedding; the engine never mutates the model or the graph.

use rand::rngs::StdRng;
use serde::Serialize;

use gem_graph::{BipartiteGraph, MacId, NodeId, RecordId};
use gem_nn::kernels;
use gem_nn::tape::Activation;
use gem_nn::Tensor;

use crate::bisage::{node_row, normalize_into, Aggregator, BiSage, Tree};

/// Fan out batched neighborhood collection above this many items.
const PAR_THRESHOLD: usize = 32;

/// Cached round-1 carrier aggregate `l¹` of one MAC node. Exactly one
/// of `l1` / `ql1` is populated, per the engine's cache mode: f32 rows
/// by default, or int8 codes with a per-row scale and zero-point when
/// [`InferenceEngine::set_quantized_cache`] is on (4x smaller, each
/// element within `scale/2` of the f32 value).
struct MacEntry {
    l1: Vec<f32>,
    /// Int8 codes of the row (quantized mode only).
    ql1: Vec<i8>,
    /// Dequantization scale (`x ≈ scale·code + zero`).
    scale: f32,
    /// Dequantization zero-point (midpoint of the row's value range).
    zero: f32,
    /// Trust epoch the entry was computed under.
    trust_epoch: u64,
    /// MAC degree at computation time; any new edge invalidates.
    degree: u32,
    /// Whether a trust filter was in effect (`Some` vs `None` caller).
    filtered: bool,
    /// `Some(call)` when the segment depended on untrusted records (the
    /// streamed targets themselves, or a raw-neighborhood fallback) —
    /// reusable only within the producing call.
    volatile_call: Option<u64>,
}

impl MacEntry {
    /// `dst += w · l¹` in the entry's representation: the dispatched
    /// axpy for f32 rows, or the dequantizing int8 kernel with the
    /// weight folded into scale and zero-point (`w·(s·q + z) =
    /// (w·s)·q + w·z`).
    #[inline]
    fn accumulate_into(&self, dst: &mut [f32], w: f32) {
        if self.ql1.is_empty() {
            kernels::axpy(dst, w, &self.l1);
        } else {
            kernels::axpy_dequant_i8(dst, w * self.scale, w * self.zero, &self.ql1);
        }
    }
}

/// Cache hit/miss counters of an [`InferenceEngine`].
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct CacheStats {
    /// MAC-aggregate lookups served from cache.
    pub hits: u64,
    /// MAC-aggregate lookups that recomputed the entry.
    pub misses: u64,
    /// Whole-cache invalidations (trust-epoch bumps from `invalidate`
    /// or `notify_trust_change`).
    pub invalidations: u64,
}

impl CacheStats {
    /// Fraction of lookups served from cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Forward-only embedding evaluator with persistent scratch and a
/// per-MAC aggregate cache. See the module docs for the invalidation
/// rules; the arithmetic is bitwise identical to the tape path.
pub struct InferenceEngine {
    /// Per-MAC cache, indexed by MAC id.
    entries: Vec<Option<MacEntry>>,
    /// Store cached rows as int8 codes instead of f32 (opt-in).
    quantized_cache: bool,
    trust_epoch: u64,
    call_id: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
    // Single-record scratch.
    nbrs: Vec<(NodeId, f32)>,
    /// Target's capped level-0 expansion: `(mac id, normalized weight)`.
    macs0: Vec<(u32, f32)>,
    h1: Vec<f32>,
    agg: Vec<f32>,
    cat: Tensor,
    lin: Tensor,
    // Batch scratch.
    in_targets: Vec<bool>,
    seen: Vec<bool>,
    seg_offs: Vec<u32>,
    seg_macs: Vec<(u32, f32)>,
    missing: Vec<u32>,
    cat_b: Tensor,
    lin_b: Tensor,
    h1_b: Tensor,
    // Generic-tree path (rounds ≠ 2, and sampled trees).
    tree: Tree,
    tree_scratch: Vec<(NodeId, f32)>,
    cur: Vec<Tensor>,
    next: Vec<Tensor>,
}

impl Default for InferenceEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl InferenceEngine {
    /// An empty engine; buffers warm up over the first few calls.
    pub fn new() -> Self {
        InferenceEngine {
            entries: Vec::new(),
            quantized_cache: false,
            trust_epoch: 0,
            call_id: 0,
            hits: 0,
            misses: 0,
            invalidations: 0,
            nbrs: Vec::new(),
            macs0: Vec::new(),
            h1: Vec::new(),
            agg: Vec::new(),
            cat: Tensor::zeros(0, 0),
            lin: Tensor::zeros(0, 0),
            in_targets: Vec::new(),
            seen: Vec::new(),
            seg_offs: Vec::new(),
            seg_macs: Vec::new(),
            missing: Vec::new(),
            cat_b: Tensor::zeros(0, 0),
            lin_b: Tensor::zeros(0, 0),
            h1_b: Tensor::zeros(0, 0),
            tree: Tree::default(),
            tree_scratch: Vec::new(),
            cur: Vec::new(),
            next: Vec::new(),
        }
    }

    /// Switches the per-MAC aggregate cache between f32 rows (default,
    /// bitwise identical to the tape) and int8 rows with per-row scale
    /// and zero-point (4x smaller; aggregates dequantize through the
    /// SIMD `axpy_dequant_i8` kernel, each cached element within
    /// `scale/2` of its f32 value). Toggling invalidates the cache so
    /// the two representations never mix.
    pub fn set_quantized_cache(&mut self, on: bool) {
        if self.quantized_cache != on {
            self.quantized_cache = on;
            self.invalidate();
        }
    }

    /// Whether the aggregate cache stores int8 rows.
    pub fn quantized_cache(&self) -> bool {
        self.quantized_cache
    }

    /// Invalidates every cache entry (model refit, provisional-base
    /// re-derivation — anything that may rewrite base rows without
    /// changing a MAC's degree).
    pub fn invalidate(&mut self) {
        self.trust_epoch += 1;
        self.invalidations += 1;
    }

    /// The trusted-record set changed (a `feedback` flip, or a streamed
    /// record classified and admitted); entries computed under the old
    /// trust assignment are no longer readable.
    pub fn notify_trust_change(&mut self) {
        self.trust_epoch += 1;
        self.invalidations += 1;
    }

    /// Lifetime cache hit/miss/invalidation counters.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats { hits: self.hits, misses: self.misses, invalidations: self.invalidations }
    }

    /// Primary embedding of one record into a caller-owned buffer —
    /// the allocation-free streaming path. Bitwise identical to
    /// `embed_nodes_filtered(graph, &[record], wrapped)` where `wrapped`
    /// admits the record itself plus every trusted record (or no filter
    /// when `trusted` is `None`). Base rows must already be initialized
    /// (see [`crate::BiSage::ensure_rows_filtered`]).
    pub fn embed_record_into(
        &mut self,
        model: &BiSage,
        graph: &BipartiteGraph,
        record: RecordId,
        trusted: Option<&[bool]>,
        out: &mut Vec<f32>,
    ) {
        self.call_id += 1;
        let d = model.cfg.dim;
        let aggr = model.cfg.aggregator;
        let wrapped = trusted.map(|bits| move |r: RecordId| r == record || trusted_bit(bits, r));
        let wref = wrapped.as_ref().map(|f| f as &(dyn Fn(RecordId) -> bool + Sync));
        if model.cfg.rounds != 2 {
            // No cacheable mid-level for other depths; evaluate the whole
            // (half-cone) tree tape-free instead.
            model.build_tree_into(
                graph,
                &[NodeId::Record(record)],
                None,
                wref,
                &mut self.tree,
                &mut self.tree_scratch,
            );
            let h = self.forward_tree(model);
            out.clear();
            out.extend_from_slice(h.row(0));
            return;
        }

        // Level-0 expansion of the target, capped and segment-normalized
        // exactly like the tree builder's `append_segment`.
        model.neighborhood_into(graph, NodeId::Record(record), wref, &mut self.nbrs);
        self.macs0.clear();
        let w_total = seg_total(aggr, &self.nbrs);
        for &(n, w) in &self.nbrs {
            let NodeId::Mac(m) = n else { unreachable!("record neighbors are MACs") };
            self.macs0.push((m.0, seg_norm(aggr, w, w_total)));
        }

        // Round 1, target chain: h¹ = norm(σ(W_h¹ · [h⁰ | Σ w̃ l⁰])).
        self.cat.reset_to(1, 2 * d);
        self.cat.row_mut(0)[..d]
            .copy_from_slice(model.base_h.row(node_row(NodeId::Record(record))));
        for &(m, w) in &self.macs0 {
            kernels::axpy(&mut self.cat.row_mut(0)[d..], w, model.base_l.row(mac_row(m)));
        }
        self.lin.reset_to(1, d);
        self.cat.matmul_into(&model.w_h[0], &mut self.lin);
        act_tensor(&mut self.lin, model.cfg.activation);
        normalize_into(self.lin.row_mut(0));
        self.h1.clear();
        self.h1.extend_from_slice(self.lin.row(0));

        // Round 1, MAC chain: every l¹ through the cache.
        if self.entries.len() < graph.n_macs() {
            self.entries.resize_with(graph.n_macs(), || None);
        }
        let filtered_now = trusted.is_some();
        let all_targets_trusted = trusted.is_some_and(|b| trusted_bit(b, record));
        for i in 0..self.macs0.len() {
            let (mid, _) = self.macs0[i];
            let degree_now = graph.degree(NodeId::Mac(MacId(mid))) as u32;
            let valid = self.entries[mid as usize].as_ref().is_some_and(|e| {
                entry_valid(
                    e,
                    self.trust_epoch,
                    self.call_id,
                    degree_now,
                    filtered_now,
                    all_targets_trusted,
                )
            });
            if valid {
                self.hits += 1;
                continue;
            }
            self.misses += 1;
            model.neighborhood_into(graph, NodeId::Mac(MacId(mid)), wref, &mut self.nbrs);
            let w_total = seg_total(aggr, &self.nbrs);
            let mut volatile = false;
            self.cat.reset_to(1, 2 * d);
            self.cat.row_mut(0)[..d].copy_from_slice(model.base_l.row(mac_row(mid)));
            for &(n, w) in &self.nbrs {
                let NodeId::Record(r) = n else { unreachable!("MAC neighbors are records") };
                if filtered_now && !trusted_bit(trusted.unwrap(), r) {
                    volatile = true;
                }
                let nw = seg_norm(aggr, w, w_total);
                let src = model.base_h.row(node_row(NodeId::Record(r)));
                kernels::axpy(&mut self.cat.row_mut(0)[d..], nw, src);
            }
            self.lin.reset_to(1, d);
            self.cat.matmul_into(&model.w_l[0], &mut self.lin);
            act_tensor(&mut self.lin, model.cfg.activation);
            normalize_into(self.lin.row_mut(0));
            store_entry(
                &mut self.entries[mid as usize],
                self.lin.row(0),
                self.quantized_cache,
                self.trust_epoch,
                degree_now,
                filtered_now,
                volatile.then_some(self.call_id),
            );
        }

        // Round 2: h² = norm(σ(W_h² · [h¹ | Σ w̃ l¹])).
        self.agg.clear();
        self.agg.resize(d, 0.0);
        for &(mid, w) in &self.macs0 {
            let e = self.entries[mid as usize].as_ref().expect("entry ensured above");
            e.accumulate_into(&mut self.agg, w);
        }
        self.cat.reset_to(1, 2 * d);
        self.cat.row_mut(0)[..d].copy_from_slice(&self.h1);
        self.cat.row_mut(0)[d..].copy_from_slice(&self.agg);
        self.lin.reset_to(1, d);
        self.cat.matmul_into(&model.w_h[1], &mut self.lin);
        act_tensor(&mut self.lin, model.cfg.activation);
        normalize_into(self.lin.row_mut(0));
        out.clear();
        out.extend_from_slice(self.lin.row(0));
    }

    /// Allocating convenience wrapper around
    /// [`InferenceEngine::embed_record_into`].
    pub fn embed_record(
        &mut self,
        model: &BiSage,
        graph: &BipartiteGraph,
        record: RecordId,
        trusted: Option<&[bool]>,
    ) -> Vec<f32> {
        let mut out = Vec::new();
        self.embed_record_into(model, graph, record, trusted, &mut out);
        out
    }

    /// Primary embeddings of a batch of records (rows in `records`
    /// order). The trust filter admits the whole target set plus every
    /// trusted record — bitwise identical to the tape run
    /// `embed_nodes_filtered(graph, targets, set_wrapped)` — and MACs
    /// shared between targets compute their cached aggregate once.
    /// Neighborhood collection fans out over `gem_par` for large batches.
    pub fn embed_records_batch(
        &mut self,
        model: &BiSage,
        graph: &BipartiteGraph,
        records: &[RecordId],
        trusted: Option<&[bool]>,
    ) -> Tensor {
        self.call_id += 1;
        let d = model.cfg.dim;
        let aggr = model.cfg.aggregator;
        let b = records.len();
        if b == 0 {
            return Tensor::zeros(0, d);
        }
        // Target-set bitmap, moved out of `self` so the filter closure
        // leaves the engine free for scratch mutation.
        let mut in_targets = std::mem::take(&mut self.in_targets);
        in_targets.clear();
        in_targets.resize(graph.n_records(), false);
        for &r in records {
            if let Some(slot) = in_targets.get_mut(r.0 as usize) {
                *slot = true;
            }
        }
        let tset = &in_targets;
        let wrapped = trusted.map(|bits| {
            move |r: RecordId| {
                tset.get(r.0 as usize).copied().unwrap_or(false) || trusted_bit(bits, r)
            }
        });
        let wref = wrapped.as_ref().map(|f| f as &(dyn Fn(RecordId) -> bool + Sync));

        if model.cfg.rounds != 2 {
            let nodes: Vec<NodeId> = records.iter().map(|&r| NodeId::Record(r)).collect();
            model.build_tree_into(
                graph,
                &nodes,
                None,
                wref,
                &mut self.tree,
                &mut self.tree_scratch,
            );
            let out = self.forward_tree(model).clone();
            self.in_targets = in_targets;
            return out;
        }

        let parallel =
            model.cfg.num_threads != 1 && b >= PAR_THRESHOLD && gem_par::num_threads() > 1;

        // Stage A — per-target level-0 expansions (flattened for stage C)
        // and the batched target-chain round 1.
        let nbhs: Vec<Vec<(NodeId, f32)>> = if parallel {
            gem_par::par_map(records, |&r| {
                let mut v = Vec::new();
                model.neighborhood_into(graph, NodeId::Record(r), wref, &mut v);
                v
            })
        } else {
            records
                .iter()
                .map(|&r| {
                    let mut v = Vec::new();
                    model.neighborhood_into(graph, NodeId::Record(r), wref, &mut v);
                    v
                })
                .collect()
        };
        self.seg_offs.clear();
        self.seg_offs.push(0);
        self.seg_macs.clear();
        self.cat_b.reset_to(b, 2 * d);
        for (i, nbh) in nbhs.iter().enumerate() {
            let w_total = seg_total(aggr, nbh);
            let row = self.cat_b.row_mut(i);
            row[..d].copy_from_slice(model.base_h.row(node_row(NodeId::Record(records[i]))));
            for &(n, w) in nbh {
                let NodeId::Mac(m) = n else { unreachable!("record neighbors are MACs") };
                let nw = seg_norm(aggr, w, w_total);
                self.seg_macs.push((m.0, nw));
                kernels::axpy(&mut row[d..], nw, model.base_l.row(mac_row(m.0)));
            }
            self.seg_offs.push(self.seg_macs.len() as u32);
        }
        self.h1_b.reset_to(b, d);
        self.cat_b.matmul_into(&model.w_h[0], &mut self.h1_b);
        act_tensor(&mut self.h1_b, model.cfg.activation);
        for i in 0..b {
            normalize_into(self.h1_b.row_mut(i));
        }

        // Stage B — distinct MACs through the cache; misses batched.
        if self.entries.len() < graph.n_macs() {
            self.entries.resize_with(graph.n_macs(), || None);
        }
        self.seen.clear();
        self.seen.resize(graph.n_macs(), false);
        self.missing.clear();
        let filtered_now = trusted.is_some();
        let all_targets_trusted =
            trusted.is_some_and(|bits| records.iter().all(|&r| trusted_bit(bits, r)));
        for &(mid, _) in &self.seg_macs {
            if self.seen[mid as usize] {
                continue;
            }
            self.seen[mid as usize] = true;
            let degree_now = graph.degree(NodeId::Mac(MacId(mid))) as u32;
            let valid = self.entries[mid as usize].as_ref().is_some_and(|e| {
                entry_valid(
                    e,
                    self.trust_epoch,
                    self.call_id,
                    degree_now,
                    filtered_now,
                    all_targets_trusted,
                )
            });
            if valid {
                self.hits += 1;
            } else {
                self.misses += 1;
                self.missing.push(mid);
            }
        }
        let m_cnt = self.missing.len();
        if m_cnt > 0 {
            let mac_nbhs: Vec<Vec<(NodeId, f32)>> = if parallel && m_cnt >= PAR_THRESHOLD {
                gem_par::par_map(&self.missing, |&mid| {
                    let mut v = Vec::new();
                    model.neighborhood_into(graph, NodeId::Mac(MacId(mid)), wref, &mut v);
                    v
                })
            } else {
                self.missing
                    .iter()
                    .map(|&mid| {
                        let mut v = Vec::new();
                        model.neighborhood_into(graph, NodeId::Mac(MacId(mid)), wref, &mut v);
                        v
                    })
                    .collect()
            };
            self.cat_b.reset_to(m_cnt, 2 * d);
            let mut volatile = vec![false; m_cnt];
            for (i, nbh) in mac_nbhs.iter().enumerate() {
                let mid = self.missing[i];
                let w_total = seg_total(aggr, nbh);
                let row = self.cat_b.row_mut(i);
                row[..d].copy_from_slice(model.base_l.row(mac_row(mid)));
                for &(n, w) in nbh {
                    let NodeId::Record(r) = n else { unreachable!("MAC neighbors are records") };
                    if filtered_now && !trusted_bit(trusted.unwrap(), r) {
                        volatile[i] = true;
                    }
                    let nw = seg_norm(aggr, w, w_total);
                    let src = model.base_h.row(node_row(NodeId::Record(r)));
                    kernels::axpy(&mut row[d..], nw, src);
                }
            }
            self.lin_b.reset_to(m_cnt, d);
            self.cat_b.matmul_into(&model.w_l[0], &mut self.lin_b);
            act_tensor(&mut self.lin_b, model.cfg.activation);
            for i in 0..m_cnt {
                normalize_into(self.lin_b.row_mut(i));
            }
            for (i, (&mid, &vol)) in self.missing.iter().zip(&volatile).enumerate() {
                let degree_now = graph.degree(NodeId::Mac(MacId(mid))) as u32;
                store_entry(
                    &mut self.entries[mid as usize],
                    self.lin_b.row(i),
                    self.quantized_cache,
                    self.trust_epoch,
                    degree_now,
                    filtered_now,
                    vol.then_some(self.call_id),
                );
            }
        }

        // Stage C — batched target-chain round 2 from cached aggregates.
        let mut out = Tensor::zeros(b, d);
        self.cat_b.reset_to(b, 2 * d);
        for i in 0..b {
            let row = self.cat_b.row_mut(i);
            row[..d].copy_from_slice(self.h1_b.row(i));
            let (lo, hi) = (self.seg_offs[i] as usize, self.seg_offs[i + 1] as usize);
            for &(mid, w) in &self.seg_macs[lo..hi] {
                let e = self.entries[mid as usize].as_ref().expect("entry ensured in stage B");
                e.accumulate_into(&mut row[d..], w);
            }
        }
        self.cat_b.matmul_into(&model.w_h[1], &mut out);
        act_tensor(&mut out, model.cfg.activation);
        for i in 0..b {
            normalize_into(out.row_mut(i));
        }
        self.in_targets = in_targets;
        out
    }

    /// Tape-free evaluation of a training-style *sampled* tree (the
    /// detector-fit augmentation path). Consumes the RNG exactly like the
    /// tape reference.
    pub(crate) fn embed_tree_sampled(
        &mut self,
        model: &BiSage,
        graph: &BipartiteGraph,
        nodes: &[NodeId],
        rng: &mut StdRng,
    ) -> Tensor {
        model.build_tree_into(
            graph,
            nodes,
            Some(rng),
            None,
            &mut self.tree,
            &mut self.tree_scratch,
        );
        self.forward_tree(model).clone()
    }

    /// Half-cone forward pass over `self.tree`: evaluates only the
    /// `(chain, depth)` pairs the layer-0 primary output depends on —
    /// `h` at even depths, `l` at odd — roughly halving the tape's work
    /// while staying bitwise identical (every op is row-independent and
    /// applied in the tape's order).
    fn forward_tree(&mut self, model: &BiSage) -> &Tensor {
        let k_rounds = model.cfg.rounds;
        let d = model.cfg.dim;
        if self.cur.len() < k_rounds + 1 {
            self.cur.resize_with(k_rounds + 1, || Tensor::zeros(0, 0));
            self.next.resize_with(k_rounds + 1, || Tensor::zeros(0, 0));
        }
        for dep in 0..=k_rounds {
            let idx = &self.tree.row_idx[dep];
            let table = if dep % 2 == 0 { &model.base_h } else { &model.base_l };
            let t = &mut self.cur[dep];
            t.reset_to(idx.len(), d);
            for (i, &r) in idx.iter().enumerate() {
                t.set_row(i, table.row(r as usize));
            }
        }
        for round in 1..=k_rounds {
            let depths = k_rounds - round;
            for dep in 0..=depths {
                let offs = &self.tree.offsets[dep];
                let wts = &self.tree.weights[dep];
                let n_seg = offs.len() - 1;
                self.cat.reset_to(n_seg, 2 * d);
                {
                    let state = &self.cur[dep];
                    let inp = &self.cur[dep + 1];
                    for s in 0..n_seg {
                        let row = self.cat.row_mut(s);
                        row[..d].copy_from_slice(state.row(s));
                        let (lo, hi) = (offs[s] as usize, offs[s + 1] as usize);
                        for j in lo..hi {
                            kernels::axpy(&mut row[d..], wts[j], inp.row(j));
                        }
                    }
                }
                let weight =
                    if dep % 2 == 0 { &model.w_h[round - 1] } else { &model.w_l[round - 1] };
                let outt = &mut self.next[dep];
                outt.reset_to(n_seg, d);
                self.cat.matmul_into(weight, outt);
                act_tensor(outt, model.cfg.activation);
                for s in 0..n_seg {
                    normalize_into(outt.row_mut(s));
                }
            }
            for dep in 0..=depths {
                std::mem::swap(&mut self.cur[dep], &mut self.next[dep]);
            }
        }
        &self.cur[0]
    }
}

/// Segment weight total, mirroring the tree builder's `append_segment`.
#[inline]
fn seg_total(aggr: Aggregator, nbrs: &[(NodeId, f32)]) -> f32 {
    match aggr {
        Aggregator::WeightedMean => nbrs.iter().map(|&(_, w)| w).sum(),
        Aggregator::Mean => nbrs.len() as f32,
    }
}

/// Per-member normalized aggregation weight (same expression as
/// `append_segment`, so the bits match the tape's tree).
#[inline]
fn seg_norm(aggr: Aggregator, w: f32, w_total: f32) -> f32 {
    match aggr {
        Aggregator::WeightedMean => w / w_total.max(1e-12),
        Aggregator::Mean => 1.0 / w_total.max(1e-12),
    }
}

#[inline]
fn trusted_bit(bits: &[bool], r: RecordId) -> bool {
    bits.get(r.0 as usize).copied().unwrap_or(false)
}

#[inline]
fn mac_row(m: u32) -> usize {
    node_row(NodeId::Mac(MacId(m)))
}

/// Element-wise nonlinearity, identical to the tape's `activation` op
/// (same dispatched kernel, so tape/engine parity is preserved bitwise).
#[inline]
fn act_tensor(t: &mut Tensor, act: Activation) {
    act.forward_slice(t.data_mut());
}

fn entry_valid(
    e: &MacEntry,
    trust_epoch: u64,
    call_id: u64,
    degree_now: u32,
    filtered_now: bool,
    all_targets_trusted: bool,
) -> bool {
    e.trust_epoch == trust_epoch
        && e.degree == degree_now
        && e.filtered == filtered_now
        && match e.volatile_call {
            // Volatile entries saw untrusted (target/fallback) rows:
            // only the producing call's filter admits the same segment.
            Some(call) => call == call_id,
            // Clean entries depend on the trusted set alone — reusable
            // across calls unless the current call's wrapped filter
            // could admit an untrusted target into the segment.
            None => !filtered_now || all_targets_trusted,
        }
}

/// Overwrites a cache slot in place (no allocation once the slot has
/// seen the row length, in either representation).
fn store_entry(
    slot: &mut Option<MacEntry>,
    l1: &[f32],
    quantize: bool,
    trust_epoch: u64,
    degree: u32,
    filtered: bool,
    volatile_call: Option<u64>,
) {
    let e = slot.get_or_insert_with(|| MacEntry {
        l1: Vec::new(),
        ql1: Vec::new(),
        scale: 0.0,
        zero: 0.0,
        trust_epoch,
        degree,
        filtered,
        volatile_call,
    });
    e.trust_epoch = trust_epoch;
    e.degree = degree;
    e.filtered = filtered;
    e.volatile_call = volatile_call;
    if quantize {
        e.l1.clear();
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for &x in l1 {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        let zero = 0.5 * (lo + hi);
        let scale = (hi - lo) / 254.0;
        e.zero = zero;
        e.scale = scale;
        e.ql1.clear();
        e.ql1.extend(l1.iter().map(|&x| {
            if scale > 0.0 {
                ((x - zero) / scale).round().clamp(-127.0, 127.0) as i8
            } else {
                0
            }
        }));
    } else {
        e.ql1.clear();
        e.l1.clear();
        e.l1.extend_from_slice(l1);
    }
}
