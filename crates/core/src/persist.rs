//! Model persistence: snapshot a trained GEM system to disk and restore
//! it later — the deployment story of the paper's server-side component
//! (the Android app uploads scans; the server keeps the model warm
//! across restarts).
//!
//! A [`GemSnapshot`] captures everything the online system needs: the
//! configuration, the bipartite graph (including streamed nodes), the
//! trained BiSAGE model with its base tables, the detector state
//! (histograms, frozen reference set, thresholds) and the per-record
//! trust bits. Snapshots are JSON (portable, diff-able); a typical
//! one-home model is a few hundred kilobytes.

use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use gem_graph::BipartiteGraph;
use gem_nn::Tensor;

use crate::bisage::{BiSage, TrainReport};
use crate::config::GemConfig;
use crate::detector::EnhancedDetector;
use crate::gem::Gem;
use crate::pca::PcaRotation;

/// Magic marker + version guard for snapshot files.
const FORMAT: &str = "gem-snapshot";
const VERSION: u32 = 1;

/// A complete serialized GEM system.
#[derive(Serialize, Deserialize)]
pub struct GemSnapshot {
    format: String,
    version: u32,
    /// Configuration the system was trained with.
    pub cfg: GemConfig,
    /// The bipartite graph (training + streamed records).
    pub graph: BipartiteGraph,
    /// The trained embedding model.
    pub bisage: BiSage,
    /// The detector with its online-update state.
    pub detector: EnhancedDetector,
    /// BiSAGE training diagnostics.
    pub train_report: TrainReport,
    /// Primary embeddings of the initial training records.
    pub train_embeddings: Tensor,
    /// Per-record pseudo-label trust bits.
    pub trusted: Vec<bool>,
    /// The fitted PCA rotation, when enabled.
    pub pca: Option<PcaRotation>,
    /// Raw state of the online RNG at capture time. Restoring it resumes
    /// the exact random stream, which bitwise crash recovery depends on.
    /// Absent in snapshots written before this field existed; those
    /// restore with a fresh seed-derived generator.
    #[serde(default)]
    pub rng: Option<[u64; 4]>,
}

/// Errors from snapshot I/O.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem error.
    Io(io::Error),
    /// Malformed JSON or wrong schema.
    Format(String),
    /// The file is valid JSON but not a compatible snapshot.
    Incompatible(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            PersistError::Format(e) => write!(f, "snapshot format error: {e}"),
            PersistError::Incompatible(e) => write!(f, "incompatible snapshot: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl GemSnapshot {
    /// Captures the full state of a running system.
    pub fn capture(gem: &Gem) -> GemSnapshot {
        GemSnapshot {
            format: FORMAT.to_string(),
            version: VERSION,
            cfg: gem.cfg.clone(),
            graph: gem.graph().clone(),
            bisage: gem.bisage().clone(),
            detector: gem.detector().clone(),
            train_report: gem.train_report().clone(),
            train_embeddings: gem.training_embeddings().clone(),
            trusted: gem.trusted_records().to_vec(),
            pca: gem.pca().cloned(),
            rng: Some(gem.rng_state()),
        }
    }

    /// Restores a runnable system. Fails when the snapshot is internally
    /// inconsistent (e.g. trust bits not matching the graph).
    pub fn restore(self) -> Result<Gem, PersistError> {
        if self.format != FORMAT {
            return Err(PersistError::Incompatible(format!("format tag {:?}", self.format)));
        }
        if self.version != VERSION {
            return Err(PersistError::Incompatible(format!(
                "snapshot version {} (supported: {VERSION})",
                self.version
            )));
        }
        if self.trusted.len() != self.graph.n_records() {
            return Err(PersistError::Incompatible(format!(
                "trust bits ({}) do not match graph records ({})",
                self.trusted.len(),
                self.graph.n_records()
            )));
        }
        if self.cfg.pca_rotation && self.pca.is_none() {
            return Err(PersistError::Incompatible(
                "config enables pca_rotation but the snapshot has no rotation".into(),
            ));
        }
        Ok(Gem::from_parts(
            self.cfg,
            self.graph,
            self.bisage,
            self.detector,
            self.train_report,
            self.train_embeddings,
            self.trusted,
            self.pca,
            self.rng,
        ))
    }

    /// Serializes to a JSON string.
    pub fn to_json(&self) -> Result<String, PersistError> {
        serde_json::to_string(self).map_err(|e| PersistError::Format(e.to_string()))
    }

    /// Parses from a JSON string.
    pub fn from_json(json: &str) -> Result<GemSnapshot, PersistError> {
        serde_json::from_str(json).map_err(|e| PersistError::Format(e.to_string()))
    }

    /// Writes the snapshot to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Reads a snapshot from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<GemSnapshot, PersistError> {
        Self::from_json(&fs::read_to_string(path)?)
    }
}

impl Gem {
    /// Saves the full system state to a JSON snapshot file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        GemSnapshot::capture(self).save(path)
    }

    /// Restores a system from a snapshot file.
    pub fn load(path: impl AsRef<Path>) -> Result<Gem, PersistError> {
        GemSnapshot::load(path)?.restore()
    }
}

// ---------------------------------------------------------------------------
// Fleet manifest
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit hash — the workspace's checksum primitive for durability
/// artifacts (manifest bodies, snapshot files, journal lines). Not
/// cryptographic; it guards against truncation, bit rot and partial
/// writes, which is what crash recovery needs to detect.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// [`fnv1a64`] rendered as the canonical 16-digit lowercase hex string
/// stored in manifests and journal lines.
pub fn fnv1a64_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

/// Filename of the fleet manifest inside a durability directory.
pub const MANIFEST_FILE: &str = "manifest.json";

const MANIFEST_FORMAT: &str = "gem-fleet-manifest";
const MANIFEST_VERSION: u32 = 1;

/// One premises' durable state, as recorded in a [`FleetManifest`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PremisesEntry {
    /// Tenant identifier (the fleet's routing key).
    pub premises_id: u64,
    /// Snapshot filename, relative to the manifest's directory.
    pub snapshot_file: String,
    /// [`fnv1a64_hex`] checksum of the snapshot file's bytes.
    pub snapshot_checksum: String,
    /// Decision epochs this premises had applied when the snapshot was
    /// taken. Journal entries with a later epoch number must be replayed
    /// on recovery; earlier ones are already folded into the snapshot.
    pub epochs: u64,
    /// Runtime-defined sidecar state stored verbatim (e.g. the service
    /// layer's alert-policy counters), so layers above the model can
    /// recover without `gem-core` knowing their types.
    #[serde(default)]
    pub sidecar: serde_json::Value,
}

/// Versioned, checksummed index of a fleet durability directory: which
/// premises exist, where each one's snapshot lives, and the journal
/// watermark (`epochs`) recovery must replay from.
#[derive(Debug, Serialize, Deserialize)]
pub struct FleetManifest {
    format: String,
    version: u32,
    /// Per-premises entries, sorted by premises id.
    pub premises: Vec<PremisesEntry>,
    /// [`fnv1a64_hex`] over the serialized `premises` array.
    checksum: String,
}

impl FleetManifest {
    /// Builds a manifest over the given entries (sorted by premises id;
    /// the checksum is computed over the canonical serialized array).
    pub fn new(mut premises: Vec<PremisesEntry>) -> FleetManifest {
        premises.sort_by_key(|e| e.premises_id);
        let body = serde_json::to_string(&premises).expect("serialize manifest entries");
        FleetManifest {
            format: MANIFEST_FORMAT.to_string(),
            version: MANIFEST_VERSION,
            checksum: fnv1a64_hex(body.as_bytes()),
            premises,
        }
    }

    /// The entry for one premises, when present.
    pub fn entry(&self, premises_id: u64) -> Option<&PremisesEntry> {
        self.premises.iter().find(|e| e.premises_id == premises_id)
    }

    /// Writes the manifest into `dir` atomically and durably: the temp
    /// file is synced before the rename (so the commit can never expose
    /// a torn manifest) and the directory is synced after it (so the
    /// rename itself — and the directory entries of any files written
    /// alongside — survive power loss, not just process crashes).
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<(), PersistError> {
        let dir = dir.as_ref();
        let json =
            serde_json::to_string_pretty(self).map_err(|e| PersistError::Format(e.to_string()))?;
        let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
        {
            use std::io::Write;
            let mut f = fs::File::create(&tmp)?;
            f.write_all(json.as_bytes())?;
            f.sync_data()?;
        }
        fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
        // Opening a directory read-only for fsync is POSIX-only; on
        // platforms where it fails, durability degrades to
        // process-crash-only rather than erroring the commit.
        if let Ok(d) = fs::File::open(dir) {
            d.sync_all()?;
        }
        Ok(())
    }

    /// Loads and verifies the manifest from `dir`: format tag, version,
    /// and body checksum must all match.
    pub fn load(dir: impl AsRef<Path>) -> Result<FleetManifest, PersistError> {
        let raw = fs::read_to_string(dir.as_ref().join(MANIFEST_FILE))?;
        let manifest: FleetManifest =
            serde_json::from_str(&raw).map_err(|e| PersistError::Format(e.to_string()))?;
        if manifest.format != MANIFEST_FORMAT {
            return Err(PersistError::Incompatible(format!(
                "manifest format tag {:?}",
                manifest.format
            )));
        }
        if manifest.version != MANIFEST_VERSION {
            return Err(PersistError::Incompatible(format!(
                "manifest version {} (supported: {MANIFEST_VERSION})",
                manifest.version
            )));
        }
        let body = serde_json::to_string(&manifest.premises)
            .map_err(|e| PersistError::Format(e.to_string()))?;
        let expect = fnv1a64_hex(body.as_bytes());
        if manifest.checksum != expect {
            return Err(PersistError::Incompatible(format!(
                "manifest checksum mismatch (stored {}, computed {expect})",
                manifest.checksum
            )));
        }
        Ok(manifest)
    }

    /// Verifies that every referenced snapshot file exists in `dir` and
    /// matches its recorded checksum.
    pub fn verify_snapshots(&self, dir: impl AsRef<Path>) -> Result<(), PersistError> {
        let dir = dir.as_ref();
        // Many entries may share one snapshot file (e.g. a common seed
        // model fanned out to thousands of premises) — hash each
        // distinct file once, not once per entry.
        let mut cache: std::collections::HashMap<&str, String> = std::collections::HashMap::new();
        for e in &self.premises {
            let got = match cache.get(e.snapshot_file.as_str()) {
                Some(h) => h.clone(),
                None => {
                    let bytes = fs::read(dir.join(&e.snapshot_file))?;
                    let h = fnv1a64_hex(&bytes);
                    cache.insert(e.snapshot_file.as_str(), h.clone());
                    h
                }
            };
            if got != e.snapshot_checksum {
                return Err(PersistError::Incompatible(format!(
                    "snapshot {} for premises {} is corrupt (stored {}, computed {got})",
                    e.snapshot_file, e.premises_id, e.snapshot_checksum
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_rfsim::{Scenario, ScenarioConfig};
    use gem_signal::Label;

    fn trained_gem() -> (Gem, gem_signal::Dataset) {
        let mut cfg = ScenarioConfig::user(1);
        cfg.train_duration_s = 150.0;
        cfg.n_test_in = 30;
        cfg.n_test_out = 30;
        let ds = Scenario::build(cfg).generate();
        (Gem::fit(GemConfig::default(), &ds.train), ds)
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let (gem, ds) = trained_gem();
        let json = GemSnapshot::capture(&gem).to_json().unwrap();
        let restored = GemSnapshot::from_json(&json).unwrap().restore().unwrap();
        // The restored system must make identical decisions.
        let mut a = gem;
        let mut b = restored;
        for t in &ds.test {
            let da = a.infer(&t.record);
            let db = b.infer(&t.record);
            assert_eq!(da.label, db.label);
            assert!((da.score - db.score).abs() < 1e-12);
        }
    }

    #[test]
    fn snapshot_preserves_online_state() {
        let (mut gem, ds) = trained_gem();
        for t in ds.test.iter().take(20) {
            gem.infer(&t.record);
        }
        let n_records = gem.graph().n_records();
        let n_updates = gem.detector().n_updates;
        let restored = GemSnapshot::capture(&gem).to_json().unwrap();
        let restored = GemSnapshot::from_json(&restored).unwrap().restore().unwrap();
        assert_eq!(restored.graph().n_records(), n_records);
        assert_eq!(restored.detector().n_updates, n_updates);
    }

    #[test]
    fn save_load_via_files() {
        let (gem, _) = trained_gem();
        let path = std::env::temp_dir().join("gem_persist_test.json");
        gem.save(&path).unwrap();
        let restored = Gem::load(&path).unwrap();
        assert_eq!(restored.graph().n_edges(), gem.graph().n_edges());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_corrupted_snapshots() {
        assert!(matches!(GemSnapshot::from_json("not json"), Err(PersistError::Format(_))));
        let (gem, _) = trained_gem();
        let mut snap = GemSnapshot::capture(&gem);
        snap.version = 99;
        let json = snap.to_json().unwrap();
        assert!(matches!(
            GemSnapshot::from_json(&json).unwrap().restore(),
            Err(PersistError::Incompatible(_))
        ));
    }

    #[test]
    fn rejects_inconsistent_trust_bits() {
        let (gem, _) = trained_gem();
        let mut snap = GemSnapshot::capture(&gem);
        snap.trusted.pop();
        assert!(matches!(snap.restore(), Err(PersistError::Incompatible(_))));
    }

    #[test]
    fn restored_system_keeps_learning() {
        let (gem, ds) = trained_gem();
        let mut restored = GemSnapshot::capture(&gem)
            .to_json()
            .and_then(|j| GemSnapshot::from_json(&j))
            .unwrap()
            .restore()
            .unwrap();
        let before = restored.graph().n_records();
        let mut saw_in = false;
        for t in &ds.test {
            let d = restored.infer(&t.record);
            saw_in |= d.label == Label::In;
        }
        assert!(restored.graph().n_records() > before);
        assert!(saw_in, "restored model should accept some in-premises scans");
    }

    #[test]
    fn snapshot_resumes_rng_stream() {
        let (mut gem, ds) = trained_gem();
        // Advance the online stream so the RNG is mid-sequence.
        for t in ds.test.iter().take(10) {
            gem.infer(&t.record);
        }
        let state = gem.rng_state();
        let restored = GemSnapshot::capture(&gem)
            .to_json()
            .and_then(|j| GemSnapshot::from_json(&j))
            .unwrap()
            .restore()
            .unwrap();
        assert_eq!(restored.rng_state(), state, "restore must resume the exact RNG state");
        // A pre-rng snapshot (field absent) still restores, with a fresh
        // seed-derived stream.
        let mut snap = GemSnapshot::capture(&gem);
        snap.rng = None;
        assert!(snap.restore().is_ok());
    }

    #[test]
    fn manifest_roundtrips_and_verifies() {
        let dir = std::env::temp_dir().join("gem_manifest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap_path = dir.join("premises-7.json");
        std::fs::write(&snap_path, b"{\"stub\":true}").unwrap();
        let checksum = fnv1a64_hex(&std::fs::read(&snap_path).unwrap());
        let manifest = FleetManifest::new(vec![
            PremisesEntry {
                premises_id: 9,
                snapshot_file: "premises-9.json".into(),
                snapshot_checksum: "0".repeat(16),
                epochs: 3,
                sidecar: serde_json::Value::Null,
            },
            PremisesEntry {
                premises_id: 7,
                snapshot_file: "premises-7.json".into(),
                snapshot_checksum: checksum,
                epochs: 12,
                sidecar: serde_json::Value::Object(vec![(
                    "alerts".to_string(),
                    serde_json::Value::U64(2),
                )]),
            },
        ]);
        manifest.save(&dir).unwrap();
        let loaded = FleetManifest::load(&dir).unwrap();
        // Entries are sorted by premises id and survive the roundtrip.
        assert_eq!(loaded.premises.len(), 2);
        assert_eq!(loaded.premises[0].premises_id, 7);
        assert_eq!(loaded.entry(7).unwrap().epochs, 12);
        let sidecar = loaded.entry(7).unwrap().sidecar.as_object().unwrap();
        assert_eq!(serde::get_field_opt(sidecar, "alerts").unwrap().as_u64(), Some(2));
        // The referenced snapshot verifies; the missing one fails I/O.
        assert!(matches!(loaded.verify_snapshots(&dir), Err(PersistError::Io(_))));
        let only_seven = FleetManifest::new(vec![loaded.entry(7).unwrap().clone()]);
        only_seven.save(&dir).unwrap();
        FleetManifest::load(&dir).unwrap().verify_snapshots(&dir).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_rejects_tampering() {
        let dir = std::env::temp_dir().join("gem_manifest_tamper_test");
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = FleetManifest::new(vec![PremisesEntry {
            premises_id: 1,
            snapshot_file: "premises-1.json".into(),
            snapshot_checksum: "0".repeat(16),
            epochs: 5,
            sidecar: serde_json::Value::Null,
        }]);
        manifest.save(&dir).unwrap();
        // Flip the recorded epoch count in the file: the body checksum no
        // longer matches and the load must fail.
        let path = dir.join(MANIFEST_FILE);
        let tampered =
            std::fs::read_to_string(&path).unwrap().replace("\"epochs\": 5", "\"epochs\": 6");
        std::fs::write(&path, tampered).unwrap();
        assert!(matches!(FleetManifest::load(&dir), Err(PersistError::Incompatible(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv_checksum_is_stable() {
        // Reference vectors for FNV-1a 64 (from the published parameters)
        // — the on-disk format depends on these exact values.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64_hex(b"foobar"), "85944171f73967e8");
    }
}
