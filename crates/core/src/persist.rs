//! Model persistence: snapshot a trained GEM system to disk and restore
//! it later — the deployment story of the paper's server-side component
//! (the Android app uploads scans; the server keeps the model warm
//! across restarts).
//!
//! A [`GemSnapshot`] captures everything the online system needs: the
//! configuration, the bipartite graph (including streamed nodes), the
//! trained BiSAGE model with its base tables, the detector state
//! (histograms, frozen reference set, thresholds) and the per-record
//! trust bits. Snapshots are JSON (portable, diff-able); a typical
//! one-home model is a few hundred kilobytes.

use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use gem_graph::BipartiteGraph;
use gem_nn::Tensor;

use crate::bisage::{BiSage, TrainReport};
use crate::config::GemConfig;
use crate::detector::EnhancedDetector;
use crate::gem::Gem;
use crate::pca::PcaRotation;

/// Magic marker + version guard for snapshot files.
const FORMAT: &str = "gem-snapshot";
const VERSION: u32 = 1;

/// A complete serialized GEM system.
#[derive(Serialize, Deserialize)]
pub struct GemSnapshot {
    format: String,
    version: u32,
    /// Configuration the system was trained with.
    pub cfg: GemConfig,
    /// The bipartite graph (training + streamed records).
    pub graph: BipartiteGraph,
    /// The trained embedding model.
    pub bisage: BiSage,
    /// The detector with its online-update state.
    pub detector: EnhancedDetector,
    /// BiSAGE training diagnostics.
    pub train_report: TrainReport,
    /// Primary embeddings of the initial training records.
    pub train_embeddings: Tensor,
    /// Per-record pseudo-label trust bits.
    pub trusted: Vec<bool>,
    /// The fitted PCA rotation, when enabled.
    pub pca: Option<PcaRotation>,
}

/// Errors from snapshot I/O.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem error.
    Io(io::Error),
    /// Malformed JSON or wrong schema.
    Format(String),
    /// The file is valid JSON but not a compatible snapshot.
    Incompatible(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            PersistError::Format(e) => write!(f, "snapshot format error: {e}"),
            PersistError::Incompatible(e) => write!(f, "incompatible snapshot: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl GemSnapshot {
    /// Captures the full state of a running system.
    pub fn capture(gem: &Gem) -> GemSnapshot {
        GemSnapshot {
            format: FORMAT.to_string(),
            version: VERSION,
            cfg: gem.cfg.clone(),
            graph: gem.graph().clone(),
            bisage: gem.bisage().clone(),
            detector: gem.detector().clone(),
            train_report: gem.train_report().clone(),
            train_embeddings: gem.training_embeddings().clone(),
            trusted: gem.trusted_records().to_vec(),
            pca: gem.pca().cloned(),
        }
    }

    /// Restores a runnable system. Fails when the snapshot is internally
    /// inconsistent (e.g. trust bits not matching the graph).
    pub fn restore(self) -> Result<Gem, PersistError> {
        if self.format != FORMAT {
            return Err(PersistError::Incompatible(format!("format tag {:?}", self.format)));
        }
        if self.version != VERSION {
            return Err(PersistError::Incompatible(format!(
                "snapshot version {} (supported: {VERSION})",
                self.version
            )));
        }
        if self.trusted.len() != self.graph.n_records() {
            return Err(PersistError::Incompatible(format!(
                "trust bits ({}) do not match graph records ({})",
                self.trusted.len(),
                self.graph.n_records()
            )));
        }
        if self.cfg.pca_rotation && self.pca.is_none() {
            return Err(PersistError::Incompatible(
                "config enables pca_rotation but the snapshot has no rotation".into(),
            ));
        }
        Ok(Gem::from_parts(
            self.cfg,
            self.graph,
            self.bisage,
            self.detector,
            self.train_report,
            self.train_embeddings,
            self.trusted,
            self.pca,
        ))
    }

    /// Serializes to a JSON string.
    pub fn to_json(&self) -> Result<String, PersistError> {
        serde_json::to_string(self).map_err(|e| PersistError::Format(e.to_string()))
    }

    /// Parses from a JSON string.
    pub fn from_json(json: &str) -> Result<GemSnapshot, PersistError> {
        serde_json::from_str(json).map_err(|e| PersistError::Format(e.to_string()))
    }

    /// Writes the snapshot to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Reads a snapshot from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<GemSnapshot, PersistError> {
        Self::from_json(&fs::read_to_string(path)?)
    }
}

impl Gem {
    /// Saves the full system state to a JSON snapshot file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        GemSnapshot::capture(self).save(path)
    }

    /// Restores a system from a snapshot file.
    pub fn load(path: impl AsRef<Path>) -> Result<Gem, PersistError> {
        GemSnapshot::load(path)?.restore()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_rfsim::{Scenario, ScenarioConfig};
    use gem_signal::Label;

    fn trained_gem() -> (Gem, gem_signal::Dataset) {
        let mut cfg = ScenarioConfig::user(1);
        cfg.train_duration_s = 150.0;
        cfg.n_test_in = 30;
        cfg.n_test_out = 30;
        let ds = Scenario::build(cfg).generate();
        (Gem::fit(GemConfig::default(), &ds.train), ds)
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let (gem, ds) = trained_gem();
        let json = GemSnapshot::capture(&gem).to_json().unwrap();
        let restored = GemSnapshot::from_json(&json).unwrap().restore().unwrap();
        // The restored system must make identical decisions.
        let mut a = gem;
        let mut b = restored;
        for t in &ds.test {
            let da = a.infer(&t.record);
            let db = b.infer(&t.record);
            assert_eq!(da.label, db.label);
            assert!((da.score - db.score).abs() < 1e-12);
        }
    }

    #[test]
    fn snapshot_preserves_online_state() {
        let (mut gem, ds) = trained_gem();
        for t in ds.test.iter().take(20) {
            gem.infer(&t.record);
        }
        let n_records = gem.graph().n_records();
        let n_updates = gem.detector().n_updates;
        let restored = GemSnapshot::capture(&gem).to_json().unwrap();
        let restored = GemSnapshot::from_json(&restored).unwrap().restore().unwrap();
        assert_eq!(restored.graph().n_records(), n_records);
        assert_eq!(restored.detector().n_updates, n_updates);
    }

    #[test]
    fn save_load_via_files() {
        let (gem, _) = trained_gem();
        let path = std::env::temp_dir().join("gem_persist_test.json");
        gem.save(&path).unwrap();
        let restored = Gem::load(&path).unwrap();
        assert_eq!(restored.graph().n_edges(), gem.graph().n_edges());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_corrupted_snapshots() {
        assert!(matches!(GemSnapshot::from_json("not json"), Err(PersistError::Format(_))));
        let (gem, _) = trained_gem();
        let mut snap = GemSnapshot::capture(&gem);
        snap.version = 99;
        let json = snap.to_json().unwrap();
        assert!(matches!(
            GemSnapshot::from_json(&json).unwrap().restore(),
            Err(PersistError::Incompatible(_))
        ));
    }

    #[test]
    fn rejects_inconsistent_trust_bits() {
        let (gem, _) = trained_gem();
        let mut snap = GemSnapshot::capture(&gem);
        snap.trusted.pop();
        assert!(matches!(snap.restore(), Err(PersistError::Incompatible(_))));
    }

    #[test]
    fn restored_system_keeps_learning() {
        let (gem, ds) = trained_gem();
        let mut restored = GemSnapshot::capture(&gem)
            .to_json()
            .and_then(|j| GemSnapshot::from_json(&j))
            .unwrap()
            .restore()
            .unwrap();
        let before = restored.graph().n_records();
        let mut saw_in = false;
        for t in &ds.test {
            let d = restored.infer(&t.record);
            saw_in |= d.label == Label::In;
        }
        assert!(restored.graph().n_records() > before);
        assert!(saw_in, "restored model should accept some in-premises scans");
    }
}
