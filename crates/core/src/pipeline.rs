//! Composition traits for the evaluation's algorithm grid.
//!
//! Table I of the paper crosses embedding algorithms (BiSAGE, GraphSAGE,
//! autoencoder, MDS) with outlier detectors (our enhanced histogram "OD",
//! feature bagging, iForest, LOF). These traits give every combination
//! the same streaming interface. Construction/fitting stays concrete per
//! algorithm (their hyperparameters differ); the traits cover post-fit
//! behaviour only.

use gem_signal::{Label, SignalRecord};

use crate::detector::{BaselineHbos, EnhancedDetector};

/// Anything that can turn a streamed signal record into a fixed-length
/// embedding. Implementations may mutate internal state (e.g. grow the
/// bipartite graph). `None` means the record cannot be embedded at all
/// (e.g. it shares no MAC with the training data) and must be treated as
/// an outlier.
pub trait Embedder {
    /// Embeds one new record.
    fn embed(&mut self, record: &SignalRecord) -> Option<Vec<f32>>;
    /// Embedding dimensionality.
    fn dim(&self) -> usize;
    /// Post-decision hook: tells the embedder whether the record it just
    /// embedded was classified an outlier, so graph-growing embedders can
    /// exclude outliers from future neighborhood expansion.
    fn feedback(&mut self, _outlier: bool) {}
}

/// A fitted one-class model over embeddings.
pub trait OutlierModel {
    /// Outlier score; higher = more likely outside.
    fn score(&self, sample: &[f32]) -> f64;
    /// Hard decision at the model's operating threshold.
    fn is_outlier(&self, sample: &[f32]) -> bool;
    /// Post-decision hook for models that self-update on streamed data.
    fn observe(&mut self, _sample: &[f32], _predicted_outlier: bool) {}
}

impl OutlierModel for EnhancedDetector {
    fn score(&self, sample: &[f32]) -> f64 {
        EnhancedDetector::score(self, sample)
    }

    fn is_outlier(&self, sample: &[f32]) -> bool {
        self.detect(sample).is_outlier
    }

    fn observe(&mut self, sample: &[f32], _predicted_outlier: bool) {
        // Score once; the update half reuses the Detection instead of
        // re-scoring the same sample through detect_and_update.
        let det = self.detect(sample);
        self.update_if_confident(sample, &det);
    }
}

impl OutlierModel for BaselineHbos {
    fn score(&self, sample: &[f32]) -> f64 {
        BaselineHbos::score(self, sample)
    }

    fn is_outlier(&self, sample: &[f32]) -> bool {
        self.detect(sample).is_outlier
    }

    fn observe(&mut self, sample: &[f32], predicted_outlier: bool) {
        if !predicted_outlier {
            self.detect_and_update(sample);
        }
    }
}

/// One streaming decision from a pipeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PipelineDecision {
    /// Predicted location class.
    pub label: Label,
    /// Outlier score (higher = more outside).
    pub score: f64,
    /// Whether the record was embeddable at all.
    pub embeddable: bool,
}

/// An embedder plus an outlier model, streamed record by record.
pub struct Pipeline<E: Embedder, D: OutlierModel> {
    /// The embedding stage.
    pub embedder: E,
    /// The detection stage.
    pub detector: D,
}

impl<E: Embedder, D: OutlierModel> Pipeline<E, D> {
    /// Wires the two fitted stages together.
    pub fn new(embedder: E, detector: D) -> Self {
        Pipeline { embedder, detector }
    }

    /// Classifies one streamed record, letting the detector self-update.
    pub fn infer(&mut self, record: &SignalRecord) -> PipelineDecision {
        match self.embedder.embed(record) {
            None => PipelineDecision { label: Label::Out, score: 1.0, embeddable: false },
            Some(h) => {
                let outlier = self.detector.is_outlier(&h);
                let score = self.detector.score(&h);
                self.detector.observe(&h, outlier);
                self.embedder.feedback(outlier);
                PipelineDecision {
                    label: if outlier { Label::Out } else { Label::In },
                    score,
                    embeddable: true,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_nn::Tensor;

    struct StubEmbedder;
    impl Embedder for StubEmbedder {
        fn embed(&mut self, record: &SignalRecord) -> Option<Vec<f32>> {
            if record.is_empty() {
                None
            } else {
                Some(vec![record.readings[0].rssi / 100.0; 2])
            }
        }
        fn dim(&self) -> usize {
            2
        }
    }

    fn train_cluster() -> Tensor {
        // Mass at -0.60/-0.61 with a thin tail at -0.70.
        Tensor::from_fn(
            40,
            2,
            |i, _| {
                if i % 20 == 19 {
                    -0.70
                } else {
                    -0.60 - (i % 2) as f32 / 100.0
                }
            },
        )
    }

    #[test]
    fn pipeline_routes_unembeddable_to_out() {
        let det = EnhancedDetector::fit(&train_cluster(), 8, 0.06, 0.005, 0.001);
        let mut p = Pipeline::new(StubEmbedder, det);
        let d = p.infer(&SignalRecord::new(0.0));
        assert_eq!(d.label, Label::Out);
        assert!(!d.embeddable);
        assert_eq!(d.score, 1.0);
    }

    #[test]
    fn pipeline_classifies_by_detector() {
        use gem_signal::MacAddr;
        let det = EnhancedDetector::fit(&train_cluster(), 8, 0.06, 0.005, 0.001);
        let mut p = Pipeline::new(StubEmbedder, det);
        // rssi -60 → embedding -0.6 → inlier region.
        let inside = SignalRecord::from_pairs(0.0, [(MacAddr::from_raw(1), -61.0)]);
        let outside = SignalRecord::from_pairs(0.0, [(MacAddr::from_raw(1), -95.0)]);
        assert_eq!(p.infer(&inside).label, Label::In);
        assert_eq!(p.infer(&outside).label, Label::Out);
    }

    #[test]
    fn enhanced_detector_observe_updates_only_confident() {
        let mut det = EnhancedDetector::fit(&train_cluster(), 8, 0.06, 0.005, 0.001);
        let n0 = det.n_samples();
        det.observe(&[-0.61, -0.61], false);
        assert_eq!(det.n_samples(), n0 + 1);
        det.observe(&[5.0, 5.0], true);
        assert_eq!(det.n_samples(), n0 + 1);
    }
}
