//! GEM: geofencing with network embedding (the paper's contribution).
//!
//! The three integral components:
//!
//! 1. **Weighted bipartite graph modeling** (provided by [`gem_graph`]) —
//!    each RF record is a `U` node, each sensed MAC a `V` node, edge
//!    weight `w = RSS + c`;
//! 2. **[`bisage::BiSage`]** — the inductive bipartite network-embedding
//!    algorithm with bi-level (primary/auxiliary) aggregation, non-uniform
//!    neighbor sampling, weighted random walks and negative sampling
//!    (paper Section IV-B);
//! 3. **[`detector::EnhancedDetector`]** — the enhanced histogram-based
//!    one-class classifier with temperature-softmax score rescaling and
//!    confident-sample online updates (Sections IV-C and V-B).
//!
//! [`gem::Gem`] wires the three together into the end-to-end system with
//! online inference and self-enhancement. [`pipeline`] defines the
//! `Embedder`/`OutlierModel` traits so the paper's baseline comparisons
//! (other embedders × other detectors) compose the same way.

pub mod bisage;
pub mod config;
pub mod detector;
pub mod gem;
pub mod hbos;
pub mod infer;
pub mod pca;
pub mod persist;
pub mod pipeline;
pub mod quant;

pub use bisage::{obs_step_recorder, Aggregator, BiSage, BiSageConfig, StepEvent};
pub use config::GemConfig;
pub use detector::{BaselineHbos, Detection, EnhancedDetector};
pub use gem::{Decision, Gem};
pub use hbos::HistogramModel;
pub use infer::{CacheStats, InferenceEngine};
pub use pca::PcaRotation;
pub use persist::{
    fnv1a64, fnv1a64_hex, FleetManifest, GemSnapshot, PersistError, PremisesEntry, MANIFEST_FILE,
};
pub use pipeline::{Embedder, OutlierModel, Pipeline};
pub use quant::{QuantizedDetector, QuantizedScorer};
