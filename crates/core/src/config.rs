//! System-level configuration with the paper's published defaults.

use gem_graph::{WalkConfig, WeightFn};
use gem_nn::Activation;

use crate::bisage::{Aggregator, BiSageConfig};

/// All GEM hyperparameters. The defaults are the paper's baseline
/// parameters (Section VI, "Experiment setup"): learning rate 0.003,
/// embedding dimension 32, offset `c` = 120 dBm, scaling factor
/// `T` = 0.06, in-out threshold `τ_u` = 0.005, updating threshold
/// `τ_l` = 0.001.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct GemConfig {
    /// Edge-weight function for the bipartite graph (paper Eq. 2).
    pub weight_fn: WeightFn,
    /// Embedding dimension `d`.
    pub embedding_dim: usize,
    /// Aggregation rounds `K`.
    pub rounds: usize,
    /// Neighbors sampled per node per tree depth (`|N_s|`).
    pub sample_sizes: Vec<usize>,
    /// SGD/Adam learning rate.
    pub learning_rate: f32,
    /// Training epochs over the random-walk pair stream.
    pub epochs: usize,
    /// Pairs per training step.
    pub batch_size: usize,
    /// Random-walk schedule.
    pub walks: WalkConfig,
    /// Negative samples per positive pair (`K_N`).
    pub negative_samples: usize,
    /// Exponent of the negative-sampling degree distribution.
    pub negative_power: f64,
    /// Nonlinearity `σ` in Eqs. 4/6.
    pub activation: Activation,
    /// Whether base embeddings `h⁰, l⁰` are trained (see DESIGN.md).
    pub trainable_base: bool,
    /// Neighborhood aggregator.
    pub aggregator: Aggregator,
    /// Uniform (ablation) instead of weighted neighbor sampling.
    pub uniform_sampling: bool,
    /// Draw negatives from the side opposite to each pair's `x` node
    /// (see `BiSageConfig::typed_negatives`).
    pub typed_negatives: bool,
    /// Top-K heaviest-edge cap for deterministic full-neighborhood
    /// inference.
    pub inference_cap: usize,
    /// Minimum *trusted* sightings before a post-fit MAC contributes to
    /// inference neighborhoods; `usize::MAX` (default) quarantines new
    /// MACs for the whole session — they stay in the graph and join the
    /// evidence pool at the next re-fit (see DESIGN.md).
    pub min_mac_degree: usize,
    /// Extra pruned-copy embedding passes per training record when
    /// fitting the detector; simulates records with missing MACs so the
    /// histograms tolerate AP churn.
    pub augment_passes: usize,
    /// Probability that each non-anchor reading is dropped in an
    /// augmentation copy.
    pub augment_drop: f64,
    /// The strongest readings of a record that augmentation never drops.
    pub augment_anchors: usize,
    /// Rotate embeddings into the training cloud's principal axes before
    /// the histogram detector (extension beyond the paper; see
    /// `gem_core::pca`).
    pub pca_rotation: bool,
    /// Histogram bins per dimension `m`.
    pub bins: usize,
    /// Softmax scaling factor `T` (paper Eq. 10).
    pub temperature: f32,
    /// In-out decision threshold `τ_u` (paper Eq. 11).
    pub tau_u: f32,
    /// Online-update confidence threshold `τ_l < τ_u`.
    pub tau_l: f32,
    /// Optimize `τ_u`/`τ_l` on the training scores (the paper treats them
    /// as hyperparameters "to be optimized in the learning process"); the
    /// configured values then act as floors.
    pub calibrate_thresholds: bool,
    /// Training-score quantile that must classify in-premises when
    /// calibrating `τ_u`.
    pub calibrate_keep_in: f64,
    /// Training-score quantile for the confident-update band `τ_l`.
    pub calibrate_confident: f64,
    /// Contamination factor `γ` of the original histogram algorithm
    /// (used by the non-enhanced baseline and ROC comparisons).
    pub contamination: f32,
    /// Worker threads for training and batch scoring: `0` = all cores
    /// (or `GEM_NUM_THREADS`), `1` = sequential. Results are identical
    /// for any value (see `BiSageConfig::num_threads`).
    pub num_threads: usize,
    /// Minibatch chunks averaged into each optimizer step
    /// (see `BiSageConfig::grad_accum`).
    pub grad_accum: usize,
    /// Sparse (touched-rows-only, lazily caught-up) Adam updates for the
    /// base-embedding tables (see `BiSageConfig::sparse_adam`).
    /// Bit-identical to the dense update, just faster.
    pub sparse_adam: bool,
    /// Fused multiply-add training kernels (see
    /// `BiSageConfig::fused_kernels`): faster on FMA hardware and still
    /// deterministic, but not bit-comparable with the strict default.
    #[serde(default)]
    pub fused_kernels: bool,
    /// Master seed.
    pub seed: u64,
}

impl Default for GemConfig {
    fn default() -> Self {
        GemConfig {
            weight_fn: WeightFn::OffsetLinear { c: 120.0 },
            embedding_dim: 32,
            rounds: 2,
            sample_sizes: vec![10, 5],
            learning_rate: 0.003,
            epochs: 3,
            batch_size: 64,
            walks: WalkConfig { walks_per_node: 6, walk_length: 6 },
            negative_samples: 4,
            negative_power: 0.75,
            activation: Activation::LeakyRelu,
            trainable_base: true,
            aggregator: Aggregator::WeightedMean,
            uniform_sampling: false,
            typed_negatives: false,
            inference_cap: 48,
            min_mac_degree: usize::MAX,
            augment_passes: 2,
            augment_drop: 0.15,
            augment_anchors: 5,
            pca_rotation: false,
            bins: 10,
            temperature: 0.06,
            tau_u: 0.005,
            tau_l: 0.001,
            calibrate_thresholds: true,
            calibrate_keep_in: 0.95,
            calibrate_confident: 0.70,
            contamination: 0.05,
            num_threads: 0,
            grad_accum: 2,
            sparse_adam: true,
            fused_kernels: false,
            seed: 42,
        }
    }
}

impl GemConfig {
    /// The embedding-algorithm slice of the configuration.
    pub fn bisage(&self) -> BiSageConfig {
        BiSageConfig {
            dim: self.embedding_dim,
            rounds: self.rounds,
            sample_sizes: self.sample_sizes.clone(),
            activation: self.activation,
            learning_rate: self.learning_rate,
            epochs: self.epochs,
            batch_size: self.batch_size,
            walks: self.walks,
            negative_samples: self.negative_samples,
            negative_power: self.negative_power,
            trainable_base: self.trainable_base,
            aggregator: self.aggregator,
            uniform_sampling: self.uniform_sampling,
            typed_negatives: self.typed_negatives,
            inference_cap: self.inference_cap,
            min_mac_degree: self.min_mac_degree,
            num_threads: self.num_threads,
            grad_accum: self.grad_accum,
            sparse_adam: self.sparse_adam,
            fused_kernels: self.fused_kernels,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GemConfig::default();
        assert_eq!(c.embedding_dim, 32);
        assert!((c.learning_rate - 0.003).abs() < 1e-9);
        assert!((c.temperature - 0.06).abs() < 1e-9);
        assert!((c.tau_u - 0.005).abs() < 1e-9);
        assert!((c.tau_l - 0.001).abs() < 1e-9);
        assert_eq!(c.negative_samples, 4);
        assert!(matches!(c.weight_fn, WeightFn::OffsetLinear { c } if (c - 120.0).abs() < 1e-9));
        assert!(c.tau_l < c.tau_u, "update threshold must be stricter");
    }

    #[test]
    fn bisage_slice_is_consistent() {
        let c = GemConfig::default();
        let b = c.bisage();
        assert_eq!(b.dim, c.embedding_dim);
        assert_eq!(b.sample_sizes.len(), c.rounds);
    }
}
