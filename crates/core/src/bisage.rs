//! BiSAGE: inductive network embedding for weighted bipartite graphs
//! (paper Section IV-B).
//!
//! Every node carries two embeddings: the *primary* embedding `h` (used
//! downstream for classification) and the *auxiliary* embedding `l`, the
//! "carrier" that propagates information between nodes of the same type
//! without disturbing the other type's primary embeddings. One
//! aggregation round updates, for every node `i`:
//!
//! ```text
//! h_i^k = normalize(σ(W_h^k · [h_i^{k-1} | Σ_j w̃_ij · l_j^{k-1}]))
//! l_i^k = normalize(σ(W_l^k · [l_i^{k-1} | Σ_j w̃_ij · h_j^{k-1}]))
//! ```
//!
//! with `j` ranging over a *weighted sample* of `i`'s neighbors and `w̃`
//! the paper's weighted-mean aggregator (Eqs. 3–7). Training minimizes
//! the bi-level negative-sampling loss of Eq. 8 over consecutive pairs of
//! weighted random walks.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::RngExt;
use serde::Serialize;

use gem_graph::{BipartiteGraph, NegativeTable, NodeId, RecordId, WalkConfig, WalkPairs};
use gem_nn::tape::{Activation, GradStore, Graph, ParamId, ParamStore, Var};
use gem_nn::{init, Adam, Optimizer, Precision, Tensor, TensorArena};
use gem_signal::rng::child_rng;

/// Neighborhood aggregator choice (paper: "e.g. MEAN(·) or MAX(·)"; GEM
/// uses the edge-weighted mean).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, serde::Deserialize)]
pub enum Aggregator {
    /// `Σ w_ij · l_j / Σ w_ij` over the sampled neighborhood (the paper's
    /// choice — attention "for free" from the physical edge weights).
    WeightedMean,
    /// Plain mean over the sampled neighborhood (GraphSAGE-style ablation).
    Mean,
}

/// Hyperparameters of the embedding algorithm.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct BiSageConfig {
    /// Embedding dimension `d`.
    pub dim: usize,
    /// Aggregation rounds `K`.
    pub rounds: usize,
    /// Neighbors sampled per node at each tree depth (len = `rounds`).
    pub sample_sizes: Vec<usize>,
    /// Nonlinearity `σ`.
    pub activation: Activation,
    /// Optimizer learning rate.
    pub learning_rate: f32,
    /// Passes over the random-walk pair stream.
    pub epochs: usize,
    /// Positive pairs per step.
    pub batch_size: usize,
    /// Walk schedule for positive-pair generation.
    pub walks: WalkConfig,
    /// Negative samples per positive pair (`K_N`).
    pub negative_samples: usize,
    /// Negative distribution exponent (`deg^{3/4}`).
    pub negative_power: f64,
    /// Train the base embeddings `h⁰, l⁰` (vs frozen random).
    pub trainable_base: bool,
    /// Aggregator.
    pub aggregator: Aggregator,
    /// Sample neighbors uniformly instead of by edge weight (ablation).
    pub uniform_sampling: bool,
    /// Ablation: draw each pair's negatives only from the side opposite
    /// to `x` instead of the paper's `z ∈ U ∪ V`. Empirically *worse* —
    /// same-type repulsion gives records discriminative relative
    /// positions — so the default follows the paper.
    pub typed_negatives: bool,
    /// At inference the full neighborhood is aggregated deterministically
    /// (exact Eq. 3); nodes with more neighbors than this cap keep only
    /// their top-cap heaviest edges.
    pub inference_cap: usize,
    /// A MAC node must appear in at least this many records before it
    /// contributes to a record's neighborhood expansion at inference —
    /// brand-new MACs carry no in/out evidence yet and would destabilize
    /// embeddings; they join once sighted often enough (the paper's
    /// "newly sensed MACs … improve the performance over time").
    pub min_mac_degree: usize,
    /// Worker threads for data-parallel training and batch inference:
    /// `0` uses the process-global pool (all cores, or `GEM_PAR_THREADS`
    /// / `GEM_NUM_THREADS`), `1` forces the sequential path on the
    /// caller thread, and any other value caps the pool to that many
    /// threads via [`gem_par::thread_cap`]. The result is bit-identical
    /// for every setting — each minibatch chunk derives its own RNG from
    /// `(seed, epoch, chunk_idx)` and chunk gradients are reduced with a
    /// fixed merge tree over chunk indices, so thread count never
    /// touches the arithmetic.
    pub num_threads: usize,
    /// Minibatch chunks whose gradients are averaged into one optimizer
    /// step. Every chunk of a group is computed against the same
    /// parameter snapshot — that independence is what makes the chunks
    /// parallelizable. `1` recovers strict per-chunk stepping (and
    /// serializes training).
    pub grad_accum: usize,
    /// Update the base-embedding tables with the sparse Adam path: only
    /// rows gathered by the current step group are touched, with the
    /// deferred zero-gradient decay replayed lazily before rows are read.
    /// Bit-identical to the dense update (a proptest enforces it) — this
    /// flag only trades per-step cost `O(table)` for `O(touched rows)`.
    pub sparse_adam: bool,
    /// Run the training tape's matmul forward/backward kernels with
    /// fused multiply-adds (single rounding per accumulate, double the
    /// peak FLOPs on FMA hardware). Results stay deterministic for any
    /// thread count — the chunk-ordered reduction is untouched — and
    /// bitwise reproducible across runs on the same kernel backend, but
    /// are *not* bit-comparable with the default strictly-rounded path,
    /// so the flag defaults off and old serialized configs load as off.
    #[serde(default)]
    pub fused_kernels: bool,
    /// Seed for all training/inference randomness.
    pub seed: u64,
}

impl Default for BiSageConfig {
    fn default() -> Self {
        BiSageConfig {
            dim: 32,
            rounds: 2,
            sample_sizes: vec![8, 4],
            activation: Activation::LeakyRelu,
            learning_rate: 0.003,
            epochs: 3,
            batch_size: 128,
            walks: WalkConfig { walks_per_node: 4, walk_length: 5 },
            negative_samples: 4,
            negative_power: 0.75,
            trainable_base: true,
            aggregator: Aggregator::WeightedMean,
            uniform_sampling: false,
            typed_negatives: false,
            inference_cap: 48,
            min_mac_degree: usize::MAX,
            num_threads: 0,
            grad_accum: 2,
            sparse_adam: true,
            fused_kernels: false,
            seed: 42,
        }
    }
}

/// Sampled neighborhood tree for a batch of target nodes.
///
/// `layers[0]` is the batch; `layers[d+1]` holds, for every node of
/// `layers[d]`, its sampled neighbors (with replacement) in segment order.
///
/// All buffers are `Arc`-shared with the tape (handed over without
/// copying, reused across aggregation rounds) and reusable across steps:
/// [`BiSage::build_tree_into`] rebuilds a tree in place, reclaiming each
/// `Arc` once the previous step's tape has released it.
#[derive(Default)]
pub(crate) struct Tree {
    pub(crate) layers: Vec<Vec<NodeId>>,
    /// Per depth `d`: segment offsets into `layers[d+1]` (+ end sentinel).
    pub(crate) offsets: Vec<Arc<Vec<u32>>>,
    /// Per depth `d`: aggregation weight of each `layers[d+1]` node,
    /// normalized within its segment.
    pub(crate) weights: Vec<Arc<Vec<f32>>>,
    /// Per layer: base-table row of each node (the gather indices).
    pub(crate) row_idx: Vec<Arc<Vec<u32>>>,
}

/// Unique access to an `Arc`-shared buffer for in-place reuse: reclaims
/// the existing allocation when the previous consumer has dropped its
/// clone, otherwise starts a fresh one. Never clears — callers do.
fn arc_vec_mut<T>(arc: &mut Arc<Vec<T>>) -> &mut Vec<T> {
    if Arc::get_mut(arc).is_none() {
        *arc = Arc::new(Vec::new());
    }
    Arc::get_mut(arc).expect("freshly created Arc is unique")
}

/// Handles of the learnable parameters during a training run.
struct TrainParams {
    w_h: Vec<ParamId>,
    w_l: Vec<ParamId>,
    /// `(h⁰ table, l⁰ table)` when the base embeddings are trainable.
    base: Option<(ParamId, ParamId)>,
}

/// Per-epoch training diagnostics.
#[derive(Clone, Debug, Default, Serialize, serde::Deserialize)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Positive pairs consumed.
    pub pairs_seen: usize,
}

/// The BiSAGE model: trained aggregation matrices plus the (growable)
/// base-embedding tables for every node seen so far.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct BiSage {
    /// Hyperparameters.
    pub cfg: BiSageConfig,
    /// `W_h^k`, each `(2d × d)`.
    pub(crate) w_h: Vec<Tensor>,
    /// `W_l^k`, each `(2d × d)`.
    pub(crate) w_l: Vec<Tensor>,
    /// Unified base primary table: row `2·r` for record `r`, `2·m+1` for
    /// MAC `m`.
    pub(crate) base_h: Tensor,
    /// Unified base auxiliary table (same indexing).
    pub(crate) base_l: Tensor,
    /// Which unified rows have been initialized.
    initialized: Vec<bool>,
    /// Rows initialized before their node was *established* (enough
    /// trusted sightings); re-derived once establishment is reached.
    provisional: Vec<bool>,
    /// MAC nodes below this id existed at fit time and are established
    /// by definition.
    macs_at_fit: usize,
    /// Whether `fit` has completed at least once.
    trained: bool,
}

/// Unified row index of a node in the base tables.
pub(crate) fn node_row(node: NodeId) -> usize {
    match node {
        NodeId::Record(r) => 2 * r.0 as usize,
        NodeId::Mac(m) => 2 * m.0 as usize + 1,
    }
}

impl BiSage {
    /// Creates an untrained model.
    pub fn new(cfg: BiSageConfig) -> Self {
        assert_eq!(cfg.sample_sizes.len(), cfg.rounds, "one sample size per round");
        assert!(cfg.dim > 0 && cfg.rounds > 0);
        let d = cfg.dim;
        let mut seed_rng = child_rng(cfg.seed, 0x5EED_B15A);
        let w_h = (0..cfg.rounds).map(|_| init::xavier_uniform(&mut seed_rng, 2 * d, d)).collect();
        let w_l = (0..cfg.rounds).map(|_| init::xavier_uniform(&mut seed_rng, 2 * d, d)).collect();
        BiSage {
            cfg,
            w_h,
            w_l,
            base_h: Tensor::zeros(0, d),
            base_l: Tensor::zeros(0, d),
            initialized: Vec::new(),
            provisional: Vec::new(),
            macs_at_fit: 0,
            trained: false,
        }
    }

    /// Whether `fit` has completed.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.cfg.dim
    }

    /// The trained aggregation matrices `(W_h^k, W_l^k)`. Exposed so the
    /// determinism contract — identical parameters for a fixed seed at
    /// any thread count — can be checked from outside the crate.
    pub fn aggregation_weights(&self) -> (&[Tensor], &[Tensor]) {
        (&self.w_h, &self.w_l)
    }

    fn grow_tables(&mut self, rows_needed: usize) {
        let d = self.cfg.dim;
        if self.base_h.rows() >= rows_needed {
            return;
        }
        let grown = rows_needed.max(self.base_h.rows() * 2).max(16);
        let mut new_h = Tensor::zeros(grown, d);
        let mut new_l = Tensor::zeros(grown, d);
        for i in 0..self.base_h.rows() {
            new_h.set_row(i, self.base_h.row(i));
            new_l.set_row(i, self.base_l.row(i));
        }
        self.base_h = new_h;
        self.base_l = new_l;
        self.initialized.resize(grown, false);
        self.provisional.resize(grown, false);
    }

    /// Makes sure every node of the graph has initialized base rows.
    ///
    /// Before training, new rows are random unit vectors (the paper's
    /// "h⁰ and l⁰ are chosen randomly"). After training, a new node is
    /// initialized with the edge-weighted mean of its neighbors' carriers
    /// (`h⁰` from neighbor `l⁰`s and vice versa), the documented inductive
    /// rule for streamed nodes; isolated nodes fall back to random.
    pub fn ensure_rows(&mut self, graph: &BipartiteGraph, rng: &mut impl RngExt) {
        self.ensure_rows_filtered(graph, rng, None)
    }

    /// [`BiSage::ensure_rows`] with a trusted-record filter: new record
    /// bases are derived only from *established* MACs (enough trusted
    /// sightings) and new MAC bases only from trusted records, falling
    /// back to the unfiltered neighborhood when nothing qualifies.
    pub fn ensure_rows_filtered(
        &mut self,
        graph: &BipartiteGraph,
        rng: &mut impl RngExt,
        trusted: Option<&(dyn Fn(RecordId) -> bool + Sync)>,
    ) {
        let needed = 2 * graph.n_records().max(graph.n_macs());
        self.grow_tables(needed);
        // MAC nodes first so that brand-new records can average them.
        let macs: Vec<NodeId> =
            (0..graph.n_macs() as u32).map(|m| NodeId::Mac(gem_graph::MacId(m))).collect();
        let recs: Vec<NodeId> =
            (0..graph.n_records() as u32).map(|r| NodeId::Record(RecordId(r))).collect();
        for node in macs.into_iter().chain(recs) {
            let row = node_row(node);
            if self.initialized[row] {
                // Provisional MAC bases are re-derived once the MAC has
                // gathered enough trusted sightings.
                if self.provisional[row] {
                    if let NodeId::Mac(m) = node {
                        let need = self.cfg.min_mac_degree;
                        let now_established = (m.0 as usize) < self.macs_at_fit
                            || (need != usize::MAX
                                && match trusted {
                                    None => true,
                                    Some(f) => {
                                        graph
                                            .mac_neighbors(m)
                                            .filter(|&(r, _)| f(r))
                                            .take(need)
                                            .count()
                                            >= need
                                    }
                                });
                        if now_established {
                            self.initialized[row] = false; // re-derive below
                            self.provisional[row] = false;
                        }
                    }
                }
                if self.initialized[row] {
                    continue;
                }
            }
            self.init_node_row(graph, node, rng, trusted);
        }
    }

    /// Targeted [`BiSage::ensure_rows_filtered`] for one freshly streamed
    /// record: initializes exactly the rows the full node scan would —
    /// the record's newly interned MACs (interned in reading order, hence
    /// ascending id, matching the scan's MAC-first order and RNG stream)
    /// followed by the record itself — without walking the whole node
    /// set. Only valid in session-quarantine mode
    /// (`min_mac_degree == usize::MAX`), where the full scan never
    /// re-derives provisional MAC bases; callers with a finite
    /// establishment threshold must run the full scan.
    /// Public (hidden) so the engine-parity proptests can check it
    /// against the full scan bitwise, RNG stream included.
    #[doc(hidden)]
    pub fn ensure_rows_for_record(
        &mut self,
        graph: &BipartiteGraph,
        record: RecordId,
        rng: &mut impl RngExt,
        trusted: Option<&(dyn Fn(RecordId) -> bool + Sync)>,
    ) {
        debug_assert_eq!(self.cfg.min_mac_degree, usize::MAX);
        let needed = 2 * graph.n_records().max(graph.n_macs());
        self.grow_tables(needed);
        for m in graph.record_neighbors(record).map(|(m, _)| m) {
            if !self.initialized[node_row(NodeId::Mac(m))] {
                self.init_node_row(graph, NodeId::Mac(m), rng, trusted);
            }
        }
        if !self.initialized[node_row(NodeId::Record(record))] {
            self.init_node_row(graph, NodeId::Record(record), rng, trusted);
        }
    }

    /// Derives and writes the base rows of one uninitialized node — the
    /// shared body of the full [`BiSage::ensure_rows_filtered`] scan and
    /// the targeted streaming path. Consumes the RNG only for the
    /// isolated-node random fallback.
    fn init_node_row(
        &mut self,
        graph: &BipartiteGraph,
        node: NodeId,
        rng: &mut impl RngExt,
        trusted: Option<&(dyn Fn(RecordId) -> bool + Sync)>,
    ) {
        let d = self.cfg.dim;
        let row = node_row(node);
        let mut h_acc = vec![0.0f32; d];
        let mut l_acc = vec![0.0f32; d];
        let mut w_sum = 0.0f32;
        if self.trained {
            let established = |m: gem_graph::MacId| -> bool {
                if (m.0 as usize) < self.macs_at_fit {
                    return true;
                }
                if self.cfg.min_mac_degree == usize::MAX {
                    return false;
                }
                let need = self.cfg.min_mac_degree;
                match trusted {
                    None => true,
                    Some(f) => {
                        graph.mac_neighbors(m).filter(|&(r, _)| f(r)).take(need).count() >= need
                    }
                }
            };
            let mut neighbors: Vec<(NodeId, f32)> = match node {
                NodeId::Record(r) => graph
                    .record_neighbors(r)
                    .filter(|&(m, _)| established(m))
                    .map(|(m, w)| (NodeId::Mac(m), w))
                    .collect(),
                NodeId::Mac(m) => graph
                    .mac_neighbors(m)
                    .filter(|&(r, _)| trusted.is_none_or(|f| f(r)))
                    .map(|(r, w)| (NodeId::Record(r), w))
                    .collect(),
            };
            if neighbors.is_empty() {
                neighbors = match node {
                    NodeId::Record(r) => {
                        graph.record_neighbors(r).map(|(m, w)| (NodeId::Mac(m), w)).collect()
                    }
                    NodeId::Mac(m) => {
                        graph.mac_neighbors(m).map(|(r, w)| (NodeId::Record(r), w)).collect()
                    }
                };
            }
            for (nbr, w) in neighbors {
                let nrow = node_row(nbr);
                if nrow < self.initialized.len() && self.initialized[nrow] {
                    // Carrier semantics: my h aligns with neighbors' l.
                    for (a, &v) in h_acc.iter_mut().zip(self.base_l.row(nrow)) {
                        *a += w * v;
                    }
                    for (a, &v) in l_acc.iter_mut().zip(self.base_h.row(nrow)) {
                        *a += w * v;
                    }
                    w_sum += w;
                }
            }
        }
        if w_sum > 0.0 {
            normalize_into(&mut h_acc);
            normalize_into(&mut l_acc);
            self.base_h.set_row(row, &h_acc);
            self.base_l.set_row(row, &l_acc);
        } else {
            let h = init::unit_rows(rng, 1, d);
            let l = init::unit_rows(rng, 1, d);
            self.base_h.set_row(row, h.row(0));
            self.base_l.set_row(row, l.row(0));
        }
        self.initialized[row] = true;
        // New MAC nodes seen by too few trusted records keep a
        // provisional base until they are established.
        if let NodeId::Mac(m) = node {
            if self.trained {
                let need = self.cfg.min_mac_degree;
                let established = (m.0 as usize) < self.macs_at_fit
                    || (need != usize::MAX
                        && match trusted {
                            None => true,
                            Some(f) => {
                                graph.mac_neighbors(m).filter(|&(r, _)| f(r)).take(need).count()
                                    >= need
                            }
                        });
                self.provisional[row] = !established;
            }
        }
    }

    /// Pure half of [`BiSage::derive_record_base`]: the inductive
    /// neighbor-mean base rows of a record (`h⁰` from its MACs' `l⁰`s and
    /// vice versa, weighted by edge weight), or `None` for isolated
    /// records. Reads only MAC rows, so it is safe to evaluate for many
    /// records in parallel before any record row is written.
    fn compute_record_base(
        &self,
        graph: &BipartiteGraph,
        r: RecordId,
    ) -> Option<(Vec<f32>, Vec<f32>)> {
        let d = self.cfg.dim;
        let mut h_acc = vec![0.0f32; d];
        let mut l_acc = vec![0.0f32; d];
        let mut w_sum = 0.0f32;
        for (m, w) in graph.record_neighbors(r) {
            let nrow = node_row(NodeId::Mac(m));
            if nrow < self.initialized.len() && self.initialized[nrow] {
                for (a, &v) in h_acc.iter_mut().zip(self.base_l.row(nrow)) {
                    *a += w * v;
                }
                for (a, &v) in l_acc.iter_mut().zip(self.base_h.row(nrow)) {
                    *a += w * v;
                }
                w_sum += w;
            }
        }
        if w_sum <= 0.0 {
            return None;
        }
        normalize_into(&mut h_acc);
        normalize_into(&mut l_acc);
        Some((h_acc, l_acc))
    }

    /// Writes freshly derived base rows for a record.
    fn apply_record_base(&mut self, r: RecordId, h: &[f32], l: &[f32]) {
        let row = node_row(NodeId::Record(r));
        self.base_h.set_row(row, h);
        self.base_l.set_row(row, l);
        self.initialized[row] = true;
    }

    /// Collects a node's neighborhood for one tree level: a weighted
    /// random sample during training, or (deterministically) the full
    /// neighborhood — truncated to the top-`cap` heaviest edges — at
    /// inference time.
    fn neighborhood(
        &self,
        graph: &BipartiteGraph,
        node: NodeId,
        sample_size: usize,
        rng: Option<&mut StdRng>,
        trusted: Option<&(dyn Fn(RecordId) -> bool + Sync)>,
    ) -> Vec<(NodeId, f32)> {
        match rng {
            Some(rng) => {
                if self.cfg.uniform_sampling {
                    graph.sample_neighbors_uniform(node, sample_size, rng)
                } else {
                    graph.sample_neighbors(node, sample_size, rng)
                }
            }
            None => {
                let mut all = Vec::new();
                self.neighborhood_into(graph, node, trusted, &mut all);
                all
            }
        }
    }

    /// The deterministic (inference-time) branch of
    /// [`BiSage::neighborhood`], writing into a caller-owned buffer so
    /// the streaming engine can collect neighborhoods without
    /// allocating. Semantics are identical to the allocating path:
    /// established-MAC / trusted-record filtering, raw-neighborhood
    /// fallback, top-`inference_cap` truncation.
    pub(crate) fn neighborhood_into(
        &self,
        graph: &BipartiteGraph,
        node: NodeId,
        trusted: Option<&(dyn Fn(RecordId) -> bool + Sync)>,
        out: &mut Vec<(NodeId, f32)>,
    ) {
        out.clear();
        // A MAC is "established" once enough *trusted* records
        // have sighted it; until then it carries no reliable
        // in/out evidence and is left out of record expansions.
        let established = |m: gem_graph::MacId| -> bool {
            // MACs present at fit time are established by
            // definition; later arrivals must first gather
            // enough trusted sightings (usize::MAX = session
            // quarantine: never admitted before a re-fit).
            if (m.0 as usize) < self.macs_at_fit {
                return true;
            }
            let need = self.cfg.min_mac_degree;
            if need == usize::MAX {
                return false;
            }
            match trusted {
                None => true,
                Some(f) => graph.mac_neighbors(m).filter(|&(r, _)| f(r)).take(need).count() >= need,
            }
        };
        match node {
            NodeId::Record(r) => out.extend(
                graph
                    .record_neighbors(r)
                    .filter(|&(m, _)| established(m))
                    .map(|(m, w)| (NodeId::Mac(m), w)),
            ),
            NodeId::Mac(m) => out.extend(
                graph
                    .mac_neighbors(m)
                    .filter(|&(r, _)| trusted.is_none_or(|f| f(r)))
                    .map(|(r, w)| (NodeId::Record(r), w)),
            ),
        }
        // Freshly streamed nodes may have no established
        // neighbors at all; fall back to the raw neighborhood
        // rather than embedding from nothing.
        if out.is_empty() {
            match node {
                NodeId::Record(r) => {
                    out.extend(graph.record_neighbors(r).map(|(m, w)| (NodeId::Mac(m), w)))
                }
                NodeId::Mac(m) => {
                    out.extend(graph.mac_neighbors(m).map(|(r, w)| (NodeId::Record(r), w)))
                }
            }
        }
        if out.len() > self.cfg.inference_cap {
            out.sort_by(|a, b| b.1.total_cmp(&a.1));
            out.truncate(self.cfg.inference_cap);
        }
    }

    fn build_tree(
        &self,
        graph: &BipartiteGraph,
        targets: &[NodeId],
        rng: Option<&mut StdRng>,
        trusted: Option<&(dyn Fn(RecordId) -> bool + Sync)>,
    ) -> Tree {
        let mut tree = Tree::default();
        let mut scratch = Vec::new();
        self.build_tree_into(graph, targets, rng, trusted, &mut tree, &mut scratch);
        tree
    }

    /// [`BiSage::build_tree`] into a reusable tree: every layer, offset,
    /// weight, and row-index buffer is rebuilt in place (allocation-free
    /// once warm), and `scratch` holds one node's sampled neighborhood at
    /// a time on the training path. The RNG stream consumed is identical
    /// to the allocating variant's.
    pub(crate) fn build_tree_into(
        &self,
        graph: &BipartiteGraph,
        targets: &[NodeId],
        mut rng: Option<&mut StdRng>,
        trusted: Option<&(dyn Fn(RecordId) -> bool + Sync)>,
        tree: &mut Tree,
        scratch: &mut Vec<(NodeId, f32)>,
    ) {
        /// Below this many frontier nodes, fan-out overhead beats the win.
        const PAR_THRESHOLD: usize = 32;
        let rounds = self.cfg.rounds;
        tree.layers.resize_with(rounds + 1, Vec::new);
        tree.offsets.resize_with(rounds, || Arc::new(Vec::new()));
        tree.weights.resize_with(rounds, || Arc::new(Vec::new()));
        tree.row_idx.resize_with(rounds + 1, || Arc::new(Vec::new()));
        tree.layers[0].clear();
        tree.layers[0].extend_from_slice(targets);
        for depth in 0..rounds {
            let s = self.cfg.sample_sizes[depth];
            let (done, rest) = tree.layers.split_at_mut(depth + 1);
            let cur = &done[depth];
            let next = &mut rest[0];
            let offs = arc_vec_mut(&mut tree.offsets[depth]);
            let wts = arc_vec_mut(&mut tree.weights[depth]);
            next.clear();
            offs.clear();
            wts.clear();
            offs.push(0u32);
            let append_segment = |sampled: &[(NodeId, f32)],
                                  next: &mut Vec<NodeId>,
                                  offs: &mut Vec<u32>,
                                  wts: &mut Vec<f32>| {
                let w_total: f32 = match self.cfg.aggregator {
                    Aggregator::WeightedMean => sampled.iter().map(|&(_, w)| w).sum(),
                    Aggregator::Mean => sampled.len() as f32,
                };
                for &(nbr, w) in sampled {
                    next.push(nbr);
                    let norm_w = match self.cfg.aggregator {
                        Aggregator::WeightedMean => w / w_total.max(1e-12),
                        Aggregator::Mean => 1.0 / w_total.max(1e-12),
                    };
                    wts.push(norm_w);
                }
                offs.push(next.len() as u32);
            };
            match &mut rng {
                // Training: sample each node's neighborhood into the
                // shared scratch and assemble its segment immediately
                // (assembly consumes no randomness, so the RNG stream
                // matches the collect-then-assemble order exactly).
                Some(rng) => {
                    for &node in cur.iter() {
                        scratch.clear();
                        if self.cfg.uniform_sampling {
                            graph.sample_neighbors_uniform_into(node, s, rng, scratch);
                        } else {
                            graph.sample_neighbors_into(node, s, rng, scratch);
                        }
                        append_segment(scratch, next, offs, wts);
                    }
                }
                // Inference: no RNG stream to preserve, so the per-node
                // neighborhood collection — the expensive part:
                // filtering, weighting, top-cap sorting — can fan out;
                // segment assembly stays sequential either way.
                None => {
                    let sampled: Vec<Vec<(NodeId, f32)>> =
                        if self.cfg.num_threads != 1 && cur.len() >= PAR_THRESHOLD {
                            let _cap = (self.cfg.num_threads > 1)
                                .then(|| gem_par::thread_cap(self.cfg.num_threads));
                            gem_par::par_map(cur, |&node| {
                                self.neighborhood(graph, node, s, None, trusted)
                            })
                        } else {
                            cur.iter()
                                .map(|&node| self.neighborhood(graph, node, s, None, trusted))
                                .collect()
                        };
                    for sampled in &sampled {
                        append_segment(sampled, next, offs, wts);
                    }
                }
            }
        }
        for (layer, idx) in tree.layers.iter().zip(tree.row_idx.iter_mut()) {
            let idx = arc_vec_mut(idx);
            idx.clear();
            idx.extend(layer.iter().map(|&n| node_row(n) as u32));
        }
    }

    /// Shared forward pass over a neighborhood tree. When `params` is
    /// `Some`, learnable tensors come from the store (training); otherwise
    /// the model's frozen tensors enter as constants (inference).
    fn forward(
        &self,
        g: &mut Graph,
        tree: &Tree,
        store: Option<&ParamStore>,
        params: Option<&TrainParams>,
        fs: &mut ForwardScratch,
    ) -> (Var, Var) {
        let k_rounds = self.cfg.rounds;
        fs.cur_h.clear();
        fs.cur_l.clear();
        for (layer, idx) in tree.layers.iter().zip(&tree.row_idx) {
            match (store, params.and_then(|p| p.base.as_ref())) {
                (Some(s), Some(&(bh, bl))) => {
                    // The tape shares the tree's row-index buffer (no copy).
                    fs.cur_h.push(g.gather(s, bh, idx));
                    fs.cur_l.push(g.gather(s, bl, idx));
                }
                _ => {
                    let mut h = Tensor::zeros(layer.len(), self.cfg.dim);
                    let mut l = Tensor::zeros(layer.len(), self.cfg.dim);
                    for (i, &r) in idx.iter().enumerate() {
                        h.set_row(i, self.base_h.row(r as usize));
                        l.set_row(i, self.base_l.row(r as usize));
                    }
                    fs.cur_h.push(g.constant(h));
                    fs.cur_l.push(g.constant(l));
                }
            }
        }
        for k in 1..=k_rounds {
            let (w_h_var, w_l_var) = match (store, params) {
                (Some(s), Some(p)) => (g.param(s, p.w_h[k - 1]), g.param(s, p.w_l[k - 1])),
                _ => (g.constant(self.w_h[k - 1].clone()), g.constant(self.w_l[k - 1].clone())),
            };
            let depths = k_rounds - k;
            fs.next_h.clear();
            fs.next_l.clear();
            for d in 0..=depths {
                let agg_h = g.segment_weighted_sum(
                    fs.cur_l[d + 1],
                    Arc::clone(&tree.offsets[d]),
                    Arc::clone(&tree.weights[d]),
                );
                let cat_h = g.concat_cols(fs.cur_h[d], agg_h);
                let lin_h = g.matmul(cat_h, w_h_var);
                let act_h = g.activation(lin_h, self.cfg.activation);
                fs.next_h.push(g.row_l2_normalize(act_h));

                let agg_l = g.segment_weighted_sum(
                    fs.cur_h[d + 1],
                    Arc::clone(&tree.offsets[d]),
                    Arc::clone(&tree.weights[d]),
                );
                let cat_l = g.concat_cols(fs.cur_l[d], agg_l);
                let lin_l = g.matmul(cat_l, w_l_var);
                let act_l = g.activation(lin_l, self.cfg.activation);
                fs.next_l.push(g.row_l2_normalize(act_l));
            }
            std::mem::swap(&mut fs.cur_h, &mut fs.next_h);
            std::mem::swap(&mut fs.cur_l, &mut fs.next_l);
        }
        (fs.cur_h[0], fs.cur_l[0])
    }

    /// Trains the model on the current graph (paper's initial training).
    /// Re-fitting resets the aggregation matrices.
    pub fn fit(&mut self, graph: &BipartiteGraph) -> TrainReport {
        self.fit_instrumented(graph, &mut |_| {})
    }

    /// [`BiSage::fit`] with an event callback fired around every optimizer
    /// step group (see [`StepEvent`]). Benchmarks hook this to window
    /// per-step measurements — allocation counts, timings — without
    /// perturbing the hot loop; the events are invoked on the caller's
    /// thread, outside all parallel regions.
    pub fn fit_instrumented(
        &mut self,
        graph: &BipartiteGraph,
        on_event: &mut dyn FnMut(StepEvent),
    ) -> TrainReport {
        let mut rng = child_rng(self.cfg.seed, 0x7_1A14);
        self.ensure_rows(graph, &mut rng);
        let mut report = TrainReport::default();
        let Some(negatives) = NegativeTable::build(graph, self.cfg.negative_power) else {
            // Graph without edges: nothing to learn from.
            self.trained = true;
            self.macs_at_fit = graph.n_macs();
            return report;
        };
        let typed_tables = if self.cfg.typed_negatives {
            let recs =
                NegativeTable::build_filtered(graph, self.cfg.negative_power, |n| n.is_record());
            let macs =
                NegativeTable::build_filtered(graph, self.cfg.negative_power, |n| !n.is_record());
            recs.zip(macs)
        } else {
            None
        };

        let d = self.cfg.dim;
        let mut store = ParamStore::new();
        let w_h: Vec<ParamId> = (0..self.cfg.rounds)
            .map(|k| store.add(format!("w_h{k}"), self.w_h[k].clone()))
            .collect();
        let w_l: Vec<ParamId> = (0..self.cfg.rounds)
            .map(|k| store.add(format!("w_l{k}"), self.w_l[k].clone()))
            .collect();
        let base = if self.cfg.trainable_base {
            let rows = 2 * graph.n_records().max(graph.n_macs());
            let mut bh = Tensor::zeros(rows, d);
            let mut bl = Tensor::zeros(rows, d);
            for i in 0..rows {
                bh.set_row(i, self.base_h.row(i));
                bl.set_row(i, self.base_l.row(i));
            }
            Some((store.add("base_h", bh), store.add("base_l", bl)))
        } else {
            None
        };
        let params = TrainParams { w_h, w_l, base };
        if self.cfg.sparse_adam {
            if let Some((bh, bl)) = params.base {
                store.mark_sparse(bh);
                store.mark_sparse(bl);
            }
        }
        let mut opt = Adam::new(self.cfg.learning_rate);

        // Data-parallel epoch loop. The chunk decomposition is a pure
        // function of the shuffled pair stream and `batch_size`; every
        // chunk derives its RNG from `(seed, epoch, chunk_idx)` and its
        // gradients are computed against the parameter snapshot at the
        // start of its group. The reducer then folds the group's gradient
        // sinks back in fixed chunk order, so the parameter trajectory is
        // bit-identical for any thread count.
        //
        // Each group runs in three phases: (1) *plan* — per-chunk RNG
        // target assembly and tree sampling; (2) *catch-up* — sparse Adam
        // brings every base row the group will gather up to the current
        // step, since the forward pass is about to read it; (3) *compute*
        // — forward/backward on thread-local arena tapes into per-chunk
        // persistent sinks. Phases 1 and 3 fan out over chunks.
        let group_len = self.cfg.grad_accum.max(1);
        // `num_threads > 1` caps the pool for the duration of this fit;
        // the guard composes with any cap the caller already holds.
        let _cap = (self.cfg.num_threads > 1).then(|| gem_par::thread_cap(self.cfg.num_threads));
        let parallel = self.cfg.num_threads != 1 && gem_par::effective_threads() > 1;
        // Per-chunk state persists across groups so warm steps reuse every
        // buffer; `plans` only grows (a shorter final group borrows a
        // prefix), so warmed buffers are never dropped early.
        let mut plans: Vec<ChunkPlan> = Vec::new();
        let mut row_seen: Vec<bool> = Vec::new();
        let mut rows_union: Vec<u32> = Vec::new();
        for epoch in 0..self.cfg.epochs {
            let mut pairs = WalkPairs::generate(graph, self.cfg.walks, &mut rng);
            if pairs.is_empty() {
                break;
            }
            pairs.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            let mut steps = 0usize;
            let chunks: Vec<&[(NodeId, NodeId)]> =
                pairs.pairs.chunks(self.cfg.batch_size).collect();
            for (group_idx, group) in chunks.chunks(group_len).enumerate() {
                on_event(StepEvent::GroupStart);
                if plans.len() < group.len() {
                    plans.resize_with(group.len(), ChunkPlan::default);
                }
                let active = &mut plans[..group.len()];

                // Phase 1 — plan. Writes only into the chunk's own plan.
                let plan_one = |i: usize, plan: &mut ChunkPlan| {
                    let mut rng =
                        child_rng(self.cfg.seed, chunk_stream(epoch, group_idx * group_len + i));
                    let ChunkPlan { targets, tree, scratch, .. } = plan;
                    self.plan_targets(
                        group[i],
                        &negatives,
                        typed_tables.as_ref(),
                        &mut rng,
                        targets,
                    );
                    self.build_tree_into(graph, targets, Some(&mut rng), None, tree, scratch);
                };
                if parallel {
                    gem_par::par_for_each_mut(active, plan_one);
                } else {
                    for (i, plan) in active.iter_mut().enumerate() {
                        plan_one(i, plan);
                    }
                }

                // Phase 2 — catch-up of the union of gathered base rows
                // (deduplicated via a reusable bitmap; catch-up order is
                // irrelevant because rows are independent).
                if self.cfg.sparse_adam {
                    if let Some((bh, bl)) = params.base {
                        row_seen.resize(store.value(bh).rows(), false);
                        rows_union.clear();
                        for plan in active.iter() {
                            for idx in &plan.tree.row_idx {
                                for &r in idx.iter() {
                                    if !row_seen[r as usize] {
                                        row_seen[r as usize] = true;
                                        rows_union.push(r);
                                    }
                                }
                            }
                        }
                        opt.catch_up_rows(&mut store, bh, &rows_union);
                        opt.catch_up_rows(&mut store, bl, &rows_union);
                        for &r in &rows_union {
                            row_seen[r as usize] = false;
                        }
                    }
                }

                // Phase 3 — compute, against the shared snapshot.
                let compute_one = |i: usize, plan: &mut ChunkPlan| {
                    let ChunkPlan { tree, sink, loss, .. } = plan;
                    *loss = self.chunk_grads_planned(&store, &params, tree, group[i].len(), sink);
                };
                if parallel {
                    gem_par::par_for_each_mut(active, compute_one);
                } else {
                    for (i, plan) in active.iter_mut().enumerate() {
                        compute_one(i, plan);
                    }
                }

                // Reduce with a fixed pairwise tree over chunk indices
                // (stride doubling): the merge topology depends only on
                // the group length, never on the thread count, so the
                // summed gradient — and the whole trajectory — stays
                // bit-identical for any parallelism (determinism
                // contract). Pairs at one level are disjoint, so the
                // merges themselves fan out; the store is written once
                // at the root instead of once per chunk.
                let alpha = 1.0 / active.len() as f32;
                for plan in active.iter() {
                    epoch_loss += plan.loss as f64;
                    steps += 1;
                }
                let mut stride = 1;
                while stride < active.len() {
                    let merge_pair = |_i: usize, pair: &mut [ChunkPlan]| {
                        if pair.len() > stride {
                            let (dst, src) = pair.split_at_mut(stride);
                            dst[0].sink.merge_from(&src[0].sink);
                        }
                    };
                    if parallel && active.len() > 2 * stride {
                        gem_par::par_chunks_mut(active, 2 * stride, merge_pair);
                    } else {
                        for pair in active.chunks_mut(2 * stride) {
                            merge_pair(0, pair);
                        }
                    }
                    stride *= 2;
                }
                store.apply_grads(&active[0].sink, alpha);
                store.clip_grad_norm(5.0);
                opt.step(&mut store);
                store.zero_grads();
                on_event(StepEvent::GroupEnd);
            }
            report.pairs_seen += pairs.len();
            report.epoch_losses.push((epoch_loss / steps.max(1) as f64) as f32);
        }
        // Sparse Adam leaves never-again-gathered rows behind; flush the
        // deferred updates so the stored tables bitwise match the dense
        // trajectory before anything reads them.
        opt.finalize(&mut store);

        for k in 0..self.cfg.rounds {
            self.w_h[k] = store.value(params.w_h[k]).clone();
            self.w_l[k] = store.value(params.w_l[k]).clone();
        }
        if let Some((bh, bl)) = params.base {
            let trained_h = store.value(bh);
            let trained_l = store.value(bl);
            for i in 0..trained_h.rows() {
                self.base_h.set_row(i, trained_h.row(i));
                self.base_l.set_row(i, trained_l.row(i));
            }
        }
        self.trained = true;
        self.macs_at_fit = graph.n_macs();
        // Inductive consistency: record nodes keep *no* node-specific
        // parameters at inference. Their trained bases served as free
        // variables that shaped the MAC bases and aggregation matrices
        // during training; now every record base is re-derived from its
        // MAC neighbors by the same rule streamed records will use, so
        // training and streamed records are exchangeable. The derivation
        // reads only MAC rows, so all records compute in parallel before
        // any row is written.
        let recs: Vec<RecordId> = (0..graph.n_records() as u32).map(RecordId).collect();
        let bases = if self.cfg.num_threads != 1 && recs.len() >= 32 {
            gem_par::par_map(&recs, |&r| self.compute_record_base(graph, r))
        } else {
            recs.iter().map(|&r| self.compute_record_base(graph, r)).collect()
        };
        for (&r, base) in recs.iter().zip(&bases) {
            if let Some((h, l)) = base {
                self.apply_record_base(r, h, l);
            }
        }
        report
    }

    /// Phase-1 target assembly for one chunk: the positive pairs'
    /// endpoints followed by `negative_samples` negatives per pair, into
    /// the chunk's reusable buffer. Consumes the chunk RNG exactly like
    /// the pre-split training loop did (negatives first, tree second).
    fn plan_targets(
        &self,
        pairs: &[(NodeId, NodeId)],
        negatives: &NegativeTable,
        typed_tables: Option<&(NegativeTable, NegativeTable)>,
        rng: &mut StdRng,
        out: &mut Vec<NodeId>,
    ) {
        let b = pairs.len();
        let kn = self.cfg.negative_samples;
        out.clear();
        out.reserve(2 * b + b * kn);
        out.extend(pairs.iter().map(|&(x, _)| x));
        out.extend(pairs.iter().map(|&(_, y)| y));
        for &(x, y) in pairs {
            let table = match typed_tables {
                // Negatives share y's type (the side opposite to x).
                Some((recs, macs)) => {
                    if y.is_record() {
                        recs
                    } else {
                        macs
                    }
                }
                None => negatives,
            };
            for _ in 0..kn {
                out.push(table.sample_excluding(x, y, rng));
            }
        }
    }

    /// Phase-3 forward + backward for one planned chunk against a
    /// read-only parameter snapshot, gradients into the chunk's
    /// persistent sink. The sampling RNG was already consumed in phase 1,
    /// so the result does not depend on which thread — or in what order —
    /// the chunk is evaluated. Runs on a thread-local arena-backed tape:
    /// after the first step of a given shape, the whole computation
    /// performs no heap allocation.
    fn chunk_grads_planned(
        &self,
        store: &ParamStore,
        params: &TrainParams,
        tree: &Tree,
        b: usize,
        sink: &mut GradStore,
    ) -> f32 {
        let kn = self.cfg.negative_samples;
        STEP_BUFFERS.with(|buffers| {
            let buf = &mut *buffers.borrow_mut();
            let StepBuffers {
                graph: g,
                forward: fs,
                x_idx,
                y_idx,
                z_idx,
                x_rep,
                ones,
                zeros,
                index_shape,
            } = buf;
            // The buffers are thread-local and shared across models, so
            // (re)assert this model's precision policy every chunk.
            g.set_precision(if self.cfg.fused_kernels {
                Precision::Fused
            } else {
                Precision::Strict
            });
            let (h_all, l_all) = self.forward(g, tree, Some(store), Some(params), fs);

            // Selection/target vectors depend only on `(b, kn)`; rebuild
            // them only when the shape changes — the final short chunk of
            // an epoch, typically. The previous tape has been reset, so
            // the old Arcs are unreferenced and simply replaced.
            if *index_shape != (b, kn) {
                *x_idx = Arc::new((0..b as u32).collect());
                *y_idx = Arc::new((b as u32..2 * b as u32).collect());
                *z_idx = Arc::new((2 * b as u32..(2 * b + b * kn) as u32).collect());
                *x_rep = Arc::new((0..b as u32).flat_map(|i| std::iter::repeat_n(i, kn)).collect());
                *ones = Arc::new(vec![1.0f32; b]);
                *zeros = Arc::new(vec![0.0f32; b * kn]);
                *index_shape = (b, kn);
            }

            let h_x = g.select_rows(h_all, &*x_idx);
            let l_x = g.select_rows(l_all, &*x_idx);
            let h_y = g.select_rows(h_all, &*y_idx);
            let l_y = g.select_rows(l_all, &*y_idx);
            let h_z = g.select_rows(h_all, &*z_idx);
            let l_z = g.select_rows(l_all, &*z_idx);
            let h_x_rep = g.select_rows(h_all, &*x_rep);
            let l_x_rep = g.select_rows(l_all, &*x_rep);

            let pos1 = g.rows_dot(h_x, l_y);
            let pos2 = g.rows_dot(l_x, h_y);
            let neg1 = g.rows_dot(h_x_rep, l_z);
            let neg2 = g.rows_dot(l_x_rep, h_z);

            let lp1 = g.bce_with_logits_mean(pos1, &*ones);
            let lp2 = g.bce_with_logits_mean(pos2, &*ones);
            let ln1 = g.bce_with_logits_mean(neg1, &*zeros);
            let ln2 = g.bce_with_logits_mean(neg2, &*zeros);
            let pos_sum = g.add(lp1, lp2);
            let neg_sum = g.add(ln1, ln2);
            let loss = g.add(pos_sum, neg_sum);
            let loss_value = g.value(loss)[(0, 0)];

            sink.ensure_like(store);
            g.backward_into(loss, sink);
            // Recycle every tape buffer into the arena and release the
            // tape's clones of the tree/index Arcs, so the next phase 1
            // can rebuild the tree buffers in place.
            g.reset();
            loss_value
        })
    }

    /// Diagnostic: the depth-1 expansion (MAC neighbors) a record target
    /// would use at inference under a trust filter.
    pub fn debug_expansion(
        &self,
        graph: &BipartiteGraph,
        record: RecordId,
        trusted: Option<&(dyn Fn(RecordId) -> bool + Sync)>,
    ) -> Vec<(NodeId, f32)> {
        self.neighborhood(graph, NodeId::Record(record), 0, None, trusted)
    }

    /// Computes final `(h^K, l^K)` embeddings for a set of nodes through
    /// the learned aggregation, deterministically over the (capped) full
    /// neighborhoods. Rows for every tree node must exist (call
    /// [`BiSage::ensure_rows`] after adding nodes to the graph).
    pub fn embed_nodes(&self, graph: &BipartiteGraph, nodes: &[NodeId]) -> (Tensor, Tensor) {
        self.embed_nodes_filtered(graph, nodes, None)
    }

    /// Like [`BiSage::embed_nodes`], but the deterministic neighborhood
    /// expansion only passes through record nodes accepted by `trusted`.
    /// GEM uses this to keep streamed records that were classified as
    /// outliers from redefining the in-premises graph structure (the
    /// pseudo-label principle of Section V-B).
    pub fn embed_nodes_filtered(
        &self,
        graph: &BipartiteGraph,
        nodes: &[NodeId],
        trusted: Option<&(dyn Fn(RecordId) -> bool + Sync)>,
    ) -> (Tensor, Tensor) {
        let tree = self.build_tree(graph, nodes, None, trusted);
        let mut g = Graph::new();
        let mut fs = ForwardScratch::default();
        let (h, l) = self.forward(&mut g, &tree, None, None, &mut fs);
        (g.value(h).clone(), g.value(l).clone())
    }

    /// Primary embeddings of every record node in the graph (training-set
    /// feature matrix for the detector). Runs on the tape-free
    /// [`crate::InferenceEngine`] batch path; bitwise identical to the
    /// tape reference ([`BiSage::embed_all_records_tape`]).
    pub fn embed_all_records(&self, graph: &BipartiteGraph) -> Tensor {
        let records: Vec<RecordId> = (0..graph.n_records() as u32).map(RecordId).collect();
        if records.is_empty() {
            return Tensor::zeros(0, self.cfg.dim);
        }
        let mut engine = crate::InferenceEngine::new();
        engine.embed_records_batch(self, graph, &records, None)
    }

    /// Tape-based reference for [`BiSage::embed_all_records`]; kept for
    /// the engine-parity proptests.
    #[doc(hidden)]
    pub fn embed_all_records_tape(&self, graph: &BipartiteGraph) -> Tensor {
        let nodes: Vec<NodeId> =
            (0..graph.n_records() as u32).map(|r| NodeId::Record(RecordId(r))).collect();
        if nodes.is_empty() {
            return Tensor::zeros(0, self.cfg.dim);
        }
        self.embed_nodes(graph, &nodes).0
    }

    /// Stochastic variant of [`BiSage::embed_all_records`]: neighborhoods
    /// are randomly sub-sampled (training-style), which simulates records
    /// observed with missing MACs. GEM fits its detector on several such
    /// variants so the histograms cover the MAC-churn reality. The
    /// sampled tree is evaluated tape-free on the engine; the RNG stream
    /// consumed is identical to the tape reference's.
    pub fn embed_all_records_sampled(&self, graph: &BipartiteGraph, rng: &mut StdRng) -> Tensor {
        let nodes: Vec<NodeId> =
            (0..graph.n_records() as u32).map(|r| NodeId::Record(RecordId(r))).collect();
        if nodes.is_empty() {
            return Tensor::zeros(0, self.cfg.dim);
        }
        let mut engine = crate::InferenceEngine::new();
        engine.embed_tree_sampled(self, graph, &nodes, rng)
    }

    /// Tape-based reference for [`BiSage::embed_all_records_sampled`];
    /// kept for the engine-parity proptests.
    #[doc(hidden)]
    pub fn embed_all_records_sampled_tape(
        &self,
        graph: &BipartiteGraph,
        rng: &mut StdRng,
    ) -> Tensor {
        let nodes: Vec<NodeId> =
            (0..graph.n_records() as u32).map(|r| NodeId::Record(RecordId(r))).collect();
        if nodes.is_empty() {
            return Tensor::zeros(0, self.cfg.dim);
        }
        let tree = self.build_tree(graph, &nodes, Some(rng), None);
        let mut g = Graph::new();
        let mut fs = ForwardScratch::default();
        let (h, _) = self.forward(&mut g, &tree, None, None, &mut fs);
        g.value(h).clone()
    }

    /// Primary embedding of one (possibly new) record node. Grows and
    /// initializes base rows as needed — this is the paper's Section V-A
    /// embedding prediction for streamed records. The RNG is only used
    /// for the random-init fallback of isolated new nodes.
    pub fn embed_record(
        &mut self,
        graph: &BipartiteGraph,
        record: RecordId,
        rng: &mut impl RngExt,
    ) -> Vec<f32> {
        self.embed_record_filtered(graph, record, rng, None)
    }

    /// [`BiSage::embed_record`] with a trusted-record filter on the
    /// neighborhood expansion (the streamed node itself is always kept).
    pub fn embed_record_filtered(
        &mut self,
        graph: &BipartiteGraph,
        record: RecordId,
        rng: &mut impl RngExt,
        trusted: Option<&(dyn Fn(RecordId) -> bool + Sync)>,
    ) -> Vec<f32> {
        self.ensure_rows_filtered(graph, rng, trusted);
        let wrapped = trusted.map(|f| move |r: RecordId| r == record || f(r));
        let (h, _) = self.embed_nodes_filtered(
            graph,
            &[NodeId::Record(record)],
            wrapped.as_ref().map(|f| f as &(dyn Fn(RecordId) -> bool + Sync)),
        );
        h.row(0).to_vec()
    }
}

/// RNG stream id of one training chunk: a fixed tag XOR-folded with the
/// epoch and the chunk's position in the (deterministic) epoch
/// decomposition. Fed to [`child_rng`] together with the model seed.
fn chunk_stream(epoch: usize, chunk_idx: usize) -> u64 {
    0x7C41_0000_0000_0000 ^ ((epoch as u64) << 32) ^ chunk_idx as u64
}

/// Callback events from [`BiSage::fit_instrumented`], fired on the
/// caller's thread around each optimizer step group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepEvent {
    /// About to process one gradient-accumulation group.
    GroupStart,
    /// Finished the group: optimizer step applied, gradients cleared.
    GroupEnd,
}

/// Bridges [`StepEvent`]s into observability metrics: counts finished
/// optimizer step groups on `groups` and records each group's wall time
/// (nanoseconds) into `group_seconds`, from which training throughput
/// (groups/s, p99 group time) is derivable. Pass the returned closure
/// to [`BiSage::fit_instrumented`]:
///
/// ```
/// use gem_core::bisage::{obs_step_recorder, BiSage, BiSageConfig};
/// use gem_graph::{BipartiteGraph, WeightFn};
///
/// let registry = gem_obs::Registry::new();
/// let groups = registry.counter("gem_train_step_groups_total", &[]);
/// let group_time = registry.histogram("gem_train_step_group_seconds", &[]);
/// let mut model = BiSage::new(BiSageConfig { epochs: 1, ..BiSageConfig::default() });
/// let mut on_event = obs_step_recorder(groups, group_time);
/// model.fit_instrumented(&BipartiteGraph::new(WeightFn::default()), &mut on_event);
/// ```
pub fn obs_step_recorder(
    groups: std::sync::Arc<gem_obs::Counter>,
    group_seconds: std::sync::Arc<gem_obs::Histogram>,
) -> impl FnMut(StepEvent) {
    let mut started: Option<std::time::Instant> = None;
    move |event| match event {
        StepEvent::GroupStart => started = Some(std::time::Instant::now()),
        StepEvent::GroupEnd => {
            if let Some(t0) = started.take() {
                groups.inc();
                group_seconds.record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            }
        }
    }
}

/// Persistent per-chunk training state: phase 1 (plan) fills `targets`
/// and `tree`, phase 2 reads the tree's row indices for optimizer
/// catch-up, phase 3 (compute) writes `loss` and `sink`. Plans live for
/// the whole fit so every buffer warms up once and is reused each group.
#[derive(Default)]
struct ChunkPlan {
    targets: Vec<NodeId>,
    tree: Tree,
    /// One node's sampled neighborhood during tree building.
    scratch: Vec<(NodeId, f32)>,
    sink: GradStore,
    loss: f32,
}

/// Var stacks reused by [`BiSage::forward`] across rounds and calls.
#[derive(Default)]
struct ForwardScratch {
    cur_h: Vec<Var>,
    cur_l: Vec<Var>,
    next_h: Vec<Var>,
    next_l: Vec<Var>,
}

/// Per-thread training scratch: the arena-backed tape, the forward-pass
/// var stacks, and the `(b, kn)`-shaped selection/target buffers shared
/// with the tape via `Arc`. Each pool worker (and the sequential path)
/// keeps its own copy, so no synchronization is involved and reuse cannot
/// change results.
struct StepBuffers {
    graph: Graph,
    forward: ForwardScratch,
    x_idx: Arc<Vec<u32>>,
    y_idx: Arc<Vec<u32>>,
    z_idx: Arc<Vec<u32>>,
    x_rep: Arc<Vec<u32>>,
    ones: Arc<Vec<f32>>,
    zeros: Arc<Vec<f32>>,
    /// `(batch, negatives)` shape the buffers were built for.
    index_shape: (usize, usize),
}

impl Default for StepBuffers {
    fn default() -> Self {
        StepBuffers {
            graph: Graph::with_arena(Rc::new(TensorArena::new())),
            forward: ForwardScratch::default(),
            x_idx: Arc::new(Vec::new()),
            y_idx: Arc::new(Vec::new()),
            z_idx: Arc::new(Vec::new()),
            x_rep: Arc::new(Vec::new()),
            ones: Arc::new(Vec::new()),
            zeros: Arc::new(Vec::new()),
            index_shape: (usize::MAX, usize::MAX),
        }
    }
}

thread_local! {
    static STEP_BUFFERS: RefCell<StepBuffers> = RefCell::new(StepBuffers::default());
}

pub(crate) fn normalize_into(v: &mut [f32]) {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for x in v {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_graph::WeightFn;
    use gem_signal::{MacAddr, SignalRecord};
    use rand::SeedableRng;

    fn mac(i: u64) -> MacAddr {
        MacAddr::from_raw(i)
    }

    /// Two well-separated clusters of records: cluster A shares MACs 1–3,
    /// cluster B shares MACs 11–13.
    fn cluster_graph(n_per: usize) -> BipartiteGraph {
        let mut g = BipartiteGraph::new(WeightFn::OffsetLinear { c: 120.0 });
        for i in 0..n_per {
            let jitter = (i % 3) as f32;
            g.add_record(&SignalRecord::from_pairs(
                i as f64,
                [(mac(1), -45.0 - jitter), (mac(2), -55.0 + jitter), (mac(3), -65.0)],
            ));
        }
        for i in 0..n_per {
            let jitter = (i % 3) as f32;
            g.add_record(&SignalRecord::from_pairs(
                (n_per + i) as f64,
                [(mac(11), -45.0 + jitter), (mac(12), -55.0 - jitter), (mac(13), -65.0)],
            ));
        }
        g
    }

    fn small_cfg() -> BiSageConfig {
        BiSageConfig {
            dim: 16,
            epochs: 4,
            batch_size: 64,
            sample_sizes: vec![6, 3],
            learning_rate: 0.01,
            ..BiSageConfig::default()
        }
    }

    fn mean_dist(emb: &Tensor, ids: &[usize], jds: &[usize]) -> f32 {
        let mut s = 0.0;
        let mut n = 0;
        for &i in ids {
            for &j in jds {
                if i != j {
                    s += Tensor::row_distance(emb, i, emb, j);
                    n += 1;
                }
            }
        }
        s / n as f32
    }

    #[test]
    fn training_reduces_loss() {
        let g = cluster_graph(12);
        let mut model = BiSage::new(small_cfg());
        let report = model.fit(&g);
        assert!(model.is_trained());
        assert!(report.epoch_losses.len() >= 2);
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(last < first, "loss should fall: {first} → {last}");
    }

    #[test]
    fn embeddings_separate_clusters() {
        let n = 12;
        let g = cluster_graph(n);
        let mut model = BiSage::new(small_cfg());
        model.fit(&g);
        let _rng = StdRng::seed_from_u64(5);
        let emb = model.embed_all_records(&g);
        let a: Vec<usize> = (0..n).collect();
        let b: Vec<usize> = (n..2 * n).collect();
        let within = (mean_dist(&emb, &a, &a) + mean_dist(&emb, &b, &b)) / 2.0;
        let between = mean_dist(&emb, &a, &b);
        assert!(
            between > 1.5 * within,
            "clusters must separate: within {within:.3}, between {between:.3}"
        );
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let g = cluster_graph(6);
        let mut model = BiSage::new(small_cfg());
        model.fit(&g);
        let _rng = StdRng::seed_from_u64(6);
        let emb = model.embed_all_records(&g);
        for i in 0..emb.rows() {
            let n = emb.row(i).iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4, "row {i} norm {n}");
        }
    }

    #[test]
    fn new_record_lands_near_its_cluster() {
        let n = 12;
        let mut g = cluster_graph(n);
        let mut model = BiSage::new(small_cfg());
        model.fit(&g);
        let mut rng = StdRng::seed_from_u64(7);
        let emb = model.embed_all_records(&g);
        // Stream a new record that looks like cluster A.
        let rid = g.add_record(&SignalRecord::from_pairs(
            99.0,
            [(mac(1), -46.0), (mac(2), -56.0), (mac(3), -64.0)],
        ));
        let h = model.embed_record(&g, rid, &mut rng);
        let hrow = Tensor::from_vec(1, h.len(), h);
        let da: f32 =
            (0..n).map(|i| Tensor::row_distance(&hrow, 0, &emb, i)).sum::<f32>() / n as f32;
        let db: f32 =
            (n..2 * n).map(|i| Tensor::row_distance(&hrow, 0, &emb, i)).sum::<f32>() / n as f32;
        assert!(da < db, "new A-record must embed nearer cluster A ({da:.3} vs {db:.3})");
    }

    #[test]
    fn frozen_base_also_trains() {
        let g = cluster_graph(8);
        let mut cfg = small_cfg();
        cfg.trainable_base = false;
        let mut model = BiSage::new(cfg);
        let report = model.fit(&g);
        assert!(model.is_trained());
        assert!(!report.epoch_losses.is_empty());
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = BipartiteGraph::new(WeightFn::default());
        let mut model = BiSage::new(small_cfg());
        let report = model.fit(&g);
        assert!(model.is_trained());
        assert!(report.epoch_losses.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let g = cluster_graph(6);
        let run = || {
            let mut m = BiSage::new(small_cfg());
            m.fit(&g);
            let _rng = StdRng::seed_from_u64(3);
            m.embed_all_records(&g)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn uniform_sampling_ablation_runs() {
        let g = cluster_graph(6);
        let mut cfg = small_cfg();
        cfg.uniform_sampling = true;
        cfg.aggregator = Aggregator::Mean;
        let mut model = BiSage::new(cfg);
        model.fit(&g);
        let _rng = StdRng::seed_from_u64(4);
        let emb = model.embed_all_records(&g);
        assert_eq!(emb.rows(), 12);
    }
}
