//! The end-to-end GEM system (paper Fig. 2): graph modeling → BiSAGE →
//! enhanced in-out detection, with online inference and self-enhancement.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use gem_graph::{BipartiteGraph, RecordId};
use gem_nn::Tensor;
use gem_signal::rng::child_rng;
use gem_signal::{Label, RecordSet, SignalRecord};

use crate::bisage::{BiSage, TrainReport};
use crate::config::GemConfig;
use crate::detector::{Detection, EnhancedDetector};
use crate::infer::{CacheStats, InferenceEngine};
use crate::pca::PcaRotation;
use crate::pipeline::Embedder;

/// Adds a streamed record to the graph and initializes exactly the base
/// rows the addition introduced. `None` when the record is empty or
/// shares no MAC with the graph (outlier by rule; not added).
///
/// Session-quarantine mode (`min_mac_degree == usize::MAX`, the default)
/// takes the targeted per-record path, which matches the full scan
/// bitwise — including the RNG stream of random-init fallbacks. A finite
/// establishment threshold can re-derive provisional MAC bases anywhere
/// in the graph, so that mode runs the full scan and drops the engine's
/// MAC-aggregate cache.
fn add_record_and_ensure(
    graph: &mut BipartiteGraph,
    bisage: &mut BiSage,
    engine: &mut InferenceEngine,
    trusted: &mut Vec<bool>,
    rng: &mut StdRng,
    record: &SignalRecord,
) -> Option<RecordId> {
    if record.is_empty() || !graph.has_known_mac(record) {
        return None;
    }
    let rid = graph.add_record(record);
    trusted.push(false);
    let bits: &[bool] = trusted;
    let filter = move |r: RecordId| bits[r.0 as usize];
    if bisage.cfg.min_mac_degree == usize::MAX {
        bisage.ensure_rows_for_record(graph, rid, rng, Some(&filter));
    } else {
        bisage.ensure_rows_filtered(graph, rng, Some(&filter));
        engine.invalidate();
    }
    Some(rid)
}

/// One online in-out decision.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// Predicted location class (`Out` triggers the geofencing alert).
    pub label: Label,
    /// The rescaled outlier score `S_T(h)`.
    pub score: f64,
    /// Whether the record was used to update the detection model
    /// (highly confident in-premises sample, Section V-B).
    pub updated: bool,
    /// `false` when the record contained no previously seen MAC and was
    /// declared an outlier outright (Section V-A, footnote 3).
    pub known_macs: bool,
}

/// The trained GEM system.
pub struct Gem {
    /// Configuration it was trained with.
    pub cfg: GemConfig,
    graph: BipartiteGraph,
    bisage: BiSage,
    detector: EnhancedDetector,
    rng: StdRng,
    train_report: TrainReport,
    train_embeddings: Tensor,
    /// Per-record pseudo-label: training records and streamed records
    /// classified in-premises are trusted; records classified as
    /// outliers stay in the graph but are excluded from neighborhood
    /// expansion, so they cannot redefine the premises structure.
    trusted: Vec<bool>,
    last_added: Option<RecordId>,
    /// Optional principal-axis rotation applied before detection.
    pca: Option<PcaRotation>,
    /// Tape-free streaming engine with the MAC-aggregate cache.
    engine: InferenceEngine,
    /// Persistent output buffer for the streaming embed path.
    embed_buf: Vec<f32>,
    /// Persistent scratch for the PCA rotation.
    pca_buf: Vec<f32>,
}

impl Gem {
    /// Builds the system from an initial in-premises record set: models
    /// the records as a weighted bipartite graph, trains BiSAGE, embeds
    /// the training records and fits the enhanced detector.
    pub fn fit(cfg: GemConfig, train: &RecordSet) -> Gem {
        assert!(!train.is_empty(), "GEM needs at least one training record");
        let graph = BipartiteGraph::from_records(cfg.weight_fn, train.iter());
        let mut bisage = BiSage::new(cfg.bisage());
        let train_report = bisage.fit(&graph);
        let mut rng = child_rng(cfg.seed, 0x6E11);
        let train_embeddings = bisage.embed_all_records(&graph);
        // Detector-fit augmentation: embed pruned copies of the training
        // records (a fraction of readings dropped) exactly like streamed
        // records, so the histograms cover scans with missing/changed
        // MACs — the AP-churn reality of live deployments (cf. the
        // paper's Figs. 10–11). A cloned model+graph is used so the
        // augmentation rows never collide with real streamed node ids.
        let mut fit_rows: Vec<Vec<f32>> =
            (0..train_embeddings.rows()).map(|i| train_embeddings.row(i).to_vec()).collect();
        if cfg.augment_passes > 0 {
            let mut aug_graph = graph.clone();
            let mut aug_bisage = bisage.clone();
            let mut aug_nodes = Vec::new();
            for _ in 0..cfg.augment_passes {
                for rec in train.iter() {
                    // Drop ~30% of the weaker readings; the strongest few
                    // anchor the scan's location and survive churn far
                    // more often in practice (the user's own APs).
                    let mut by_strength: Vec<f32> = rec.readings.iter().map(|r| r.rssi).collect();
                    by_strength.sort_by(|a, b| b.total_cmp(a));
                    let anchor = by_strength
                        .get(cfg.augment_anchors.saturating_sub(1))
                        .copied()
                        .unwrap_or(f32::NEG_INFINITY);
                    let mut pruned = rec.clone();
                    pruned.retain_macs(|m| {
                        let rssi = rec.rssi_of(m).expect("reading exists");
                        rssi >= anchor || rand::RngExt::random::<f64>(&mut rng) > cfg.augment_drop
                    });
                    if pruned.is_empty() {
                        continue;
                    }
                    aug_nodes.push(gem_graph::NodeId::Record(aug_graph.add_record(&pruned)));
                }
            }
            if !aug_nodes.is_empty() {
                aug_bisage.ensure_rows(&aug_graph, &mut rng);
                let (aug_h, _) = aug_bisage.embed_nodes(&aug_graph, &aug_nodes);
                fit_rows.extend((0..aug_h.rows()).map(|i| aug_h.row(i).to_vec()));
            }
        }
        let mut fit_matrix = Tensor::zeros(fit_rows.len(), cfg.embedding_dim);
        for (i, row) in fit_rows.iter().enumerate() {
            fit_matrix.set_row(i, row);
        }
        let pca = if cfg.pca_rotation {
            let rotation = PcaRotation::fit(&fit_matrix);
            fit_matrix = rotation.apply_matrix(&fit_matrix);
            Some(rotation)
        } else {
            None
        };
        let detector = if cfg.calibrate_thresholds {
            EnhancedDetector::fit_calibrated(
                &fit_matrix,
                cfg.bins,
                cfg.temperature as f64,
                cfg.tau_u as f64,
                cfg.tau_l as f64,
                cfg.calibrate_keep_in,
                cfg.calibrate_confident,
            )
        } else {
            EnhancedDetector::fit(
                &fit_matrix,
                cfg.bins,
                cfg.temperature as f64,
                cfg.tau_u as f64,
                cfg.tau_l as f64,
            )
        };
        let trusted = vec![true; graph.n_records()];
        Gem {
            cfg,
            graph,
            bisage,
            detector,
            rng,
            train_report,
            train_embeddings,
            trusted,
            last_added: None,
            pca,
            engine: InferenceEngine::new(),
            embed_buf: Vec::new(),
            pca_buf: Vec::new(),
        }
    }

    /// Full online inference for one streamed record: add to the graph,
    /// embed through the streaming engine, detect, and self-update on
    /// highly confident in-premises samples.
    pub fn infer(&mut self, record: &SignalRecord) -> Decision {
        if !self.add_and_embed_buffered(record) {
            return Decision { label: Label::Out, score: 1.0, updated: false, known_macs: false };
        }
        let det = self.detector.detect_and_update(&self.embed_buf);
        if let Some(rid) = self.last_added.take() {
            self.set_trusted(rid, !det.is_outlier);
        }
        Decision {
            label: if det.is_outlier { Label::Out } else { Label::In },
            score: det.score,
            updated: det.confident_inlier,
            known_macs: true,
        }
    }

    /// Batched online inference: adds every embeddable record, embeds
    /// them through the engine's fused batch path, and scores them with
    /// the batch detector. Results keep input order.
    ///
    /// A batch is one decision epoch, not a bitwise replay of
    /// record-by-record streaming: every embedding is scored against the
    /// batch-start detector state, the trust filter admits the whole
    /// batch's targets during neighborhood expansion, and confident
    /// updates plus trust bits are applied after scoring, in input order.
    pub fn infer_batch(&mut self, records: &[SignalRecord]) -> Vec<Decision> {
        self.last_added = None;
        let mut rids: Vec<Option<RecordId>> = Vec::with_capacity(records.len());
        for record in records {
            rids.push(add_record_and_ensure(
                &mut self.graph,
                &mut self.bisage,
                &mut self.engine,
                &mut self.trusted,
                &mut self.rng,
                record,
            ));
        }
        let targets: Vec<RecordId> = rids.iter().filter_map(|&r| r).collect();
        let mut decisions = Vec::with_capacity(records.len());
        if targets.is_empty() {
            decisions.resize(
                records.len(),
                Decision { label: Label::Out, score: 1.0, updated: false, known_macs: false },
            );
            return decisions;
        }
        let hs = self.engine.embed_records_batch(
            &self.bisage,
            &self.graph,
            &targets,
            Some(&self.trusted),
        );
        let rows: Vec<Vec<f32>> = (0..hs.rows())
            .map(|i| match &self.pca {
                Some(rotation) => rotation.apply(hs.row(i)),
                None => hs.row(i).to_vec(),
            })
            .collect();
        let dets = self.detector.detect_batch(&rows);
        let mut k = 0usize;
        for rid in &rids {
            match rid {
                None => decisions.push(Decision {
                    label: Label::Out,
                    score: 1.0,
                    updated: false,
                    known_macs: false,
                }),
                Some(rid) => {
                    let det = dets[k];
                    let updated = self.detector.update_if_confident(&rows[k], &det);
                    self.set_trusted(*rid, !det.is_outlier);
                    decisions.push(Decision {
                        label: if det.is_outlier { Label::Out } else { Label::In },
                        score: det.score,
                        updated,
                        known_macs: true,
                    });
                    k += 1;
                }
            }
        }
        decisions
    }

    /// Stage 1 of inference (timed separately in Table III): adds the
    /// record to the bipartite graph and computes its primary embedding.
    /// `None` when the record shares no MAC with the graph — such records
    /// are outliers by rule and are *not* added.
    pub fn add_and_embed(&mut self, record: &SignalRecord) -> Option<Vec<f32>> {
        if self.add_and_embed_buffered(record) {
            Some(self.embed_buf.clone())
        } else {
            None
        }
    }

    /// Buffered stage 1: embeds into the persistent `embed_buf` through
    /// the streaming engine — no steady-state allocations beyond graph
    /// growth. Returns whether the record was embeddable.
    fn add_and_embed_buffered(&mut self, record: &SignalRecord) -> bool {
        let Some(rid) = add_record_and_ensure(
            &mut self.graph,
            &mut self.bisage,
            &mut self.engine,
            &mut self.trusted,
            &mut self.rng,
            record,
        ) else {
            return false;
        };
        self.last_added = Some(rid);
        self.engine.embed_record_into(
            &self.bisage,
            &self.graph,
            rid,
            Some(&self.trusted),
            &mut self.embed_buf,
        );
        if let Some(rotation) = &self.pca {
            rotation.apply_into(&self.embed_buf, &mut self.pca_buf);
            std::mem::swap(&mut self.embed_buf, &mut self.pca_buf);
        }
        true
    }

    /// Sets a record's pseudo-label trust bit, bumping the engine's
    /// trust epoch only when the bit actually changes (an unchanged bit
    /// cannot invalidate any cached aggregate).
    fn set_trusted(&mut self, rid: RecordId, trusted: bool) {
        let slot = &mut self.trusted[rid.0 as usize];
        if *slot != trusted {
            *slot = trusted;
            self.engine.notify_trust_change();
        }
    }

    /// Stage 2: score + classify an embedding without mutating the model.
    pub fn detect_only(&self, h: &[f32]) -> Detection {
        self.detector.detect(h)
    }

    /// Stage 2 over many embeddings at once: the read-only detector fans
    /// the batch across the worker pool; results keep input order.
    pub fn detect_only_batch<S: AsRef<[f32]> + Sync>(&self, hs: &[S]) -> Vec<Detection> {
        self.detector.detect_batch(hs)
    }

    /// Stage 3: absorb a highly confident in-premises embedding into the
    /// detector. Returns whether an update happened. The embedding is
    /// scored exactly once; the update half reuses that Detection.
    pub fn update_with(&mut self, h: &[f32]) -> bool {
        let det = self.detector.detect(h);
        if let Some(rid) = self.last_added.take() {
            self.set_trusted(rid, !det.is_outlier);
        }
        self.detector.update_if_confident(h, &det)
    }

    /// Lifetime hit/miss counters of the streaming engine's MAC-aggregate
    /// cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.engine.cache_stats()
    }

    /// The fitted detector.
    pub fn detector(&self) -> &EnhancedDetector {
        &self.detector
    }

    /// The bipartite graph (grows during online inference).
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// The trained embedding model.
    pub fn bisage(&self) -> &BiSage {
        &self.bisage
    }

    /// BiSAGE training diagnostics.
    pub fn train_report(&self) -> &TrainReport {
        &self.train_report
    }

    /// Primary embeddings of the initial training records.
    pub fn training_embeddings(&self) -> &Tensor {
        &self.train_embeddings
    }

    /// Per-record pseudo-label trust bits (aligned with the graph's
    /// record ids).
    pub fn trusted_records(&self) -> &[bool] {
        &self.trusted
    }

    /// The fitted PCA rotation, when `pca_rotation` is enabled.
    pub fn pca(&self) -> Option<&PcaRotation> {
        self.pca.as_ref()
    }

    /// The online RNG's raw state. Snapshots persist it so a restored
    /// system resumes the *exact* random stream (row-init fallbacks
    /// during streaming draw from this generator; bitwise-identical
    /// crash recovery needs the draws to line up).
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Reassembles a system from persisted parts (see
    /// [`crate::persist::GemSnapshot`]). `rng_state` resumes the online
    /// random stream mid-sequence; `None` (pre-v2 snapshots) restarts it
    /// from the config seed, which is only equivalent for systems that
    /// never consumed a draw since fit.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        cfg: GemConfig,
        graph: BipartiteGraph,
        bisage: BiSage,
        detector: EnhancedDetector,
        train_report: TrainReport,
        train_embeddings: Tensor,
        trusted: Vec<bool>,
        pca: Option<PcaRotation>,
        rng_state: Option<[u64; 4]>,
    ) -> Gem {
        let rng = match rng_state {
            Some(s) => StdRng::from_state(s),
            None => child_rng(cfg.seed, 0x6E11),
        };
        Gem {
            cfg,
            graph,
            bisage,
            detector,
            rng,
            train_report,
            train_embeddings,
            trusted,
            last_added: None,
            pca,
            engine: InferenceEngine::new(),
            embed_buf: Vec::new(),
            pca_buf: Vec::new(),
        }
    }
}

/// [`Embedder`] adapter so GEM's embedding stage can feed other detectors
/// (the "BiSAGE + X" rows of Table I).
pub struct GemEmbedder {
    graph: BipartiteGraph,
    bisage: BiSage,
    rng: StdRng,
    trusted: Vec<bool>,
    last_added: Option<RecordId>,
    engine: InferenceEngine,
}

impl GemEmbedder {
    /// Fits BiSAGE on the training records and returns the embedder plus
    /// the training embedding matrix.
    pub fn fit(cfg: &GemConfig, train: &RecordSet) -> (GemEmbedder, Tensor) {
        let graph = BipartiteGraph::from_records(cfg.weight_fn, train.iter());
        let mut bisage = BiSage::new(cfg.bisage());
        bisage.fit(&graph);
        let rng = child_rng(cfg.seed, 0x6E12);
        let train_embeddings = bisage.embed_all_records(&graph);
        let trusted = vec![true; graph.n_records()];
        (
            GemEmbedder {
                graph,
                bisage,
                rng,
                trusted,
                last_added: None,
                engine: InferenceEngine::new(),
            },
            train_embeddings,
        )
    }
}

impl Embedder for GemEmbedder {
    fn embed(&mut self, record: &SignalRecord) -> Option<Vec<f32>> {
        let rid = add_record_and_ensure(
            &mut self.graph,
            &mut self.bisage,
            &mut self.engine,
            &mut self.trusted,
            &mut self.rng,
            record,
        )?;
        self.last_added = Some(rid);
        Some(self.engine.embed_record(&self.bisage, &self.graph, rid, Some(&self.trusted)))
    }

    fn dim(&self) -> usize {
        self.bisage.dim()
    }

    fn feedback(&mut self, outlier: bool) {
        if let Some(rid) = self.last_added.take() {
            let slot = &mut self.trusted[rid.0 as usize];
            if *slot == outlier {
                *slot = !outlier;
                self.engine.notify_trust_change();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_rfsim::{Scenario, ScenarioConfig};

    fn quick_cfg() -> GemConfig {
        GemConfig::default()
    }

    fn small_scenario() -> gem_signal::Dataset {
        let mut cfg = ScenarioConfig::user(1);
        cfg.train_duration_s = 180.0;
        cfg.n_test_in = 60;
        cfg.n_test_out = 60;
        Scenario::build(cfg).generate()
    }

    #[test]
    fn end_to_end_detection_beats_chance_comfortably() {
        let ds = small_scenario();
        let mut gem = Gem::fit(quick_cfg(), &ds.train);
        let mut correct = 0usize;
        for t in &ds.test {
            let d = gem.infer(&t.record);
            if d.label == t.label {
                correct += 1;
            }
        }
        let acc = correct as f64 / ds.test.len() as f64;
        // Tiny scenario (3-minute walk, 120 scans) — comfortable margin
        // over chance; the full-size presets score higher (see tests/).
        assert!(acc >= 0.75, "end-to-end accuracy {acc}");
    }

    #[test]
    fn self_enhancement_absorbs_confident_samples() {
        let ds = small_scenario();
        let mut gem = Gem::fit(quick_cfg(), &ds.train);
        let n0 = gem.detector().n_samples();
        for t in &ds.test {
            gem.infer(&t.record);
        }
        assert!(gem.detector().n_samples() > n0, "online updates must happen");
    }

    #[test]
    fn unknown_mac_record_is_outlier_by_rule() {
        let ds = small_scenario();
        let mut gem = Gem::fit(quick_cfg(), &ds.train);
        let alien =
            SignalRecord::from_pairs(0.0, [(gem_signal::MacAddr::from_raw(0xDEAD_0001), -40.0)]);
        let n_nodes = gem.graph().n_records();
        let d = gem.infer(&alien);
        assert_eq!(d.label, Label::Out);
        assert!(!d.known_macs);
        assert_eq!(gem.graph().n_records(), n_nodes, "alien record not added");
    }

    #[test]
    fn empty_record_is_outlier() {
        let ds = small_scenario();
        let mut gem = Gem::fit(quick_cfg(), &ds.train);
        let d = gem.infer(&SignalRecord::new(0.0));
        assert_eq!(d.label, Label::Out);
    }

    #[test]
    fn staged_inference_matches_infer() {
        let ds = small_scenario();
        let mut gem = Gem::fit(quick_cfg(), &ds.train);
        let record = &ds.test[0].record;
        let h = gem.add_and_embed(record).expect("embeddable");
        let det = gem.detect_only(&h);
        assert!(det.score.is_finite());
    }

    #[test]
    fn gem_embedder_adapter_works() {
        let ds = small_scenario();
        let (mut emb, train_embs) = GemEmbedder::fit(&quick_cfg(), &ds.train);
        assert_eq!(train_embs.rows(), ds.train.len());
        assert_eq!(emb.dim(), 32);
        let h = emb.embed(&ds.test[0].record);
        assert!(h.is_some());
        assert_eq!(h.unwrap().len(), 32);
    }
}
