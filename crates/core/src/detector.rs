//! In-out detection: the enhanced histogram-based one-class classifier
//! (paper Sections IV-C and V-B) and the original, non-enhanced variant
//! used in the Fig. 8 comparison.

use serde::{Deserialize, Serialize};

use gem_nn::Tensor;

use crate::hbos::HistogramModel;

/// Outcome of scoring one sample.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct Detection {
    /// The rescaled outlier score `S_T(h)` (enhanced) or normalized raw
    /// score (baseline) — higher means more likely outside.
    pub score: f64,
    /// `true` when the sample is classified as an outlier (outside).
    pub is_outlier: bool,
    /// `true` when the sample is a *highly confident* in-premises sample
    /// (enhanced detector only; `score < τ_l`).
    pub confident_inlier: bool,
}

/// The paper's enhanced detector: HBOS raw scores → min-max normalization
/// *frozen at training time* → temperature softmax (Eq. 10) → fixed
/// thresholds `τ_u` (decision) and `τ_l` (update confidence). Histograms
/// absorb confident in-premises samples online; the score normalization
/// and thresholds never drift with the growing data size — that is the
/// enhancement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EnhancedDetector {
    hist: HistogramModel,
    /// The initial training embeddings, kept as the *frozen reference
    /// set*: after every histogram update the normalization bounds are
    /// re-anchored on this set's raw scores, so absorbing new samples
    /// never drifts the operating point of the fixed thresholds (and the
    /// update stage is the most expensive one, as in the paper's
    /// Table III).
    reference: Vec<Vec<f32>>,
    /// Normalization bounds, re-anchored on the reference set.
    score_min: f64,
    /// See [`EnhancedDetector::score_min`].
    score_max: f64,
    /// Softmax scaling factor `T`.
    pub temperature: f64,
    /// Decision threshold `τ_u` (Eq. 11).
    pub tau_u: f64,
    /// Update-confidence threshold `τ_l < τ_u`.
    pub tau_l: f64,
    /// Confident samples absorbed online.
    pub n_updates: usize,
}

impl EnhancedDetector {
    /// Fits histograms on the training embeddings and freezes the score
    /// normalization.
    pub fn fit(train: &Tensor, bins: usize, temperature: f64, tau_u: f64, tau_l: f64) -> Self {
        assert!(tau_l < tau_u, "τ_l must be stricter than τ_u");
        assert!(temperature > 0.0);
        let hist = HistogramModel::fit(train, bins);
        let raw = hist.raw_scores(train);
        let score_min = raw.iter().cloned().fold(f64::INFINITY, f64::min);
        let score_max = raw.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let reference = (0..train.rows()).map(|i| train.row(i).to_vec()).collect();
        EnhancedDetector {
            hist,
            reference,
            score_min,
            score_max,
            temperature,
            tau_u,
            tau_l,
            n_updates: 0,
        }
    }

    /// Recomputes the normalization bounds from the reference set's raw
    /// scores under the *current* histograms.
    fn reanchor(&mut self) {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for r in &self.reference {
            let s = self.hist.raw_score(r);
            min = min.min(s);
            max = max.max(s);
        }
        self.score_min = min;
        self.score_max = max;
    }

    /// Fits the detector and then *optimizes the thresholds on the
    /// training scores*, per the paper's "the scaling parameter T and the
    /// new threshold value τ_u are considered as hyperparameters to be
    /// optimized in the learning process": `τ_u` is set so that the
    /// `keep_in` fraction of training samples classify as in-premises,
    /// and `τ_l` so the `confident` fraction qualifies for online
    /// updates. The provided `tau_u`/`tau_l` act as floors.
    #[allow(clippy::too_many_arguments)]
    pub fn fit_calibrated(
        train: &Tensor,
        bins: usize,
        temperature: f64,
        tau_u_floor: f64,
        tau_l_floor: f64,
        keep_in: f64,
        confident: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&keep_in) && (0.0..=1.0).contains(&confident));
        assert!(confident < keep_in, "confidence band must be inside the in-band");
        let mut det = Self::fit(train, bins, temperature, tau_u_floor.max(1e-9), tau_l_floor);
        let mut scores: Vec<f64> = (0..train.rows()).map(|i| det.score(train.row(i))).collect();
        scores.sort_by(|a, b| a.total_cmp(b));
        let q = |p: f64| scores[((scores.len() - 1) as f64 * p) as usize];
        // Cap τ_u below S_T's saturation plateau: embeddings whose
        // training scores span the whole [0,1] range (a degenerate
        // detector input) would otherwise calibrate τ_u ≈ 1 and never
        // flag anything.
        det.tau_u = q(keep_in).max(tau_u_floor).min(0.9);
        det.tau_l = q(confident).max(tau_l_floor).min(det.tau_u * 0.999);
        det
    }

    /// Min-max-normalized raw score `H̄(h) ∈ [0, 1]` (clamped for samples
    /// outside the training score range).
    pub fn normalized_raw(&self, sample: &[f32]) -> f64 {
        let raw = self.hist.raw_score(sample);
        if self.score_max <= self.score_min {
            return 0.5;
        }
        ((raw - self.score_min) / (self.score_max - self.score_min)).clamp(0.0, 1.0)
    }

    /// The rescaled score `S_T(h)` of paper Eq. 10:
    /// `exp(H̄/T) / (exp(H̄/T) + exp((1−H̄)/T))`, computed in the
    /// numerically stable logistic form `σ((2H̄−1)/T)`.
    pub fn score(&self, sample: &[f32]) -> f64 {
        let h = self.normalized_raw(sample);
        1.0 / (1.0 + (-(2.0 * h - 1.0) / self.temperature).exp())
    }

    /// Classifies one sample (no model mutation).
    pub fn detect(&self, sample: &[f32]) -> Detection {
        let score = self.score(sample);
        Detection { score, is_outlier: score > self.tau_u, confident_inlier: score < self.tau_l }
    }

    /// Scores a batch of samples across the worker pool. Scoring is
    /// read-only, so samples are independent; results keep input order.
    pub fn score_batch<S: AsRef<[f32]> + Sync>(&self, samples: &[S]) -> Vec<f64> {
        gem_par::par_map(samples, |s| self.score(s.as_ref()))
    }

    /// Classifies a batch of samples across the worker pool (no model
    /// mutation); results keep input order.
    pub fn detect_batch<S: AsRef<[f32]> + Sync>(&self, samples: &[S]) -> Vec<Detection> {
        gem_par::par_map(samples, |s| self.detect(s.as_ref()))
    }

    /// Classifies and, when the sample is a highly confident in-premises
    /// one, absorbs it into the histograms (paper Section V-B). Returns
    /// the detection; `confident_inlier` tells whether an update happened.
    pub fn detect_and_update(&mut self, sample: &[f32]) -> Detection {
        let det = self.detect(sample);
        self.update_if_confident(sample, &det);
        det
    }

    /// The update half of [`EnhancedDetector::detect_and_update`]:
    /// absorbs the sample when `det` — a previously computed
    /// [`EnhancedDetector::detect`] result for this same sample — marks
    /// it highly confident, without re-scoring. Returns whether an
    /// update happened.
    pub fn update_if_confident(&mut self, sample: &[f32], det: &Detection) -> bool {
        if det.confident_inlier {
            self.hist.update(sample);
            self.n_updates += 1;
            self.reanchor();
            true
        } else {
            false
        }
    }

    /// Total samples inside the histograms (initial + absorbed).
    pub fn n_samples(&self) -> usize {
        self.hist.n_samples()
    }

    /// Snapshots the detector into its int8 serving twin: per-bin scores
    /// precomputed and quantized (per-dimension scale + zero-point),
    /// normalization bounds, temperature and thresholds copied verbatim,
    /// decisions made from the f64-rescaled quantized raw score. The
    /// snapshot is frozen — re-snapshot after online updates (see
    /// [`crate::quant::QuantizedDetector::is_stale`]).
    pub fn quantized(&self) -> crate::quant::QuantizedDetector {
        crate::quant::QuantizedDetector::new(
            crate::quant::QuantizedScorer::from_hist(&self.hist),
            self.score_min,
            self.score_max,
            self.temperature,
            self.tau_u,
            self.tau_l,
        )
    }
}

/// The original histogram-based algorithm (paper's description of \[17\]):
/// the threshold `τ` is the `γ`-quantile of the min-max-normalized
/// training scores, and **normalization bounds and threshold are
/// recomputed whenever data is absorbed**, making the operating point
/// drift with data size — the failure mode the enhancement removes. It
/// also absorbs *any* sample it predicts as normal (no confidence band).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BaselineHbos {
    hist: HistogramModel,
    bins: usize,
    /// Contamination factor `γ`.
    pub contamination: f64,
    /// Scores of all absorbed data (needed to recompute `τ`).
    absorbed: Vec<Vec<f32>>,
    score_min: f64,
    score_max: f64,
    /// Current threshold on the normalized score.
    pub tau: f64,
}

impl BaselineHbos {
    /// Fits the original algorithm.
    pub fn fit(train: &Tensor, bins: usize, contamination: f64) -> Self {
        let absorbed: Vec<Vec<f32>> = (0..train.rows()).map(|i| train.row(i).to_vec()).collect();
        let mut model = BaselineHbos {
            hist: HistogramModel::fit(train, bins),
            bins,
            contamination,
            absorbed,
            score_min: 0.0,
            score_max: 1.0,
            tau: 1.0,
        };
        model.recompute_threshold();
        model
    }

    fn recompute_threshold(&mut self) {
        let raw: Vec<f64> = self.absorbed.iter().map(|s| self.hist.raw_score(s)).collect();
        self.score_min = raw.iter().cloned().fold(f64::INFINITY, f64::min);
        self.score_max = raw.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let span = (self.score_max - self.score_min).max(1e-12);
        let mut normalized: Vec<f64> = raw.iter().map(|r| (r - self.score_min) / span).collect();
        // Sort descending; τ is the score of the ⌈n·γ⌉-th highest sample.
        normalized.sort_by(|a, b| b.total_cmp(a));
        let i_star = ((normalized.len() as f64 * self.contamination) as usize)
            .min(normalized.len().saturating_sub(1));
        self.tau = normalized[i_star];
    }

    /// Normalized score with the *current* (drifting) bounds.
    pub fn score(&self, sample: &[f32]) -> f64 {
        let raw = self.hist.raw_score(sample);
        let span = (self.score_max - self.score_min).max(1e-12);
        ((raw - self.score_min) / span).clamp(0.0, 1.0)
    }

    /// Classifies one sample.
    pub fn detect(&self, sample: &[f32]) -> Detection {
        let score = self.score(sample);
        let is_outlier = score > self.tau;
        Detection { score, is_outlier, confident_inlier: !is_outlier }
    }

    /// Classifies and absorbs every predicted-normal sample, recomputing
    /// bounds and threshold (the data-size-dependent behaviour).
    pub fn detect_and_update(&mut self, sample: &[f32]) -> Detection {
        let det = self.detect(sample);
        if !det.is_outlier {
            self.hist.update(sample);
            self.absorbed.push(sample.to_vec());
            self.recompute_threshold();
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Training cluster: mass around 0.5 per dim with a thin tail at 0.8
    /// (the clustered shape real embeddings have).
    fn train_cluster() -> Tensor {
        Tensor::from_fn(60, 4, |i, j| {
            if i % 20 == 19 {
                0.8
            } else {
                0.48 + ((i * 3 + j * 5) % 5) as f32 / 100.0
            }
        })
    }

    fn inlier() -> [f32; 4] {
        [0.5, 0.5, 0.5, 0.5]
    }

    fn outlier() -> [f32; 4] {
        [1.4, -0.3, 2.0, -1.0]
    }

    #[test]
    fn scores_order_inliers_below_outliers() {
        let det = EnhancedDetector::fit(&train_cluster(), 10, 0.06, 0.005, 0.001);
        assert!(det.score(&inlier()) < det.score(&outlier()));
    }

    #[test]
    fn batch_scoring_matches_per_sample() {
        let det = EnhancedDetector::fit(&train_cluster(), 10, 0.06, 0.005, 0.001);
        let samples: Vec<Vec<f32>> = (0..100).map(|i| vec![0.3 + i as f32 / 50.0; 4]).collect();
        let batch = det.score_batch(&samples);
        for (s, &b) in samples.iter().zip(&batch) {
            assert_eq!(det.score(s), b, "batch score must be bit-identical");
        }
        let dets = det.detect_batch(&samples);
        for (s, d) in samples.iter().zip(&dets) {
            assert_eq!(det.detect(s).score, d.score);
        }
    }

    #[test]
    fn softmax_saturates_outliers_toward_one() {
        let det = EnhancedDetector::fit(&train_cluster(), 10, 0.06, 0.005, 0.001);
        // Out-of-range sample clamps to H̄ = 1 → S_T ≈ σ(1/T) ≈ 1.
        assert!(det.score(&outlier()) > 0.999);
    }

    #[test]
    fn paper_thresholds_classify_correctly() {
        let det = EnhancedDetector::fit(&train_cluster(), 10, 0.06, 0.005, 0.001);
        let d_in = det.detect(&inlier());
        let d_out = det.detect(&outlier());
        assert!(!d_in.is_outlier);
        assert!(d_out.is_outlier);
        assert!(!d_out.confident_inlier);
    }

    #[test]
    fn confident_updates_absorb_only_inliers() {
        let mut det = EnhancedDetector::fit(&train_cluster(), 10, 0.06, 0.005, 0.001);
        let n0 = det.n_samples();
        let d = det.detect_and_update(&inlier());
        assert!(d.confident_inlier);
        assert_eq!(det.n_samples(), n0 + 1);
        let d = det.detect_and_update(&outlier());
        assert!(!d.confident_inlier);
        assert_eq!(det.n_samples(), n0 + 1, "outliers must not be absorbed");
        assert_eq!(det.n_updates, 1);
    }

    #[test]
    fn normalization_is_frozen_under_updates() {
        let mut det = EnhancedDetector::fit(&train_cluster(), 10, 0.06, 0.005, 0.001);
        let before = det.score(&outlier());
        for _ in 0..50 {
            det.detect_and_update(&inlier());
        }
        let after = det.score(&outlier());
        // Histogram of the inlier bin grew, but the outlier still clamps
        // to H̄ = 1: its score must not drift downward.
        assert!((after - before).abs() < 1e-9, "{before} vs {after}");
    }

    #[test]
    fn score_is_monotone_in_normalized_raw() {
        let det = EnhancedDetector::fit(&train_cluster(), 10, 0.06, 0.005, 0.001);
        let samples: Vec<[f32; 4]> = vec![inlier(), [0.8, 0.8, 0.5, 0.5], outlier()];
        let mut last_raw = -1.0;
        let mut last_st = -1.0;
        for s in &samples {
            let raw = det.normalized_raw(s);
            let st = det.score(s);
            if raw > last_raw {
                assert!(st >= last_st, "S_T must be monotone in H̄");
            }
            last_raw = raw;
            last_st = st;
        }
    }

    #[test]
    fn baseline_threshold_drifts_with_updates() {
        let mut base = BaselineHbos::fit(&train_cluster(), 10, 0.05);
        let tau0 = base.tau;
        // Feed inliers the baseline happily absorbs: the dominant bin
        // grows, every other sample's relative score rises, and the
        // recomputed normalization bounds and quantile threshold move.
        for _ in 0..40 {
            base.detect_and_update(&inlier());
        }
        assert_ne!(base.tau, tau0, "baseline threshold must drift");
    }

    #[test]
    fn baseline_classifies_gross_outliers() {
        let base = BaselineHbos::fit(&train_cluster(), 10, 0.05);
        assert!(base.detect(&outlier()).is_outlier);
    }

    #[test]
    #[should_panic(expected = "τ_l must be stricter")]
    fn rejects_inverted_thresholds() {
        EnhancedDetector::fit(&train_cluster(), 10, 0.06, 0.001, 0.005);
    }
}
