//! PCA rotation for the histogram detector — an extension beyond the
//! paper.
//!
//! HBOS histograms are axis-aligned; when the informative directions of
//! the embedding cloud are oblique, per-dimension histograms blur them.
//! Rotating embeddings into the training cloud's principal axes
//! concentrates variance into the leading coordinates and often sharpens
//! the in/out score separation. Enabled with
//! [`crate::GemConfig::pca_rotation`] and evaluated in the `ablation`
//! experiment.

use serde::{Deserialize, Serialize};

use gem_nn::linalg::{jacobi_eigen, SymMatrix};
use gem_nn::Tensor;

/// An orthonormal rotation into the principal axes of a training set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PcaRotation {
    /// Per-dimension mean of the training data.
    mean: Vec<f32>,
    /// Row-major `(d × d)` rotation; row `k` is the k-th principal axis.
    basis: Tensor,
    /// Eigenvalues (variances) per principal axis, descending.
    pub variances: Vec<f64>,
}

impl PcaRotation {
    /// Fits the rotation from a `(n × d)` training matrix.
    pub fn fit(train: &Tensor) -> PcaRotation {
        let (n, d) = train.shape();
        assert!(n >= 2, "PCA needs at least two samples");
        let mut mean = vec![0.0f32; d];
        for i in 0..n {
            for (m, &v) in mean.iter_mut().zip(train.row(i)) {
                *m += v / n as f32;
            }
        }
        // Covariance (d × d).
        let mut cov = SymMatrix::zeros(d);
        for i in 0..n {
            let row = train.row(i);
            for a in 0..d {
                let xa = (row[a] - mean[a]) as f64;
                for b in a..d {
                    let xb = (row[b] - mean[b]) as f64;
                    let v = cov.get(a, b) + xa * xb / (n as f64 - 1.0);
                    cov.set(a, b, v);
                    cov.set(b, a, v);
                }
            }
        }
        let eigen = jacobi_eigen(cov, 1e-10, 80);
        let mut basis = Tensor::zeros(d, d);
        for k in 0..d {
            for i in 0..d {
                basis[(k, i)] = eigen.vector_component(k, i) as f32;
            }
        }
        PcaRotation { mean, basis, variances: eigen.values }
    }

    /// Rotates one vector into principal-axis coordinates.
    pub fn apply(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        let d = x.len();
        let mut out = vec![0.0f32; d];
        for (k, slot) in out.iter_mut().enumerate() {
            let axis = self.basis.row(k);
            *slot = x.iter().zip(&self.mean).zip(axis).map(|((&v, &m), &a)| (v - m) * a).sum();
        }
        out
    }

    /// Rotates one vector into `out`, reusing its capacity (the
    /// allocation-free twin of [`PcaRotation::apply`]).
    pub fn apply_into(&self, x: &[f32], out: &mut Vec<f32>) {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        let d = x.len();
        out.clear();
        out.resize(d, 0.0);
        for (k, slot) in out.iter_mut().enumerate() {
            let axis = self.basis.row(k);
            *slot = x.iter().zip(&self.mean).zip(axis).map(|((&v, &m), &a)| (v - m) * a).sum();
        }
    }

    /// Rotates every row of a matrix.
    pub fn apply_matrix(&self, x: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(x.rows(), x.cols());
        for i in 0..x.rows() {
            out.set_row(i, &self.apply(x.row(i)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Points along an oblique line + noise: PCA must align axis 0 with
    /// the line.
    fn oblique_cloud() -> Tensor {
        Tensor::from_fn(60, 3, |i, j| {
            let t = i as f32 / 10.0;
            let noise = ((i * 7 + j * 13) % 11) as f32 / 200.0;
            match j {
                0 => t + noise,
                1 => 2.0 * t + noise,
                _ => noise,
            }
        })
    }

    #[test]
    fn first_axis_captures_most_variance() {
        let pca = PcaRotation::fit(&oblique_cloud());
        assert!(pca.variances[0] > 10.0 * pca.variances[1]);
        assert!(pca.variances.windows(2).all(|w| w[0] >= w[1] - 1e-9));
    }

    #[test]
    fn rotation_preserves_pairwise_distances() {
        let cloud = oblique_cloud();
        let pca = PcaRotation::fit(&cloud);
        let rotated = pca.apply_matrix(&cloud);
        for (i, j) in [(0usize, 10usize), (5, 40), (12, 59)] {
            let before = Tensor::row_distance(&cloud, i, &cloud, j);
            let after = Tensor::row_distance(&rotated, i, &rotated, j);
            assert!((before - after).abs() < 1e-4, "{before} vs {after}");
        }
    }

    #[test]
    fn rotated_cloud_is_centered() {
        let cloud = oblique_cloud();
        let pca = PcaRotation::fit(&cloud);
        let rotated = pca.apply_matrix(&cloud);
        for k in 0..3 {
            let mean: f32 =
                (0..rotated.rows()).map(|i| rotated.row(i)[k]).sum::<f32>() / rotated.rows() as f32;
            assert!(mean.abs() < 1e-4, "axis {k} mean {mean}");
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_wrong_dimension() {
        let pca = PcaRotation::fit(&oblique_cloud());
        pca.apply(&[1.0, 2.0]);
    }
}
