//! Int8 quantized HBOS scoring — the serving-path fast lane.
//!
//! [`crate::HistogramModel::raw_score`] recomputes, per sample and per
//! dimension, the bin-height normalization (a scan over all bins for the
//! max count) and a `ln`. A [`QuantizedScorer`] snapshots that work once:
//! every per-bin score contribution `ln(1/height)` is precomputed and
//! quantized to an int8 code with a per-dimension (per-row) scale and
//! zero-point, so scoring one sample is `dim` table lookups plus `dim`
//! dequantizing multiply-adds — no scans, no transcendentals, and a
//! table 8x smaller than the f64 scores it replaces.
//!
//! The decision boundary stays in f64: [`QuantizedDetector`] dequantizes
//! the accumulated raw score and only then applies the frozen min-max
//! normalization and the temperature softmax `S_T = σ((2H̄−1)/T)`, both
//! in f64 — quantization error enters exactly once, through the codes.
//! That error is *bounded and computable*: each code is off by at most
//! `scale_j / 2`, so the raw-score error is at most `Σ_j scale_j / 2`
//! ([`QuantizedScorer::max_raw_error`]) and the `S_T` error at most
//! `1/(2T)` times the normalized raw error
//! ([`QuantizedDetector::max_score_error`], via the logistic's Lipschitz
//! constant). Tests assert both bounds against the f64 reference, and
//! the infer bench gates the decision disagreement rate in CI.
//!
//! A snapshot is *frozen*: it does not follow online histogram updates.
//! [`QuantizedDetector::is_stale`] compares absorbed-sample counts so a
//! serving loop knows when to re-snapshot (cheap: one table rebuild).

use serde::Serialize;

use crate::detector::{Detection, EnhancedDetector};
use crate::hbos::HistogramModel;

/// Frozen int8 snapshot of a [`HistogramModel`]'s per-bin scores with
/// per-dimension scale and zero-point. See the module docs for the
/// quantization scheme and error bounds.
#[derive(Clone, Debug, Serialize)]
pub struct QuantizedScorer {
    dim: usize,
    bins: usize,
    /// Per-dimension fitted lower range bounds (copied bit-for-bit from
    /// the histogram so binning matches the reference exactly).
    mins: Vec<f32>,
    /// Per-dimension fitted upper range bounds.
    maxs: Vec<f32>,
    /// Row-major `dim × (bins + 1)` int8 codes; the final column of each
    /// row is the out-of-distribution (empty-bin floor) score.
    codes: Vec<i8>,
    /// Per-dimension dequantization scale (`score ≈ scale·code + zero`).
    scales: Vec<f64>,
    /// Per-dimension dequantization zero-point.
    zeros: Vec<f64>,
    /// Samples absorbed by the source histogram at snapshot time.
    n_samples: usize,
}

/// Codes span `[-QMAX, QMAX]` (symmetric, so zero-point stays exact).
const QMAX: f64 = 127.0;

impl QuantizedScorer {
    /// Snapshots a histogram model: precomputes every per-bin score and
    /// quantizes each dimension's row with its own scale and zero-point
    /// (midpoint of the row's score range; scale sized so the extremes
    /// map to ±127).
    pub fn from_hist(hist: &HistogramModel) -> Self {
        let (dim, bins) = (hist.dim(), hist.bins());
        let (mins, maxs) = hist.ranges();
        let table = hist.score_table();
        let width = bins + 1;
        let mut codes = vec![0i8; dim * width];
        let mut scales = vec![0.0f64; dim];
        let mut zeros = vec![0.0f64; dim];
        for j in 0..dim {
            let row = &table[j * width..(j + 1) * width];
            let lo = row.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let zero = 0.5 * (lo + hi);
            let scale = (hi - lo) / (2.0 * QMAX);
            zeros[j] = zero;
            scales[j] = scale;
            for (slot, &s) in codes[j * width..(j + 1) * width].iter_mut().zip(row) {
                let code = if scale > 0.0 { ((s - zero) / scale).round() } else { 0.0 };
                *slot = code.clamp(-QMAX, QMAX) as i8;
            }
        }
        QuantizedScorer {
            dim,
            bins,
            mins: mins.to_vec(),
            maxs: maxs.to_vec(),
            codes,
            scales,
            zeros,
            n_samples: hist.n_samples(),
        }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Samples the source histogram had absorbed at snapshot time.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Bin lookup matching [`HistogramModel`]'s scoring convention
    /// exactly (same clamp arithmetic, same out-of-distribution rule);
    /// `bins` (the final column) encodes "out of distribution".
    #[inline]
    fn bin_scored(&self, j: usize, v: f32) -> usize {
        let lo = self.mins[j];
        let hi = self.maxs[j];
        if hi <= lo {
            let tol = lo.abs().max(1.0) * 1e-5;
            return if (v - lo).abs() <= tol { 0 } else { self.bins };
        }
        let half_width = (hi - lo) / (2.0 * self.bins as f32);
        if v < lo - half_width || v > hi + half_width {
            return self.bins;
        }
        let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        ((t * self.bins as f32) as usize).min(self.bins - 1)
    }

    /// Quantized raw HBOS score: `Σ_j scale_j·code_j + zero_j`,
    /// accumulated and rescaled in f64. Within
    /// [`QuantizedScorer::max_raw_error`] of
    /// [`HistogramModel::raw_score`] on the snapshot's histogram state.
    pub fn raw_score(&self, sample: &[f32]) -> f64 {
        assert_eq!(sample.len(), self.dim, "sample dimensionality mismatch");
        let width = self.bins + 1;
        let mut acc = 0.0f64;
        for (j, &v) in sample.iter().enumerate() {
            let b = self.bin_scored(j, v);
            let code = self.codes[j * width + b] as f64;
            acc += self.scales[j] * code + self.zeros[j];
        }
        acc
    }

    /// Worst-case absolute error of [`QuantizedScorer::raw_score`]
    /// against the f64 reference: `Σ_j scale_j / 2` (each code rounds to
    /// the nearest representable level, so each dimension contributes at
    /// most half a quantization step).
    pub fn max_raw_error(&self) -> f64 {
        self.scales.iter().map(|s| 0.5 * s).sum()
    }
}

/// An [`EnhancedDetector`] serving twin that scores through a
/// [`QuantizedScorer`] and makes its decisions from the f64-rescaled
/// quantized raw score, with the detector's frozen normalization bounds,
/// temperature and thresholds copied verbatim. Build with
/// [`EnhancedDetector::quantized`].
#[derive(Clone, Debug, Serialize)]
pub struct QuantizedDetector {
    scorer: QuantizedScorer,
    score_min: f64,
    score_max: f64,
    temperature: f64,
    tau_u: f64,
    tau_l: f64,
}

impl QuantizedDetector {
    pub(crate) fn new(
        scorer: QuantizedScorer,
        score_min: f64,
        score_max: f64,
        temperature: f64,
        tau_u: f64,
        tau_l: f64,
    ) -> Self {
        QuantizedDetector { scorer, score_min, score_max, temperature, tau_u, tau_l }
    }

    /// The underlying frozen scorer.
    pub fn scorer(&self) -> &QuantizedScorer {
        &self.scorer
    }

    /// `S_T(h)` from the quantized raw score — the min-max normalization
    /// and logistic rescale run in f64 at the decision boundary.
    pub fn score(&self, sample: &[f32]) -> f64 {
        let raw = self.scorer.raw_score(sample);
        let h = if self.score_max <= self.score_min {
            0.5
        } else {
            ((raw - self.score_min) / (self.score_max - self.score_min)).clamp(0.0, 1.0)
        };
        1.0 / (1.0 + (-(2.0 * h - 1.0) / self.temperature).exp())
    }

    /// Classifies one sample with the detector's thresholds (no model
    /// mutation; snapshots never learn).
    pub fn detect(&self, sample: &[f32]) -> Detection {
        let score = self.score(sample);
        Detection { score, is_outlier: score > self.tau_u, confident_inlier: score < self.tau_l }
    }

    /// Classifies a batch across the worker pool; results keep input
    /// order.
    pub fn detect_batch<S: AsRef<[f32]> + Sync>(&self, samples: &[S]) -> Vec<Detection> {
        gem_par::par_map(samples, |s| self.detect(s.as_ref()))
    }

    /// Worst-case `S_T` error against the f64 detector *at snapshot
    /// time*: the raw error bound divided by the normalization span,
    /// through the logistic's Lipschitz constant `1/(2T)`.
    pub fn max_score_error(&self) -> f64 {
        let span = self.score_max - self.score_min;
        if span <= 0.0 {
            return 0.0;
        }
        (self.scorer.max_raw_error() / span) / (2.0 * self.temperature)
    }

    /// Whether `det` has absorbed samples since this snapshot was taken
    /// (decisions may then diverge beyond the error bound; re-snapshot
    /// with [`EnhancedDetector::quantized`]).
    pub fn is_stale(&self, det: &EnhancedDetector) -> bool {
        det.n_samples() != self.scorer.n_samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_nn::Tensor;

    /// Clustered 8-D training set with varied per-dim spread.
    fn train_set() -> Tensor {
        Tensor::from_fn(120, 8, |i, j| {
            let base = 0.4 + j as f32 * 0.05;
            let jitter = ((i * 7 + j * 13) % 23) as f32 / 100.0;
            if i % 17 == 16 {
                base + 0.4 + jitter
            } else {
                base + jitter
            }
        })
    }

    fn probe_samples() -> Vec<Vec<f32>> {
        let mut v = Vec::new();
        for i in 0..400 {
            let t = i as f32 / 400.0;
            v.push((0..8).map(|j| 0.2 + t + j as f32 * 0.04).collect());
        }
        v
    }

    #[test]
    fn raw_score_within_declared_bound() {
        let hist = HistogramModel::fit(&train_set(), 12);
        let q = QuantizedScorer::from_hist(&hist);
        let bound = q.max_raw_error();
        assert!(bound.is_finite() && bound >= 0.0);
        for s in probe_samples() {
            let reference = hist.raw_score(&s);
            let quantized = q.raw_score(&s);
            assert!(
                (reference - quantized).abs() <= bound + 1e-12,
                "raw error {} exceeds bound {bound}",
                (reference - quantized).abs()
            );
        }
    }

    #[test]
    fn detector_score_within_declared_bound() {
        let det = EnhancedDetector::fit(&train_set(), 12, 0.06, 0.005, 0.001);
        let qdet = det.quantized();
        let bound = qdet.max_score_error();
        for s in probe_samples() {
            let d = (det.score(&s) - qdet.score(&s)).abs();
            assert!(d <= bound + 1e-12, "score error {d} exceeds bound {bound}");
        }
    }

    #[test]
    fn decisions_agree_away_from_thresholds() {
        let det = EnhancedDetector::fit(&train_set(), 12, 0.06, 0.005, 0.001);
        let qdet = det.quantized();
        let margin = qdet.max_score_error();
        for s in probe_samples() {
            let d_ref = det.detect(&s);
            let d_q = qdet.detect(&s);
            // Outside the quantization margin around τ_u the decision
            // cannot flip; inside it either answer is admissible.
            if (d_ref.score - det.tau_u).abs() > margin {
                assert_eq!(d_ref.is_outlier, d_q.is_outlier);
            }
            if (d_ref.score - det.tau_l).abs() > margin {
                assert_eq!(d_ref.confident_inlier, d_q.confident_inlier);
            }
        }
    }

    #[test]
    fn batch_matches_single() {
        let det = EnhancedDetector::fit(&train_set(), 12, 0.06, 0.005, 0.001);
        let qdet = det.quantized();
        let samples = probe_samples();
        let batch = qdet.detect_batch(&samples);
        for (s, b) in samples.iter().zip(&batch) {
            assert_eq!(qdet.detect(s).score, b.score);
        }
    }

    #[test]
    fn staleness_tracks_updates() {
        let mut det = EnhancedDetector::fit(&train_set(), 12, 0.06, 0.005, 0.001);
        let qdet = det.quantized();
        assert!(!qdet.is_stale(&det));
        // Absorb one confident inlier; the snapshot must report stale.
        let inlier: Vec<f32> = (0..8).map(|j| 0.5 + j as f32 * 0.05).collect();
        let d = det.detect(&inlier);
        if det.update_if_confident(&inlier, &d) {
            assert!(qdet.is_stale(&det));
            // Re-snapshot clears staleness.
            assert!(!det.quantized().is_stale(&det));
        }
    }

    #[test]
    fn degenerate_dimension_is_safe() {
        let train = Tensor::from_fn(20, 2, |i, j| if j == 0 { i as f32 } else { 3.0 });
        let hist = HistogramModel::fit(&train, 5);
        let q = QuantizedScorer::from_hist(&hist);
        let bound = q.max_raw_error();
        for s in [[10.0f32, 3.0], [10.0, 99.0], [-5.0, 3.0]] {
            assert!((hist.raw_score(&s) - q.raw_score(&s)).abs() <= bound + 1e-12);
        }
    }
}
