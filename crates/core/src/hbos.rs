//! Histogram-based outlier scoring (HBOS, paper Eq. 9).
//!
//! One histogram per embedding dimension, built from the training
//! (in-premises) embeddings. A sample's raw outlier score is
//! `Σ_j log(1 / hist_j(h_j))` where `hist_j` is the relative height of
//! the bin its j-th component falls into. Histograms support incremental
//! updates, which GEM's online self-enhancement uses.

use serde::{Deserialize, Serialize};

use gem_nn::Tensor;

/// Per-dimension histograms over a fixed value range with incremental
/// updates.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HistogramModel {
    /// Dimensionality `d`.
    dim: usize,
    /// Bins per dimension `m`.
    bins: usize,
    /// Per-dimension lower range bound (from the initial fit).
    mins: Vec<f32>,
    /// Per-dimension upper range bound.
    maxs: Vec<f32>,
    /// Row-major `(dim × bins)` frequency counts.
    counts: Vec<f64>,
    /// Number of samples absorbed.
    n: usize,
}

impl HistogramModel {
    /// Builds `d` histograms with `bins` bins from the training
    /// embeddings. Ranges are fixed to the per-dimension min/max of the
    /// training data (out-of-range future values clamp into edge bins).
    pub fn fit(embeddings: &Tensor, bins: usize) -> Self {
        assert!(bins >= 1, "need at least one bin");
        assert!(embeddings.rows() > 0, "need at least one training sample");
        let dim = embeddings.cols();
        let mut mins = vec![f32::INFINITY; dim];
        let mut maxs = vec![f32::NEG_INFINITY; dim];
        for i in 0..embeddings.rows() {
            for (j, &v) in embeddings.row(i).iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        let mut model =
            HistogramModel { dim, bins, mins, maxs, counts: vec![0.0; dim * bins], n: 0 };
        for i in 0..embeddings.rows() {
            model.update(embeddings.row(i));
        }
        model
    }

    /// Number of samples absorbed so far.
    pub fn n_samples(&self) -> usize {
        self.n
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Bins per dimension.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Bin index for in-range values, clamping into the edge bins.
    fn bin_clamped(&self, j: usize, v: f32) -> usize {
        let lo = self.mins[j];
        let hi = self.maxs[j];
        if hi <= lo {
            return 0; // degenerate dimension: single bin
        }
        let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        ((t * self.bins as f32) as usize).min(self.bins - 1)
    }

    /// Bin index for scoring: values outside the fitted range by more
    /// than half a bin width are out of distribution (`None`), which the
    /// score treats as an empty bin — the standard HBOS convention.
    fn bin_scored(&self, j: usize, v: f32) -> Option<usize> {
        let lo = self.mins[j];
        let hi = self.maxs[j];
        if hi <= lo {
            let tol = lo.abs().max(1.0) * 1e-5;
            return if (v - lo).abs() <= tol { Some(0) } else { None };
        }
        let half_width = (hi - lo) / (2.0 * self.bins as f32);
        if v < lo - half_width || v > hi + half_width {
            return None;
        }
        Some(self.bin_clamped(j, v))
    }

    /// Absorbs one sample into the histograms (online model update).
    pub fn update(&mut self, sample: &[f32]) {
        assert_eq!(sample.len(), self.dim, "sample dimensionality mismatch");
        for (j, &v) in sample.iter().enumerate() {
            let b = self.bin_clamped(j, v);
            self.counts[j * self.bins + b] += 1.0;
        }
        self.n += 1;
    }

    /// Raw HBOS score (paper Eq. 9): `Σ_j log(1 / hist_j(h_j))` with bin
    /// heights normalized per dimension to max 1 and floored at half an
    /// observation so empty and out-of-range bins stay finite while still
    /// scoring as maximally abnormal.
    pub fn raw_score(&self, sample: &[f32]) -> f64 {
        assert_eq!(sample.len(), self.dim, "sample dimensionality mismatch");
        let mut score = 0.0f64;
        for (j, &v) in sample.iter().enumerate() {
            let row = &self.counts[j * self.bins..(j + 1) * self.bins];
            let max_count = row.iter().cloned().fold(0.0f64, f64::max).max(1.0);
            let floor = 0.5 / max_count;
            let height = match self.bin_scored(j, v) {
                Some(b) => (row[b] / max_count).max(floor),
                None => floor,
            };
            score += (1.0 / height).ln();
        }
        score
    }

    /// Raw scores of a whole embedding matrix.
    pub fn raw_scores(&self, embeddings: &Tensor) -> Vec<f64> {
        (0..embeddings.rows()).map(|i| self.raw_score(embeddings.row(i))).collect()
    }

    /// Per-dimension fitted value ranges `(mins, maxs)` — the binning
    /// geometry a quantized scorer snapshot copies.
    pub(crate) fn ranges(&self) -> (&[f32], &[f32]) {
        (&self.mins, &self.maxs)
    }

    /// Per-bin score contributions in `raw_score`'s exact arithmetic:
    /// a row-major `dim × (bins + 1)` table where entry `[j][b]` is
    /// `ln(1/height)` of bin `b` in dimension `j` and the extra final
    /// column is the out-of-distribution (empty-bin floor) score. A
    /// lookup into this table is bit-identical to the corresponding
    /// [`HistogramModel::raw_score`] per-dimension term.
    pub(crate) fn score_table(&self) -> Vec<f64> {
        let mut table = Vec::with_capacity(self.dim * (self.bins + 1));
        for j in 0..self.dim {
            let row = &self.counts[j * self.bins..(j + 1) * self.bins];
            let max_count = row.iter().cloned().fold(0.0f64, f64::max).max(1.0);
            let floor = 0.5 / max_count;
            for &c in row {
                let height = (c / max_count).max(floor);
                table.push((1.0 / height).ln());
            }
            table.push((1.0 / floor).ln());
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 60 samples: 4-D mass packed around 0.5 with a thin tail at 0.8 —
    /// the clustered shape real embeddings have.
    fn tight_cluster() -> Tensor {
        Tensor::from_fn(60, 4, |i, j| {
            if i % 20 == 19 {
                0.8
            } else {
                0.48 + ((i * 3 + j * 5) % 5) as f32 / 100.0
            }
        })
    }

    #[test]
    fn inliers_score_below_outliers() {
        let train = tight_cluster();
        let model = HistogramModel::fit(&train, 8);
        let inlier = [0.5f32, 0.5, 0.5, 0.5];
        let tail = [0.8f32, 0.8, 0.8, 0.8]; // rare but seen
        let far = [5.0f32, -5.0, 5.0, -5.0]; // out of distribution
        assert!(model.raw_score(&inlier) < model.raw_score(&tail));
        assert!(model.raw_score(&tail) < model.raw_score(&far));
        assert!(model.raw_score(&far).is_finite());
    }

    #[test]
    fn empty_bins_stay_finite() {
        let train = Tensor::from_fn(10, 2, |i, _| i as f32);
        let model = HistogramModel::fit(&train, 100);
        // Most of the 100 bins are empty.
        let s = model.raw_score(&[0.5, 3.5]);
        assert!(s.is_finite());
    }

    #[test]
    fn update_shifts_scores() {
        let train = tight_cluster();
        let mut model = HistogramModel::fit(&train, 8);
        let novel = [0.6f32, 0.6, 0.6, 0.6]; // in range, sparse region
        let before = model.raw_score(&novel);
        for _ in 0..30 {
            model.update(&novel);
        }
        let after = model.raw_score(&novel);
        assert!(after < before, "absorbing a region must lower its score");
        assert_eq!(model.n_samples(), 90);
    }

    #[test]
    fn degenerate_dimension_is_safe() {
        // Dimension 1 is constant across training.
        let train = Tensor::from_fn(20, 2, |i, j| if j == 0 { i as f32 } else { 3.0 });
        let model = HistogramModel::fit(&train, 5);
        assert!(model.raw_score(&[10.0, 3.0]).is_finite());
        assert!(model.raw_score(&[10.0, 99.0]).is_finite());
        // The constant dimension accepts its constant and rejects others.
        assert!(model.raw_score(&[10.0, 99.0]) > model.raw_score(&[10.0, 3.0]));
    }

    #[test]
    fn out_of_range_scores_as_empty_bin() {
        let train = Tensor::from_fn(30, 1, |i, _| (i % 10) as f32);
        let model = HistogramModel::fit(&train, 10);
        // Out-of-distribution values score strictly above every seen bin.
        assert!(model.raw_score(&[-100.0]) > model.raw_score(&[0.0]));
        assert!(model.raw_score(&[100.0]) > model.raw_score(&[9.0]));
        // But updates clamp into the edge bins without panicking.
        let mut m = model.clone();
        m.update(&[-100.0]);
        assert_eq!(m.n_samples(), 31);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn dimension_mismatch_panics() {
        let model = HistogramModel::fit(&tight_cluster(), 4);
        model.raw_score(&[0.0, 0.0]);
    }
}
