//! Property-based determinism tests for the full BiSAGE training loop.
//!
//! Two exact (bitwise) invariants of the trainer are enforced across
//! randomized graphs, seeds and hyperparameters:
//!
//! 1. **Sparse Adam ≡ dense Adam.** `sparse_adam` only changes *when*
//!    embedding-table rows are updated (lazily, on touch), never *what*
//!    the update computes — final embeddings must match bit-for-bit.
//! 2. **Pool ≡ sequential.** The data-parallel epoch loop derives every
//!    chunk's RNG from `(seed, epoch, chunk_idx)` and reduces chunk
//!    gradients in fixed chunk order, so thread count never touches the
//!    arithmetic — including on the arena-tape fast path, where each
//!    worker reuses its own thread-local tape buffers.
//!
//! Both properties ride through the same machinery the benchmarks and
//! the public `fit` use; nothing here is a test-only code path.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::RngExt;

use gem_core::{Aggregator, BiSage, BiSageConfig};
use gem_graph::{BipartiteGraph, WeightFn};
use gem_signal::{MacAddr, SignalRecord};

/// Random training scenario: a two-cluster graph plus hyperparameters.
#[derive(Debug, Clone)]
struct Scenario {
    records: Vec<Vec<(u64, f32)>>,
    seed: u64,
    epochs: usize,
    batch_size: usize,
    grad_accum: usize,
    dim: usize,
    uniform_sampling: bool,
}

/// Hand-rolled strategy (the vendored proptest has no `prop_flat_map`):
/// draws everything straight from the case RNG so record contents can
/// depend on the sampled cluster layout.
struct ScenarioStrategy;

impl Strategy for ScenarioStrategy {
    type Value = Scenario;

    fn sample(&self, rng: &mut StdRng) -> Scenario {
        let per_cluster = rng.random_range(4..10usize);
        let mut records = Vec::new();
        for cluster in 0..2u64 {
            let base_mac = 1 + cluster * 10;
            for _ in 0..per_cluster {
                let n_macs = rng.random_range(2..4usize);
                let rec = (0..n_macs as u64)
                    .map(|m| (base_mac + m, rng.random_range(-80.0..-40.0f32)))
                    .collect();
                records.push(rec);
            }
        }
        Scenario {
            records,
            seed: rng.random_range(0..1u64 << 32),
            epochs: rng.random_range(1..3usize),
            batch_size: rng.random_range(16..64usize),
            grad_accum: rng.random_range(1..4usize),
            dim: [8usize, 16][rng.random_range(0..2usize)],
            uniform_sampling: rng.random_range(0..4usize) == 0,
        }
    }
}

fn build_graph(s: &Scenario) -> BipartiteGraph {
    let mut g = BipartiteGraph::new(WeightFn::OffsetLinear { c: 120.0 });
    for (i, rec) in s.records.iter().enumerate() {
        g.add_record(&SignalRecord::from_pairs(
            i as f64,
            rec.iter().map(|&(m, rssi)| (MacAddr::from_raw(m), rssi)),
        ));
    }
    g
}

fn config(s: &Scenario) -> BiSageConfig {
    BiSageConfig {
        dim: s.dim,
        epochs: s.epochs,
        batch_size: s.batch_size,
        grad_accum: s.grad_accum,
        sample_sizes: vec![4, 2],
        rounds: 2,
        seed: s.seed,
        uniform_sampling: s.uniform_sampling,
        aggregator: if s.uniform_sampling { Aggregator::Mean } else { Aggregator::WeightedMean },
        ..BiSageConfig::default()
    }
}

/// Train and return the final record embeddings as raw bit patterns.
fn fit_bits(s: &Scenario, sparse_adam: bool, num_threads: usize) -> Vec<u32> {
    fit_bits_fused(s, sparse_adam, num_threads, false)
}

fn fit_bits_fused(s: &Scenario, sparse_adam: bool, num_threads: usize, fused: bool) -> Vec<u32> {
    let g = build_graph(s);
    let mut cfg = config(s);
    cfg.sparse_adam = sparse_adam;
    cfg.num_threads = num_threads;
    cfg.fused_kernels = fused;
    let mut model = BiSage::new(cfg);
    model.fit(&g);
    model.embed_all_records(&g).data().iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Sparse (lazy) Adam must reproduce the dense trajectory exactly.
    #[test]
    fn sparse_adam_fit_is_bitwise_dense(s in ScenarioStrategy) {
        let dense = fit_bits(&s, false, 1);
        let sparse = fit_bits(&s, true, 1);
        prop_assert_eq!(dense, sparse, "sparse Adam diverged from dense");
    }

    /// The pooled fit must reproduce the sequential fit exactly, with
    /// sparse Adam and arena tapes active (the default fast path).
    #[test]
    fn pooled_fit_is_bitwise_sequential(s in ScenarioStrategy) {
        let seq = fit_bits(&s, true, 1);
        let pooled = fit_bits(&s, true, 0);
        prop_assert_eq!(seq, pooled, "pooled fit diverged from sequential");
    }

    /// The fused (FMA) training path must keep the same determinism
    /// guarantee: correctly rounded FMAs are reproducible across thread
    /// counts, so pool ≡ sequential holds bitwise under
    /// `fused_kernels: true` too.
    #[test]
    fn fused_pooled_fit_is_bitwise_sequential(s in ScenarioStrategy) {
        let seq = fit_bits_fused(&s, true, 1, true);
        let pooled = fit_bits_fused(&s, true, 0, true);
        prop_assert_eq!(seq, pooled, "fused pooled fit diverged from fused sequential");
    }

    /// Arbitrary intermediate thread counts (capped through
    /// `gem_par::thread_cap`) must also match the sequential trajectory:
    /// the gradient merge tree's topology is a function of the group
    /// length alone, so 2, 3, or any other cap cannot change where in
    /// the tree a chunk's sink lands.
    #[test]
    fn capped_thread_counts_are_bitwise_sequential(s in ScenarioStrategy) {
        let seq = fit_bits(&s, true, 1);
        for threads in [2usize, 3] {
            let capped = fit_bits(&s, true, threads);
            prop_assert_eq!(&seq, &capped, "fit with num_threads={} diverged", threads);
        }
    }
}
