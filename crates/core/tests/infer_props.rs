//! Property-based parity tests for the tape-free streaming engine.
//!
//! The engine promises *bitwise* equality with the tape-based reference
//! path across randomized graphs, streamed records, trust assignments
//! and hyperparameters:
//!
//! 1. **Single-record streaming ≡ tape.** `embed_record` must reproduce
//!    `embed_nodes_filtered(&[record], wrapped)` exactly, where `wrapped`
//!    admits the record itself plus every trusted record — including the
//!    trust-filtered neighborhood fallback and the isolated-node
//!    random-init path.
//! 2. **Batched ≡ tape.** `embed_records_batch` must reproduce the tape
//!    forward over the same targets under the batch's set-wrapped filter.
//! 3. **Cache soundness.** A warm engine carried across graph growth and
//!    trust flips must match a cold engine rebuilt at every step.
//! 4. **Targeted row init ≡ full scan.** In session-quarantine mode the
//!    per-record `ensure_rows_for_record` must leave the model in the
//!    same state (RNG stream included) as the full node scan.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use gem_core::{Aggregator, BiSage, BiSageConfig, InferenceEngine};
use gem_graph::{BipartiteGraph, NodeId, RecordId, WeightFn};
use gem_signal::{MacAddr, SignalRecord};

/// Random scenario: a fitted two-cluster graph plus streamed records,
/// some with brand-new MACs (random-init fallback, volatile cache
/// entries) and per-record trust bits.
#[derive(Debug, Clone)]
struct Scenario {
    records: Vec<Vec<(u64, f32)>>,
    streamed: Vec<Vec<(u64, f32)>>,
    trusted_streamed: Vec<bool>,
    seed: u64,
    dim: usize,
    rounds: usize,
    uniform_sampling: bool,
    inference_cap: usize,
}

/// Hand-rolled strategy (the vendored proptest has no `prop_flat_map`).
struct ScenarioStrategy;

impl Strategy for ScenarioStrategy {
    type Value = Scenario;

    fn sample(&self, rng: &mut StdRng) -> Scenario {
        let per_cluster = rng.random_range(3..7usize);
        let mut records = Vec::new();
        for cluster in 0..2u64 {
            let base_mac = 1 + cluster * 8;
            for _ in 0..per_cluster {
                let n_macs = rng.random_range(2..5usize);
                let rec = (0..n_macs as u64)
                    .map(|m| (base_mac + m, rng.random_range(-80.0..-40.0f32)))
                    .collect();
                records.push(rec);
            }
        }
        let n_streamed = rng.random_range(3..8usize);
        let mut streamed = Vec::new();
        for i in 0..n_streamed {
            let n_macs = rng.random_range(1..4usize);
            let rec = (0..n_macs)
                .map(|k| {
                    // Mostly known MACs; occasionally a brand-new one.
                    let mac = if rng.random_range(0..4usize) == 0 {
                        100 + (i * 4 + k) as u64
                    } else {
                        1 + rng.random_range(0..12u64)
                    };
                    (mac, rng.random_range(-85.0..-40.0f32))
                })
                .collect();
            streamed.push(rec);
        }
        let trusted_streamed = (0..n_streamed).map(|_| rng.random_range(0..2usize) == 0).collect();
        Scenario {
            records,
            streamed,
            trusted_streamed,
            seed: rng.random_range(0..1u64 << 32),
            dim: [8usize, 16][rng.random_range(0..2usize)],
            rounds: rng.random_range(1..4usize),
            uniform_sampling: rng.random_range(0..3usize) == 0,
            inference_cap: [3usize, 48][rng.random_range(0..2usize)],
        }
    }
}

fn to_record(i: usize, readings: &[(u64, f32)]) -> SignalRecord {
    SignalRecord::from_pairs(
        i as f64,
        readings.iter().map(|&(m, rssi)| (MacAddr::from_raw(m), rssi)),
    )
}

fn config(s: &Scenario) -> BiSageConfig {
    BiSageConfig {
        dim: s.dim,
        epochs: 1,
        batch_size: 32,
        sample_sizes: vec![4, 2, 2][..s.rounds].to_vec(),
        rounds: s.rounds,
        seed: s.seed,
        uniform_sampling: s.uniform_sampling,
        aggregator: if s.uniform_sampling { Aggregator::Mean } else { Aggregator::WeightedMean },
        inference_cap: s.inference_cap,
        ..BiSageConfig::default()
    }
}

/// Fits the model on the scenario's training records.
fn fit_model(s: &Scenario) -> (BiSage, BipartiteGraph, StdRng) {
    let mut graph = BipartiteGraph::new(WeightFn::OffsetLinear { c: 120.0 });
    for (i, rec) in s.records.iter().enumerate() {
        graph.add_record(&to_record(i, rec));
    }
    let mut model = BiSage::new(config(s));
    model.fit(&graph);
    let rng = StdRng::seed_from_u64(s.seed ^ 0xF00D);
    (model, graph, rng)
}

fn bits_of(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Streaming single-record inference must be bitwise identical to the
    /// tape path, record by record, as the graph grows.
    #[test]
    fn engine_single_matches_tape_bitwise(s in ScenarioStrategy) {
        let (mut model, mut graph, mut rng) = fit_model(&s);
        let mut trusted: Vec<bool> = vec![true; graph.n_records()];
        let mut engine = InferenceEngine::new();
        for (i, rec) in s.streamed.iter().enumerate() {
            let rid = graph.add_record(&to_record(i, rec));
            trusted.push(s.trusted_streamed[i]);
            {
                let bits: &[bool] = &trusted;
                let filter = move |r: RecordId| bits[r.0 as usize];
                model.ensure_rows_filtered(&graph, &mut rng, Some(&filter));
            }
            let got = engine.embed_record(&model, &graph, rid, Some(&trusted));
            let bits: &[bool] = &trusted;
            let wrapped = move |r: RecordId| r == rid || bits[r.0 as usize];
            let (want, _) =
                model.embed_nodes_filtered(&graph, &[NodeId::Record(rid)], Some(&wrapped));
            prop_assert_eq!(
                bits_of(&got),
                bits_of(want.row(0)),
                "engine diverged from tape at streamed record {}",
                i
            );
        }
    }

    /// The fused batch path must be bitwise identical to the tape forward
    /// over the same targets under the batch's set-wrapped trust filter.
    #[test]
    fn engine_batch_matches_tape_bitwise(s in ScenarioStrategy) {
        let (mut model, mut graph, mut rng) = fit_model(&s);
        let mut trusted: Vec<bool> = vec![true; graph.n_records()];
        let mut targets = Vec::new();
        for (i, rec) in s.streamed.iter().enumerate() {
            targets.push(graph.add_record(&to_record(i, rec)));
            trusted.push(s.trusted_streamed[i]);
        }
        {
            let bits: &[bool] = &trusted;
            let filter = move |r: RecordId| bits[r.0 as usize];
            model.ensure_rows_filtered(&graph, &mut rng, Some(&filter));
        }
        let mut engine = InferenceEngine::new();
        let got = engine.embed_records_batch(&model, &graph, &targets, Some(&trusted));
        let mut in_targets = vec![false; graph.n_records()];
        for rid in &targets {
            in_targets[rid.0 as usize] = true;
        }
        let bits: &[bool] = &trusted;
        let wrapped = move |r: RecordId| in_targets[r.0 as usize] || bits[r.0 as usize];
        let nodes: Vec<NodeId> = targets.iter().map(|&r| NodeId::Record(r)).collect();
        let (want, _) = model.embed_nodes_filtered(&graph, &nodes, Some(&wrapped));
        prop_assert_eq!(bits_of(got.data()), bits_of(want.data()), "batch diverged from tape");
    }

    /// A warm engine carried across graph growth and trust flips must
    /// match a cold engine rebuilt at every step — the cache may never
    /// serve a stale aggregate.
    #[test]
    fn warm_cache_matches_cold_engine(s in ScenarioStrategy) {
        let (mut model, mut graph, mut rng) = fit_model(&s);
        let mut trusted: Vec<bool> = vec![true; graph.n_records()];
        let mut warm = InferenceEngine::new();
        let mut rids = Vec::new();
        for (i, rec) in s.streamed.iter().enumerate() {
            let rid = graph.add_record(&to_record(i, rec));
            rids.push(rid);
            trusted.push(false);
            {
                let bits: &[bool] = &trusted;
                let filter = move |r: RecordId| bits[r.0 as usize];
                model.ensure_rows_filtered(&graph, &mut rng, Some(&filter));
            }
            // Embed the fresh record, plus an earlier one (the pure
            // cross-call cache-reuse case), and compare each against a
            // cold engine.
            let mut probes = vec![rid];
            if i > 0 {
                probes.push(rids[i / 2]);
            }
            for &probe in &probes {
                let got = warm.embed_record(&model, &graph, probe, Some(&trusted));
                let want = InferenceEngine::new()
                    .embed_record(&model, &graph, probe, Some(&trusted));
                prop_assert_eq!(
                    bits_of(&got),
                    bits_of(&want),
                    "warm cache diverged at step {} probing record {}",
                    i,
                    probe.0
                );
            }
            // Classification outcome: maybe trust the new record, and on
            // odd steps flip an arbitrary older bit (feedback churn).
            if s.trusted_streamed[i] {
                trusted[rid.0 as usize] = true;
                warm.notify_trust_change();
            }
            if i % 2 == 1 {
                let j = (i * 5) % trusted.len();
                trusted[j] = !trusted[j];
                warm.notify_trust_change();
            }
        }
        // The cache must actually have been exercised, not bypassed.
        let stats = warm.cache_stats();
        prop_assert!(
            s.rounds != 2 || stats.hits + stats.misses > 0,
            "cache never consulted"
        );
    }

    /// Detector-fit paths: the engine-backed full-graph embeddings (used
    /// by `embed_all_records` / `embed_all_records_sampled`) must match
    /// their tape references, the sampled variant under identical RNG
    /// streams.
    #[test]
    fn full_graph_paths_match_tape_bitwise(s in ScenarioStrategy) {
        let (mut model, mut graph, mut rng) = fit_model(&s);
        for (i, rec) in s.streamed.iter().enumerate() {
            graph.add_record(&to_record(i, rec));
        }
        model.ensure_rows(&graph, &mut rng);
        let engine_all = model.embed_all_records(&graph);
        let tape_all = model.embed_all_records_tape(&graph);
        prop_assert_eq!(
            bits_of(engine_all.data()),
            bits_of(tape_all.data()),
            "embed_all_records diverged"
        );
        let mut rng_a = StdRng::seed_from_u64(s.seed ^ 0x5A);
        let mut rng_b = StdRng::seed_from_u64(s.seed ^ 0x5A);
        let sampled = model.embed_all_records_sampled(&graph, &mut rng_a);
        let sampled_tape = model.embed_all_records_sampled_tape(&graph, &mut rng_b);
        prop_assert_eq!(
            bits_of(sampled.data()),
            bits_of(sampled_tape.data()),
            "sampled path diverged"
        );
    }

    /// In session-quarantine mode the targeted per-record row init must
    /// leave the model bitwise identical to the full node scan — RNG
    /// stream included (both models then embed identically everywhere).
    #[test]
    fn targeted_ensure_matches_full_scan(s in ScenarioStrategy) {
        let (model, mut graph, _) = fit_model(&s);
        let mut targeted = model.clone();
        let mut full = model;
        let mut rng_a = StdRng::seed_from_u64(s.seed ^ 0xBEEF);
        let mut rng_b = StdRng::seed_from_u64(s.seed ^ 0xBEEF);
        let mut trusted: Vec<bool> = vec![true; graph.n_records()];
        for (i, rec) in s.streamed.iter().enumerate() {
            let rid = graph.add_record(&to_record(i, rec));
            trusted.push(s.trusted_streamed[i]);
            let bits: &[bool] = &trusted;
            let filter = move |r: RecordId| bits[r.0 as usize];
            targeted.ensure_rows_for_record(&graph, rid, &mut rng_a, Some(&filter));
            full.ensure_rows_filtered(&graph, &mut rng_b, Some(&filter));
        }
        let a = targeted.embed_all_records(&graph);
        let b = full.embed_all_records(&graph);
        prop_assert_eq!(bits_of(a.data()), bits_of(b.data()), "targeted ensure diverged");
    }

    /// The int8 quantized level-1 cache is an opt-in approximation: it
    /// must stay within a small absolute error of the exact engine, be
    /// deterministic (two quantized engines agree bitwise), and a
    /// toggle back to exact mode must drop every quantized entry and
    /// restore bitwise parity with a cold exact engine.
    #[test]
    fn quantized_cache_tracks_exact_engine(s in ScenarioStrategy) {
        let (mut model, mut graph, mut rng) = fit_model(&s);
        let mut trusted: Vec<bool> = vec![true; graph.n_records()];
        let mut rids = Vec::new();
        for (i, rec) in s.streamed.iter().enumerate() {
            rids.push(graph.add_record(&to_record(i, rec)));
            trusted.push(s.trusted_streamed[i]);
        }
        {
            let bits: &[bool] = &trusted;
            let filter = move |r: RecordId| bits[r.0 as usize];
            model.ensure_rows_filtered(&graph, &mut rng, Some(&filter));
        }
        let mut exact = InferenceEngine::new();
        let mut quant_a = InferenceEngine::new();
        let mut quant_b = InferenceEngine::new();
        quant_a.set_quantized_cache(true);
        quant_b.set_quantized_cache(true);
        for &rid in &rids {
            let want = exact.embed_record(&model, &graph, rid, Some(&trusted));
            let got_a = quant_a.embed_record(&model, &graph, rid, Some(&trusted));
            let got_b = quant_b.embed_record(&model, &graph, rid, Some(&trusted));
            prop_assert_eq!(
                bits_of(&got_a),
                bits_of(&got_b),
                "quantized engines diverged on record {}",
                rid.0
            );
            for (q, e) in got_a.iter().zip(&want) {
                prop_assert!(
                    (q - e).abs() <= 0.1,
                    "quantized embedding {} too far from exact {} at record {}",
                    q, e, rid.0
                );
            }
        }
        // Toggling back to exact invalidates the quantized entries and
        // restores bitwise parity with a cold exact engine.
        quant_a.set_quantized_cache(false);
        let probe = rids[rids.len() / 2];
        let restored = quant_a.embed_record(&model, &graph, probe, Some(&trusted));
        let cold = InferenceEngine::new().embed_record(&model, &graph, probe, Some(&trusted));
        prop_assert_eq!(
            bits_of(&restored),
            bits_of(&cold),
            "disabling the quantized cache must restore exact results"
        );
    }
}
