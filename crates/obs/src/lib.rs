//! Observability substrate for the GEM serving stack.
//!
//! Everything here is `std`-only and allocation-free on the hot path:
//!
//! * [`Counter`] / [`Gauge`] — relaxed-atomic scalars;
//! * [`Histogram`] — fixed log2-bucket latency histogram (p50/p99/p999
//!   derivable from the buckets, bounded error of one bucket, i.e. a
//!   factor of two);
//! * [`SpanTimer`] — RAII timer recording elapsed wall time into a
//!   histogram;
//! * [`Registry`] — named, labelled metric registry with two exposition
//!   formats: Prometheus text and a JSON dump for tooling;
//! * [`MetricsServer`] — a minimal `/metrics` HTTP endpoint on a
//!   [`std::net::TcpListener`], optionally serving `/trace.jsonl`;
//! * [`TraceRing`] — a bounded, overwrite-oldest structured event ring
//!   drainable as JSONL for post-mortem decision traces;
//! * [`SpanContext`] / [`SpanIdGen`] / [`TraceSampler`] — causal
//!   request-tracing identity and the head+tail sampling policy.
//!
//! The crate deliberately has **no dependencies** (consistent with the
//! workspace's vendored-deps policy) so any layer — core, service, cli,
//! bench — can instrument itself without coupling.

mod metrics;
mod registry;
mod server;
mod span;
mod trace;

pub use metrics::{
    interpolate_quantile, interpolate_quantile_seeded, Counter, Gauge, Histogram, SpanTimer,
    HISTOGRAM_BUCKETS,
};
pub use registry::{HistogramSnapshot, MetricSample, MetricValue, Registry};
pub use server::MetricsServer;
pub use span::{splitmix64, SpanContext, SpanIdGen, TraceSampler};
pub use trace::{TraceEvent, TraceRing, TraceValue};
