//! Causal request tracing: trace-id minting and the head+tail sampling
//! policy.
//!
//! A [`SpanContext`] identifies one record's journey through the
//! pipeline: a 64-bit trace id (unique per record) plus the span id of
//! the hop that handed the record over (0 at the root). Ids come from a
//! [`SpanIdGen`] — a splitmix64 sequence, so minting is one relaxed
//! `fetch_add` plus a few multiplies, collision-free over any realistic
//! run length, and needs no RNG dependency.
//!
//! Sampling is decided twice:
//!
//! * **head-based** at mint time, deterministically from the trace id
//!   (`trace_id < rate · 2^64`), so every hop that sees the context —
//!   including a remote client that minted it — agrees on the verdict
//!   without coordination;
//! * **tail-based** at completion time: [`TraceSampler::retain`] keeps
//!   any record whose end-to-end latency crossed the configured
//!   threshold even when the head coin said no, so the tail of the
//!   latency distribution is always explained.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// splitmix64 finalizer: a cheap, high-quality 64-bit mix (the same
/// avalanche the fleet's rendezvous hash uses).
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The splitmix64 additive constant (golden-ratio gamma).
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Lock-free trace/span id generator: a splitmix64 stream off one
/// atomic counter. Ids are never 0 (0 means "no id" on the wire and in
/// exemplar slots).
pub struct SpanIdGen {
    state: AtomicU64,
}

impl SpanIdGen {
    /// A generator whose stream starts at `seed` (two generators with
    /// the same seed produce the same ids — useful in tests).
    pub fn with_seed(seed: u64) -> SpanIdGen {
        SpanIdGen { state: AtomicU64::new(seed) }
    }

    /// A generator seeded from the wall clock and its own address, so
    /// independent processes mint disjoint streams.
    pub fn new() -> SpanIdGen {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let gen = SpanIdGen { state: AtomicU64::new(0) };
        let addr = &gen.state as *const _ as u64;
        gen.state.store(splitmix64(nanos ^ addr.rotate_left(32)), Ordering::Relaxed);
        gen
    }

    /// Mints the next id — one relaxed `fetch_add` plus the finalizer.
    /// Never returns 0.
    #[inline]
    pub fn next_id(&self) -> u64 {
        loop {
            let id = splitmix64(self.state.fetch_add(GAMMA, Ordering::Relaxed).wrapping_add(GAMMA));
            if id != 0 {
                return id;
            }
        }
    }
}

impl Default for SpanIdGen {
    fn default() -> Self {
        SpanIdGen::new()
    }
}

/// The per-record trace identity threaded through the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanContext {
    /// Identifies the record end to end. Never 0 for a real context.
    pub trace_id: u64,
    /// Span id of the hop that handed the record over (0 at the root —
    /// a server-minted context with no upstream client).
    pub parent_span: u64,
    /// Head-based sampling verdict, decided at mint time from the
    /// trace id. Tail-based retention may keep the record anyway.
    pub sampled: bool,
}

impl SpanContext {
    /// Formats a trace id the way every exposition surface renders it:
    /// 16 lowercase hex digits.
    pub fn format_id(id: u64) -> String {
        format!("{id:016x}")
    }

    /// Parses a [`SpanContext::format_id`]-formatted trace id.
    pub fn parse_id(s: &str) -> Option<u64> {
        u64::from_str_radix(s, 16).ok()
    }
}

/// The sampling policy: a head rate plus a tail-latency threshold.
#[derive(Clone, Copy, Debug)]
pub struct TraceSampler {
    /// Head verdict threshold: a trace id below this is sampled.
    /// `rate · 2^64`, saturating, so 1.0 samples everything.
    head_threshold: u64,
    /// Tail retention threshold in nanoseconds; 0 disables tail capture.
    tail_threshold_ns: u64,
}

impl TraceSampler {
    /// A sampler keeping `rate` (clamped to 0..=1) of records head-based
    /// and every record slower end-to-end than `tail_threshold_ns`
    /// (0 disables tail capture).
    pub fn new(rate: f64, tail_threshold_ns: u64) -> TraceSampler {
        let rate = if rate.is_finite() { rate.clamp(0.0, 1.0) } else { 0.0 };
        let head_threshold = if rate >= 1.0 {
            u64::MAX
        } else {
            // rate * 2^64, computed without overflowing f64→u64.
            (rate * (u64::MAX as f64)) as u64
        };
        TraceSampler { head_threshold, tail_threshold_ns }
    }

    /// A sampler that traces nothing (head rate 0, tail capture off).
    pub fn off() -> TraceSampler {
        TraceSampler { head_threshold: 0, tail_threshold_ns: 0 }
    }

    /// True when neither head nor tail sampling can ever retain a span.
    pub fn is_off(&self) -> bool {
        self.head_threshold == 0 && self.tail_threshold_ns == 0
    }

    /// The head-based verdict for a trace id: deterministic, so every
    /// hop (and the minting client) agrees without coordination.
    #[inline]
    pub fn head_sampled(&self, trace_id: u64) -> bool {
        self.head_threshold == u64::MAX || trace_id < self.head_threshold
    }

    /// The tail threshold in nanoseconds (0 when tail capture is off).
    pub fn tail_threshold_ns(&self) -> u64 {
        self.tail_threshold_ns
    }

    /// The completion-time verdict: keep the span when the head coin
    /// said yes, or when the measured end-to-end latency crossed the
    /// tail threshold.
    #[inline]
    pub fn retain(&self, head_sampled: bool, e2e_ns: u64) -> bool {
        head_sampled || (self.tail_threshold_ns > 0 && e2e_ns >= self.tail_threshold_ns)
    }

    /// Mints a fresh root context from `gen`, with the head verdict
    /// already decided.
    pub fn mint(&self, gen: &SpanIdGen) -> SpanContext {
        let trace_id = gen.next_id();
        SpanContext { trace_id, parent_span: 0, sampled: self.head_sampled(trace_id) }
    }

    /// Adopts a context handed over by an upstream hop (e.g. a client
    /// that minted the trace id on its side of the wire), re-deciding
    /// the head verdict under this sampler's rate.
    pub fn adopt(&self, trace_id: u64, parent_span: u64) -> SpanContext {
        SpanContext { trace_id, parent_span, sampled: self.head_sampled(trace_id) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let gen = SpanIdGen::with_seed(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = gen.next_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id:#x}");
        }
    }

    #[test]
    fn seeded_generators_repeat() {
        let a = SpanIdGen::with_seed(42);
        let b = SpanIdGen::with_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_id(), b.next_id());
        }
    }

    #[test]
    fn head_rate_extremes() {
        let gen = SpanIdGen::with_seed(7);
        let all = TraceSampler::new(1.0, 0);
        let none = TraceSampler::new(0.0, 0);
        for _ in 0..1000 {
            let id = gen.next_id();
            assert!(all.head_sampled(id));
            assert!(!none.head_sampled(id));
        }
        assert!(none.is_off());
        assert!(!all.is_off());
    }

    #[test]
    fn head_rate_is_approximately_honored() {
        let gen = SpanIdGen::with_seed(11);
        let s = TraceSampler::new(0.1, 0);
        let hits = (0..20_000).filter(|_| s.head_sampled(gen.next_id())).count();
        let rate = hits as f64 / 20_000.0;
        assert!((0.07..0.13).contains(&rate), "10% head rate measured as {rate}");
    }

    #[test]
    fn tail_retention_overrides_head_verdict() {
        let s = TraceSampler::new(0.0, 1_000_000);
        assert!(!s.retain(false, 999_999));
        assert!(s.retain(false, 1_000_000), "slow records are always retained");
        assert!(s.retain(true, 0));
        let no_tail = TraceSampler::new(0.0, 0);
        assert!(!no_tail.retain(false, u64::MAX));
    }

    #[test]
    fn id_formatting_round_trips() {
        let id = 0x00ab_cdef_0123_4567u64;
        let s = SpanContext::format_id(id);
        assert_eq!(s, "00abcdef01234567");
        assert_eq!(SpanContext::parse_id(&s), Some(id));
        assert_eq!(SpanContext::parse_id("zz"), None);
    }

    #[test]
    fn mint_and_adopt_agree_on_the_head_verdict() {
        let gen = SpanIdGen::with_seed(3);
        let s = TraceSampler::new(0.5, 0);
        for _ in 0..100 {
            let ctx = s.mint(&gen);
            assert_eq!(ctx.parent_span, 0);
            let adopted = s.adopt(ctx.trace_id, 99);
            assert_eq!(adopted.sampled, ctx.sampled, "verdict must be id-deterministic");
            assert_eq!(adopted.parent_span, 99);
        }
    }
}
