//! A minimal, dependency-free `/metrics` HTTP endpoint.
//!
//! One accept-loop thread on a [`std::net::TcpListener`], one request
//! per connection (`Connection: close`). This is a scrape target, not a
//! web server: it understands exactly `GET /metrics` (Prometheus text),
//! `GET /metrics.json` (the registry's JSON dump) and — when the server
//! was bound with trace rings — `GET /trace.jsonl` (drains the retained
//! span events as JSONL), and answers 404 to everything else.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::Registry;
use crate::trace::TraceRing;

/// A background `/metrics` server. Dropping it shuts the accept loop
/// down (a self-connect wakes the blocked `accept`).
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9next"` or `"127.0.0.1:0"` for an
    /// ephemeral port) and starts serving `registry` on a background
    /// thread. `/trace.jsonl` answers 404; use
    /// [`MetricsServer::bind_with_traces`] to serve span dumps too.
    pub fn bind(addr: &str, registry: Arc<Registry>) -> std::io::Result<MetricsServer> {
        Self::bind_with_traces(addr, registry, Vec::new())
    }

    /// Like [`MetricsServer::bind`], but additionally serves
    /// `GET /trace.jsonl`: every ring in `traces` is drained (a
    /// destructive read — each span is delivered to exactly one
    /// collector) and the events are returned as JSONL.
    pub fn bind_with_traces(
        addr: &str,
        registry: Arc<Registry>,
        traces: Vec<Arc<TraceRing>>,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle =
            std::thread::Builder::new().name("gem-obs-metrics".to_string()).spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    let Ok((stream, _)) = listener.accept() else { continue };
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    // A stuck scraper must not wedge the loop.
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                    let _ = serve_one(stream, &registry, &traces);
                }
            })?;
        Ok(MetricsServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the blocked accept() so the thread observes `stop`.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_one(
    stream: TcpStream,
    registry: &Registry,
    traces: &[Arc<TraceRing>],
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so well-behaved clients see a clean close.
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain", "method not allowed\n".to_string())
    } else {
        match path {
            "/metrics" => {
                ("200 OK", "text/plain; version=0.0.4; charset=utf-8", registry.render_prometheus())
            }
            "/metrics.json" => ("200 OK", "application/json", registry.render_json()),
            "/trace.jsonl" if !traces.is_empty() => {
                let mut body = String::new();
                for ring in traces {
                    for event in ring.drain() {
                        body.push_str(&event.to_json());
                        body.push('\n');
                    }
                }
                ("200 OK", "application/x-ndjson", body)
            }
            _ => ("404 Not Found", "text/plain", "try /metrics or /metrics.json\n".to_string()),
        }
    };
    let mut stream = reader.into_inner();
    stream.write_all(
        format!(
            "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_both_expositions_and_404s() {
        let registry = Arc::new(Registry::new());
        registry.counter("gem_test_total", &[]).add(7);
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();

        let text = get(addr, "/metrics");
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.contains("gem_test_total 7"), "{text}");

        let json = get(addr, "/metrics.json");
        assert!(json.contains("application/json"), "{json}");
        assert!(json.contains("\"gem_test_total\""), "{json}");

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        // Without trace rings, the span endpoint does not exist.
        let no_traces = get(addr, "/trace.jsonl");
        assert!(no_traces.starts_with("HTTP/1.1 404"), "{no_traces}");

        drop(server); // must join cleanly, not hang
    }

    #[test]
    fn trace_endpoint_drains_all_rings() {
        use crate::trace::{TraceEvent, TraceRing};
        let registry = Arc::new(Registry::new());
        let rings = vec![Arc::new(TraceRing::new(8)), Arc::new(TraceRing::new(8))];
        rings[0].push(TraceEvent::new("span").with("stage", "a"));
        rings[1].push(TraceEvent::new("span").with("stage", "b"));
        let server =
            MetricsServer::bind_with_traces("127.0.0.1:0", Arc::clone(&registry), rings.clone())
                .unwrap();
        let body = get(server.local_addr(), "/trace.jsonl");
        assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
        assert!(body.contains("application/x-ndjson"), "{body}");
        assert!(body.contains("\"stage\":\"a\""), "{body}");
        assert!(body.contains("\"stage\":\"b\""), "{body}");
        // The drain is destructive: a second pull is empty, and the
        // rings no longer hold the events.
        let again = get(server.local_addr(), "/trace.jsonl");
        assert!(!again.contains("\"stage\""), "{again}");
        assert!(rings.iter().all(|r| r.is_empty()));
    }

    /// Simultaneous `/metrics` + `/trace.jsonl` scrapes while a
    /// recording thread hammers the registry and the ring: every
    /// response must arrive complete and parseable — no torn bodies, no
    /// deadlock between scrapers and recorders.
    #[test]
    fn concurrent_scrapes_return_complete_bodies() {
        use crate::trace::{TraceEvent, TraceRing};
        use std::sync::atomic::AtomicBool;

        let registry = Arc::new(Registry::new());
        let ring = Arc::new(TraceRing::new(64));
        let server = MetricsServer::bind_with_traces(
            "127.0.0.1:0",
            Arc::clone(&registry),
            vec![Arc::clone(&ring)],
        )
        .unwrap();
        let addr = server.local_addr();

        let stop = Arc::new(AtomicBool::new(false));
        let recorder = {
            let (registry, ring, stop) = (Arc::clone(&registry), Arc::clone(&ring), Arc::clone(&stop));
            std::thread::spawn(move || {
                let h = registry.histogram("gem_scrape_race_seconds", &[]);
                let c = registry.counter("gem_scrape_race_total", &[]);
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    h.record_with_exemplar(i % 1_000_000, i | 1);
                    c.inc();
                    ring.push(TraceEvent::new("span").with("i", i));
                    i += 1;
                }
            })
        };

        let scrapers: Vec<_> = ["/metrics", "/trace.jsonl", "/metrics", "/metrics.json"]
            .into_iter()
            .map(|path| {
                std::thread::spawn(move || {
                    let mut bodies = Vec::new();
                    for _ in 0..10 {
                        bodies.push(get(addr, path));
                    }
                    (path, bodies)
                })
            })
            .collect();
        for s in scrapers {
            let (path, bodies) = s.join().expect("scraper must not panic or deadlock");
            for body in bodies {
                assert!(body.starts_with("HTTP/1.1 200 OK"), "{path}: {body}");
                let (head, payload) = body.split_once("\r\n\r\n").expect("complete response");
                let len: usize = head
                    .lines()
                    .find_map(|l| l.strip_prefix("Content-Length: "))
                    .expect("length header")
                    .trim()
                    .parse()
                    .unwrap();
                assert_eq!(payload.len(), len, "{path}: torn body");
                if path == "/metrics.json" {
                    assert!(payload.starts_with('{') && payload.ends_with('}'), "{path}");
                }
                if path == "/trace.jsonl" {
                    for line in payload.lines() {
                        assert!(line.starts_with('{') && line.ends_with('}'), "torn span: {line}");
                    }
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
        recorder.join().unwrap();
    }
}
