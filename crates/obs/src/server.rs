//! A minimal, dependency-free `/metrics` HTTP endpoint.
//!
//! One accept-loop thread on a [`std::net::TcpListener`], one request
//! per connection (`Connection: close`). This is a scrape target, not a
//! web server: it understands exactly `GET /metrics` (Prometheus text)
//! and `GET /metrics.json` (the registry's JSON dump) and answers 404
//! to everything else.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::Registry;

/// A background `/metrics` server. Dropping it shuts the accept loop
/// down (a self-connect wakes the blocked `accept`).
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9next"` or `"127.0.0.1:0"` for an
    /// ephemeral port) and starts serving `registry` on a background
    /// thread.
    pub fn bind(addr: &str, registry: Arc<Registry>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle =
            std::thread::Builder::new().name("gem-obs-metrics".to_string()).spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    let Ok((stream, _)) = listener.accept() else { continue };
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    // A stuck scraper must not wedge the loop.
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                    let _ = serve_one(stream, &registry);
                }
            })?;
        Ok(MetricsServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the blocked accept() so the thread observes `stop`.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_one(stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so well-behaved clients see a clean close.
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain", "method not allowed\n".to_string())
    } else {
        match path {
            "/metrics" => {
                ("200 OK", "text/plain; version=0.0.4; charset=utf-8", registry.render_prometheus())
            }
            "/metrics.json" => ("200 OK", "application/json", registry.render_json()),
            _ => ("404 Not Found", "text/plain", "try /metrics or /metrics.json\n".to_string()),
        }
    };
    let mut stream = reader.into_inner();
    stream.write_all(
        format!(
            "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_both_expositions_and_404s() {
        let registry = Arc::new(Registry::new());
        registry.counter("gem_test_total", &[]).add(7);
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();

        let text = get(addr, "/metrics");
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.contains("gem_test_total 7"), "{text}");

        let json = get(addr, "/metrics.json");
        assert!(json.contains("application/json"), "{json}");
        assert!(json.contains("\"gem_test_total\""), "{json}");

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        drop(server); // must join cleanly, not hang
    }
}
