//! The labelled metric registry and its two exposition formats.
//!
//! Registration (`counter`/`gauge`/`histogram`) is get-or-create keyed
//! on `(name, sorted labels)` and hands back an `Arc` to the shared
//! metric: callers register once at spawn time and then touch only the
//! atomic on the hot path — the registry lock is never taken again
//! until a scrape.
//!
//! Conventions (enforced where cheap, documented otherwise):
//! * metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*` and are
//!   `gem_<subsystem>_<noun>_<unit|total>`;
//! * histograms record **nanoseconds** and their names end in
//!   `_seconds`; the Prometheus exposition divides by 1e9 so `le`
//!   bounds and `_sum` are seconds, while the JSON dump stays in raw
//!   nanoseconds (`*_ns` fields);
//! * label values must come from bounded sets (shard indices,
//!   registered premises ids, fixed verdict names) — never timestamps,
//!   record ids or other unbounded streams.

use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};

/// A point-in-time value of one registered metric (introspection API).
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram snapshot. Boxed so the enum stays small for the
    /// counter/gauge majority.
    Histogram(Box<HistogramSnapshot>),
}

/// Point-in-time state of one histogram: counts plus the observed
/// extremes that seed the interpolated quantile estimator.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (`None` while empty).
    pub min: Option<u64>,
    /// Largest recorded value (`None` while empty).
    pub max: Option<u64>,
    /// Per-bucket counts, index-aligned with `Histogram::bucket_upper`.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Per-bucket exemplar trace ids (0 = none), index-aligned with
    /// `buckets`: the last sampled request to land in each bucket.
    pub exemplars: [u64; HISTOGRAM_BUCKETS],
}

/// One [`Registry::snapshot`] row: `(name, sorted labels, value)`.
pub type MetricSample = (String, Vec<(String, String)>, MetricValue);

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    metric: Metric,
}

/// A registry of named, labelled metrics. Cheap to share (`Arc`);
/// scrapes and registrations serialize on one mutex, hot-path updates
/// never touch it.
#[derive(Default)]
pub struct Registry {
    /// Static labels stamped onto every registered metric (e.g. a fleet
    /// or deployment id), in addition to the per-registration labels.
    base: Vec<(String, String)>,
    entries: Mutex<Vec<Entry>>,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    out.sort();
    out
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A registry whose every metric carries `base` static labels in
    /// addition to its per-registration labels.
    pub fn with_base_labels(base: &[(&str, &str)]) -> Registry {
        for (k, _) in base {
            assert!(valid_name(k), "invalid label name {k:?}");
        }
        Registry { base: sorted_labels(base), entries: Mutex::new(Vec::new()) }
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        wrap: impl Fn(&Metric) -> Option<Arc<T>>,
        make: impl FnOnce() -> (Arc<T>, Metric),
    ) -> Arc<T> {
        assert!(valid_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_name(k), "invalid label name {k:?}");
        }
        let mut labels = sorted_labels(labels);
        labels.extend(self.base.iter().cloned());
        labels.sort();
        let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(e) = entries.iter().find(|e| e.name == name && e.labels == labels) {
            return wrap(&e.metric).unwrap_or_else(|| {
                panic!("metric {name:?} already registered as a {}", e.metric.kind())
            });
        }
        let (arc, metric) = make();
        let at = entries
            .binary_search_by(|e| (e.name.as_str(), &e.labels).cmp(&(name, &labels)))
            .unwrap_err();
        entries.insert(at, Entry { name: name.to_string(), labels, metric });
        arc
    }

    /// Gets or registers a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.get_or_insert(
            name,
            labels,
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || {
                let c = Arc::new(Counter::new());
                (Arc::clone(&c), Metric::Counter(c))
            },
        )
    }

    /// Gets or registers a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            labels,
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            || {
                let g = Arc::new(Gauge::new());
                (Arc::clone(&g), Metric::Gauge(g))
            },
        )
    }

    /// Gets or registers a histogram (nanosecond-valued; see the module
    /// docs for the exposition convention).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            labels,
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || {
                let h = Arc::new(Histogram::new());
                (Arc::clone(&h), Metric::Histogram(h))
            },
        )
    }

    /// Point-in-time values of every registered metric, sorted by
    /// `(name, labels)`.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        entries
            .iter()
            .map(|e| {
                let value = match &e.metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(Box::new(HistogramSnapshot {
                        count: h.count(),
                        sum: h.sum(),
                        min: h.min(),
                        max: h.max(),
                        buckets: h.bucket_counts(),
                        exemplars: h.bucket_exemplars(),
                    })),
                };
                (e.name.clone(), e.labels.clone(), value)
            })
            .collect()
    }

    /// Renders the Prometheus text exposition (format version 0.0.4).
    pub fn render_prometheus(&self) -> String {
        let snapshot = self.snapshot();
        let mut out = String::with_capacity(4096);
        let mut last_name = "";
        for (name, labels, value) in &snapshot {
            if name != last_name {
                let kind = match value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(..) => "histogram",
                };
                out.push_str("# TYPE ");
                out.push_str(name);
                out.push(' ');
                out.push_str(kind);
                out.push('\n');
                last_name = name;
            }
            match value {
                MetricValue::Counter(v) => {
                    write_series(&mut out, name, labels, &[]);
                    out.push_str(&format!(" {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    write_series(&mut out, name, labels, &[]);
                    out.push_str(&format!(" {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, &c) in h.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cumulative += c;
                        let le = if i == HISTOGRAM_BUCKETS - 1 {
                            "+Inf".to_string()
                        } else {
                            format!("{:e}", Histogram::bucket_upper(i) as f64 / 1e9)
                        };
                        write_series(&mut out, &format!("{name}_bucket"), labels, &[("le", &le)]);
                        out.push_str(&format!(" {cumulative}\n"));
                    }
                    write_series(&mut out, &format!("{name}_bucket"), labels, &[("le", "+Inf")]);
                    out.push_str(&format!(" {}\n", h.count));
                    write_series(&mut out, &format!("{name}_sum"), labels, &[]);
                    out.push_str(&format!(" {:e}\n", h.sum as f64 / 1e9));
                    write_series(&mut out, &format!("{name}_count"), labels, &[]);
                    out.push_str(&format!(" {}\n", h.count));
                }
            }
        }
        out
    }

    /// Renders the JSON dump: `{"counters": [...], "gauges": [...],
    /// "histograms": [...]}` with raw nanosecond histogram fields and
    /// derived `p50_ns`/`p99_ns`/`p999_ns` convenience quantiles.
    pub fn render_json(&self) -> String {
        let snapshot = self.snapshot();
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        for (name, labels, value) in &snapshot {
            match value {
                MetricValue::Counter(v) => {
                    push_sep(&mut counters);
                    counters.push_str(&format!(
                        "{{\"name\":{},\"labels\":{},\"value\":{v}}}",
                        json_string(name),
                        json_labels(labels)
                    ));
                }
                MetricValue::Gauge(v) => {
                    push_sep(&mut gauges);
                    gauges.push_str(&format!(
                        "{{\"name\":{},\"labels\":{},\"value\":{v}}}",
                        json_string(name),
                        json_labels(labels)
                    ));
                }
                MetricValue::Histogram(h) => {
                    push_sep(&mut histograms);
                    let mut parts = String::new();
                    for (i, &c) in h.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        push_sep(&mut parts);
                        parts.push_str(&format!(
                            "{{\"lo_ns\":{},\"hi_ns\":{},\"count\":{c}",
                            Histogram::bucket_lower(i),
                            Histogram::bucket_upper(i)
                        ));
                        // The bucket's exemplar, when a sampled request
                        // landed here: the trace id to look up in the
                        // span dump.
                        if h.exemplars[i] != 0 {
                            parts.push_str(&format!(
                                ",\"exemplar\":\"{:016x}\"",
                                h.exemplars[i]
                            ));
                        }
                        parts.push('}');
                    }
                    // Quantiles and extremes only exist once something
                    // was recorded: an empty series must not publish
                    // fake zeros for dashboards to ingest.
                    let derived = if h.count == 0 {
                        String::new()
                    } else {
                        let q = |p: f64| quantile_of(h, p);
                        format!(
                            "\"min_ns\":{},\"max_ns\":{},\
                             \"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},",
                            h.min.unwrap_or(0),
                            h.max.unwrap_or(0),
                            q(0.50),
                            q(0.99),
                            q(0.999),
                        )
                    };
                    histograms.push_str(&format!(
                        "{{\"name\":{},\"labels\":{},\"count\":{},\"sum_ns\":{},\
                         {derived}\"buckets\":[{parts}]}}",
                        json_string(name),
                        json_labels(labels),
                        h.count,
                        h.sum,
                    ));
                }
            }
        }
        format!("{{\"counters\":[{counters}],\"gauges\":[{gauges}],\"histograms\":[{histograms}]}}")
    }
}

/// Bucket-derived quantile of a histogram snapshot, seeded with the
/// observed min/max (same estimator as
/// [`Histogram::quantile_interpolated`], rounded to whole nanoseconds).
fn quantile_of(h: &HistogramSnapshot, q: f64) -> u64 {
    crate::metrics::interpolate_quantile_seeded(&h.buckets, q, h.min, h.max)
        .map(|v| v.round() as u64)
        .unwrap_or(0)
}

fn push_sep(s: &mut String) {
    if !s.is_empty() {
        s.push(',');
    }
}

/// `name{k="v",...}` with Prometheus label-value escaping; `extra`
/// pairs (e.g. `le`) are appended after the registered labels.
fn write_series(out: &mut String, name: &str, labels: &[(String, String)], extra: &[(&str, &str)]) {
    out.push_str(name);
    if labels.is_empty() && extra.is_empty() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).chain(extra.iter().copied())
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
}

/// Minimal JSON string quoting (control characters escaped numerically).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(k));
        out.push(':');
        out.push_str(&json_string(v));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_dedupes_by_name_and_labels() {
        let r = Registry::new();
        let a = r.counter("gem_test_total", &[("shard", "0")]);
        let b = r.counter("gem_test_total", &[("shard", "0")]);
        let c = r.counter("gem_test_total", &[("shard", "1")]);
        a.inc();
        assert_eq!(b.get(), 1, "same name+labels must alias");
        assert_eq!(c.get(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        r.counter("gem_test_total", &[]);
        r.gauge("gem_test_total", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        Registry::new().counter("0bad name", &[]);
    }

    #[test]
    fn base_labels_are_stamped_on_every_metric() {
        let r = Registry::with_base_labels(&[("fleet", "f1")]);
        r.counter("gem_x_total", &[("shard", "0")]).inc();
        let text = r.render_prometheus();
        assert!(text.contains("gem_x_total{fleet=\"f1\",shard=\"0\"} 1"), "{text}");
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = Registry::new();
        r.counter("gem_x_total", &[("shard", "1")]).add(3);
        r.gauge("gem_depth", &[]).set(-2);
        let h = r.histogram("gem_lat_seconds", &[]);
        h.record(100);
        h.record(1_000_000);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE gem_x_total counter"), "{text}");
        assert!(text.contains("gem_x_total{shard=\"1\"} 3"), "{text}");
        assert!(text.contains("gem_depth -2"), "{text}");
        assert!(text.contains("# TYPE gem_lat_seconds histogram"), "{text}");
        assert!(text.contains("gem_lat_seconds_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("gem_lat_seconds_count 2"), "{text}");
    }

    #[test]
    fn json_dump_has_quantiles() {
        let r = Registry::new();
        let h = r.histogram("gem_lat_seconds", &[("shard", "0")]);
        for _ in 0..900 {
            h.record(1_000);
        }
        for _ in 0..100 {
            h.record(1_000_000);
        }
        let json = r.render_json();
        // Interpolated quantiles must land inside their buckets, clamped
        // to the observed extremes (min 1_000, max 1_000_000).
        let counts = h.bucket_counts();
        let p50 = crate::metrics::interpolate_quantile_seeded(&counts, 0.50, h.min(), h.max())
            .unwrap()
            .round() as u64;
        let p99 = crate::metrics::interpolate_quantile_seeded(&counts, 0.99, h.min(), h.max())
            .unwrap()
            .round() as u64;
        assert!((1_000..=1_023).contains(&p50), "p50 {p50} outside [observed min, bucket hi]");
        assert!(
            (524_288..=1_000_000).contains(&p99),
            "p99 {p99} outside [bucket lo, observed max]"
        );
        assert!(json.contains(&format!("\"p50_ns\":{p50}")), "{json}");
        assert!(json.contains(&format!("\"p99_ns\":{p99}")), "{json}");
        assert!(json.contains("\"min_ns\":1000"), "{json}");
        assert!(json.contains("\"max_ns\":1000000"), "{json}");
    }

    #[test]
    fn zero_count_histograms_omit_quantile_fields() {
        let r = Registry::new();
        r.histogram("gem_idle_seconds", &[("shard", "1")]);
        let json = r.render_json();
        assert!(json.contains("\"name\":\"gem_idle_seconds\""), "{json}");
        assert!(json.contains("\"count\":0"), "{json}");
        for field in ["min_ns", "max_ns", "p50_ns", "p99_ns", "p999_ns"] {
            assert!(!json.contains(field), "empty series must omit {field}: {json}");
        }
        // A non-empty series still carries all of them.
        r.histogram("gem_idle_seconds", &[("shard", "1")]).record(5);
        let json = r.render_json();
        for field in ["min_ns", "max_ns", "p50_ns", "p99_ns", "p999_ns"] {
            assert!(json.contains(field), "non-empty series must emit {field}: {json}");
        }
    }

    #[test]
    fn bucket_exemplars_appear_in_json() {
        let r = Registry::new();
        let h = r.histogram("gem_lat_seconds", &[]);
        h.record_with_exemplar(1_000, 0xDEAD_BEEF);
        h.record(1_000_000); // unsampled: bucket present, no exemplar
        let json = r.render_json();
        assert!(json.contains("\"exemplar\":\"00000000deadbeef\""), "{json}");
        let buckets = json.split("\"buckets\":[").nth(1).unwrap();
        assert_eq!(buckets.matches("exemplar").count(), 1, "{json}");
    }
}
