//! Lock-free metric primitives: counter, gauge, log2-bucket histogram
//! and the RAII span timer.
//!
//! All hot-path operations are single relaxed atomic RMWs and allocate
//! nothing. Cross-metric consistency is deliberately not promised: a
//! scrape may observe a count that is one ahead of a sum — the usual
//! contract of relaxed telemetry.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

/// A monotonically increasing relaxed-atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A relaxed-atomic signed gauge (a value that goes up and down).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of buckets in a [`Histogram`].
///
/// Bucket 0 holds the value 0; bucket `k` (1 ≤ k ≤ 38) holds values in
/// `[2^(k-1), 2^k)`; bucket 39 is the overflow bucket (`≥ 2^38`). For
/// nanosecond latencies the covered range is 1 ns .. ~4.6 min, far wider
/// than any decision path.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed log2-bucket histogram for latencies (recorded in integer
/// units, by convention nanoseconds).
///
/// Recording is one relaxed `fetch_add` on the bucket plus two on the
/// running sum/count — no locks, no allocation. Quantiles are derived
/// from the bucket counts with a worst-case error of one bucket (a
/// factor of two in value), which is exactly the resolution needed to
/// answer "is p99 microseconds or milliseconds".
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// Smallest recorded value (`u64::MAX` while empty). Seeds the
    /// interpolated quantiles: an estimate can never be below the
    /// smallest value actually observed.
    min: AtomicU64,
    /// Largest recorded value (0 while empty). Seeds the interpolated
    /// quantiles: an estimate near the top of a wide log2 bucket is
    /// clamped down to the largest value actually observed.
    max: AtomicU64,
    /// Last trace id to land in each bucket (0 = none): the exemplar
    /// that links a latency bucket back to a concrete request trace.
    exemplars: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            exemplars: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The bucket a value falls into.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((u64::BITS - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Inclusive upper bound of a bucket (`u64::MAX` for the overflow
    /// bucket).
    pub fn bucket_upper(index: usize) -> u64 {
        match index {
            0 => 0,
            k if k < HISTOGRAM_BUCKETS - 1 => (1u64 << k) - 1,
            _ => u64::MAX,
        }
    }

    /// Inclusive lower bound of a bucket.
    pub fn bucket_lower(index: usize) -> u64 {
        match index {
            0 => 0,
            k => 1u64 << (k - 1),
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records one value and attaches `trace_id` as the bucket's
    /// exemplar (last writer wins; 0 leaves the exemplar untouched, so
    /// unsampled records never erase a sampled one).
    #[inline]
    pub fn record_with_exemplar(&self, value: u64, trace_id: u64) {
        self.record(value);
        if trace_id != 0 {
            self.exemplars[Self::bucket_index(value)].store(trace_id, Ordering::Relaxed);
        }
    }

    /// Per-bucket exemplar trace ids (0 = none), index-aligned with
    /// [`Histogram::bucket_counts`].
    pub fn bucket_exemplars(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.exemplars[i].load(Ordering::Relaxed))
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value, `None` while empty.
    pub fn min(&self) -> Option<u64> {
        match self.min.load(Ordering::Relaxed) {
            u64::MAX if self.count() == 0 => None,
            v => Some(v),
        }
    }

    /// Largest recorded value, `None` while empty.
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.max.load(Ordering::Relaxed))
        }
    }

    /// Per-bucket counts (non-cumulative), index-aligned with
    /// [`Histogram::bucket_upper`].
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// The bucket holding the `q`-quantile (by the zero-based rank
    /// `floor(q · (n−1))`, matching index-based percentile estimators),
    /// or `None` when the histogram is empty.
    pub fn quantile_bucket(&self, q: f64) -> Option<usize> {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * (total - 1) as f64).floor() as u64;
        let mut cumulative = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cumulative += c;
            if cumulative > rank {
                return Some(i);
            }
        }
        Some(HISTOGRAM_BUCKETS - 1)
    }

    /// Conservative quantile estimate: the inclusive upper bound of the
    /// bucket holding the rank (0 when empty). True value is within one
    /// bucket, i.e. at most a factor of two below the estimate.
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bucket(q).map(Self::bucket_upper).unwrap_or(0)
    }

    /// Log-linear interpolated quantile estimate (0 when empty): the
    /// rank's position within its bucket's count is mapped onto the
    /// bucket's log2 span, so nearby quantiles stop collapsing onto the
    /// same bucket upper bound. Same bucket selection as
    /// [`Histogram::quantile_bucket`], and the estimate is clamped into
    /// that bucket — the documented ≤-one-bucket error bound is
    /// unchanged (the true value shares the bucket).
    ///
    /// The estimate is additionally seeded with the observed min/max:
    /// no quantile can land below the smallest or above the largest
    /// value actually recorded. Without this, a population whose top
    /// values sit near the bottom of a wide log2 bucket over-reports its
    /// p99 by up to 2x (the interpolation drifts toward the bucket's
    /// upper bound the histogram never saw).
    pub fn quantile_interpolated(&self, q: f64) -> f64 {
        interpolate_quantile_seeded(&self.bucket_counts(), q, self.min(), self.max()).unwrap_or(0.0)
    }

    /// Starts an RAII timer that records elapsed nanoseconds into this
    /// histogram when dropped.
    pub fn start_timer(&self) -> SpanTimer<'_> {
        SpanTimer { histogram: self, start: Instant::now(), armed: true }
    }
}

/// Log-linear interpolated quantile over a bucket-counts snapshot (the
/// shared estimator behind [`Histogram::quantile_interpolated`], the
/// registry's JSON quantiles, and merged cross-shard snapshots).
/// `None` when the snapshot is empty.
///
/// Bucket selection matches [`Histogram::quantile_bucket`]
/// (`rank = floor(q · (n−1))`); within bucket `k` (span
/// `[2^(k−1), 2^k)`) the rank's fractional position among the bucket's
/// samples interpolates the exponent: `v = 2^((k−1) + frac)`, clamped
/// into the bucket. Bucket 0 is exactly 0, and the unbounded overflow
/// bucket reports its lower bound.
pub fn interpolate_quantile(counts: &[u64; HISTOGRAM_BUCKETS], q: f64) -> Option<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = q.clamp(0.0, 1.0) * (total - 1) as f64;
    let rank_floor = rank.floor() as u64;
    let mut cumulative = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if cumulative + c > rank_floor {
            if i == 0 {
                return Some(0.0);
            }
            let lower = Histogram::bucket_lower(i) as f64;
            if i == HISTOGRAM_BUCKETS - 1 {
                // No finite upper bound to interpolate toward.
                return Some(lower);
            }
            let frac = ((rank - cumulative as f64) / c as f64).clamp(0.0, 1.0);
            let v = ((i - 1) as f64 + frac).exp2();
            return Some(v.clamp(lower, Histogram::bucket_upper(i) as f64));
        }
        cumulative += c;
    }
    Some(Histogram::bucket_lower(HISTOGRAM_BUCKETS - 1) as f64)
}

/// [`interpolate_quantile`] seeded with the histogram's observed
/// min/max: the estimate is clamped into `[min, max]` after the
/// in-bucket interpolation. Because the observed extremes live in the
/// lowest/highest occupied buckets, the clamp can only *tighten* the
/// estimate — it never moves it out of the rank's bucket, so the
/// ≤-one-bucket error bound still holds, now with exact endpoints.
///
/// This is the estimator behind [`Histogram::quantile_interpolated`]
/// and the registry exposition; use it directly when merging bucket
/// snapshots across histograms (seed with the min-of-mins and
/// max-of-maxes).
pub fn interpolate_quantile_seeded(
    counts: &[u64; HISTOGRAM_BUCKETS],
    q: f64,
    min: Option<u64>,
    max: Option<u64>,
) -> Option<f64> {
    let v = interpolate_quantile(counts, q)?;
    let lo = min.map(|m| m as f64).unwrap_or(f64::NEG_INFINITY);
    let hi = max.map(|m| m as f64).unwrap_or(f64::INFINITY);
    Some(v.clamp(lo, hi.max(lo)))
}

/// RAII span timer: records the elapsed wall time (nanoseconds) into its
/// histogram on drop. Obtain one with [`Histogram::start_timer`].
pub struct SpanTimer<'a> {
    histogram: &'a Histogram,
    start: Instant,
    armed: bool,
}

impl SpanTimer<'_> {
    /// Stops the timer now, records the elapsed nanoseconds and returns
    /// them (instead of recording at scope exit).
    pub fn stop(mut self) -> u64 {
        let nanos = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.histogram.record(nanos);
        self.armed = false;
        nanos
    }

    /// Abandons the timer without recording.
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if self.armed {
            let nanos = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.histogram.record(nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn span_timer_records_once() {
        let h = Histogram::new();
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.count(), 1);
        let t = h.start_timer();
        let nanos = t.stop();
        assert_eq!(h.count(), 2);
        assert!(nanos > 0);
        h.start_timer().cancel();
        assert_eq!(h.count(), 2, "cancelled timers must not record");
    }

    #[test]
    fn exemplars_track_last_trace_id_per_bucket() {
        let h = Histogram::new();
        h.record_with_exemplar(100, 0xAA);
        h.record_with_exemplar(120, 0xBB); // same bucket, last wins
        h.record_with_exemplar(1_000_000, 0xCC);
        h.record_with_exemplar(130, 0); // unsampled: must not erase
        let ex = h.bucket_exemplars();
        assert_eq!(ex[Histogram::bucket_index(100)], 0xBB);
        assert_eq!(ex[Histogram::bucket_index(1_000_000)], 0xCC);
        assert_eq!(ex[Histogram::bucket_index(1 << 30)], 0, "untouched bucket has no exemplar");
        assert_eq!(h.count(), 4, "exemplar recording still counts the value");
    }
}
