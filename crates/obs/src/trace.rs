//! Bounded structured event rings for post-mortem decision traces.
//!
//! A [`TraceRing`] keeps the last `capacity` events (overwrite-oldest:
//! pushing to a full ring evicts the oldest event and bumps a drop
//! counter — pushers never block and memory is bounded by
//! construction). Events are small structured records — a kind plus a
//! handful of typed fields — rendered as one JSON object per line
//! (JSONL) on export, so a trace dump is greppable and `jq`-able
//! without a parser for some bespoke format.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::registry::json_string;

/// A typed field value on a [`TraceEvent`].
#[derive(Clone, Debug, PartialEq)]
pub enum TraceValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (serialized as JSON number; NaN/inf become null).
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for TraceValue {
    fn from(v: u64) -> TraceValue {
        TraceValue::U64(v)
    }
}
impl From<usize> for TraceValue {
    fn from(v: usize) -> TraceValue {
        TraceValue::U64(v as u64)
    }
}
impl From<i64> for TraceValue {
    fn from(v: i64) -> TraceValue {
        TraceValue::I64(v)
    }
}
impl From<f64> for TraceValue {
    fn from(v: f64) -> TraceValue {
        TraceValue::F64(v)
    }
}
impl From<&str> for TraceValue {
    fn from(v: &str) -> TraceValue {
        TraceValue::Str(v.to_string())
    }
}
impl From<String> for TraceValue {
    fn from(v: String) -> TraceValue {
        TraceValue::Str(v)
    }
}
impl From<bool> for TraceValue {
    fn from(v: bool) -> TraceValue {
        TraceValue::Bool(v)
    }
}

/// One structured trace event: a kind, a wall-clock timestamp, a ring
/// sequence number and typed fields.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Event kind, e.g. `"admission"`, `"epoch"`, `"journal_fsync"`.
    pub kind: &'static str,
    /// Milliseconds since the Unix epoch, stamped at push time.
    pub ts_ms: u64,
    /// Monotonic per-ring sequence number, assigned at push time.
    pub seq: u64,
    /// Typed payload fields, in insertion order.
    pub fields: Vec<(&'static str, TraceValue)>,
}

impl TraceEvent {
    /// A new event of `kind` with no fields yet (`ts_ms`/`seq` are
    /// assigned by [`TraceRing::push`]).
    pub fn new(kind: &'static str) -> TraceEvent {
        TraceEvent { kind, ts_ms: 0, seq: 0, fields: Vec::new() }
    }

    /// Builder-style field append.
    pub fn with(mut self, key: &'static str, value: impl Into<TraceValue>) -> TraceEvent {
        self.fields.push((key, value.into()));
        self
    }

    /// Renders the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str(&format!(
            "{{\"seq\":{},\"ts_ms\":{},\"kind\":{}",
            self.seq,
            self.ts_ms,
            json_string(self.kind)
        ));
        for (k, v) in &self.fields {
            out.push(',');
            out.push_str(&json_string(k));
            out.push(':');
            match v {
                TraceValue::U64(n) => out.push_str(&n.to_string()),
                TraceValue::I64(n) => out.push_str(&n.to_string()),
                TraceValue::F64(f) if f.is_finite() => out.push_str(&format!("{f}")),
                TraceValue::F64(_) => out.push_str("null"),
                TraceValue::Str(s) => out.push_str(&json_string(s)),
                TraceValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out.push('}');
        out
    }
}

struct RingInner {
    buf: VecDeque<TraceEvent>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded overwrite-oldest ring of [`TraceEvent`]s.
///
/// `push` is a short mutex hold plus at most one eviction — fine for
/// the per-epoch / per-batch cadence it is meant for (it is *not* a
/// per-scan hot path). A capacity of 0 disables the ring entirely:
/// pushes are counted as dropped and nothing is retained.
pub struct TraceRing {
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl TraceRing {
    /// A ring retaining at most `capacity` events.
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            capacity,
            inner: Mutex::new(RingInner {
                buf: VecDeque::with_capacity(capacity.min(1024)),
                next_seq: 0,
                dropped: 0,
            }),
        }
    }

    /// Capacity the ring was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pushes an event, stamping `ts_ms` and `seq`; evicts the oldest
    /// event when full. Returns the assigned sequence number.
    pub fn push(&self, mut event: TraceEvent) -> u64 {
        event.ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let seq = inner.next_seq;
        inner.next_seq += 1;
        event.seq = seq;
        if self.capacity == 0 {
            inner.dropped += 1;
            return seq;
        }
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(event);
        seq
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted (or refused, for capacity 0) so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).dropped
    }

    /// Copies out the retained events, oldest first, without clearing.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.buf.iter().cloned().collect()
    }

    /// Removes and returns the retained events, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.buf.drain(..).collect()
    }

    /// Renders the retained events as JSONL (one object per line,
    /// trailing newline when non-empty) without clearing.
    pub fn to_jsonl(&self) -> String {
        let events = self.snapshot();
        let mut out = String::with_capacity(events.len() * 96);
        for e in &events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overwrites_oldest_and_counts_drops() {
        let ring = TraceRing::new(2);
        for i in 0..5u64 {
            ring.push(TraceEvent::new("e").with("i", i));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        let events = ring.snapshot();
        assert_eq!(events[0].fields, vec![("i", TraceValue::U64(3))]);
        assert_eq!(events[1].fields, vec![("i", TraceValue::U64(4))]);
        assert_eq!(events[1].seq, 4, "seq keeps counting across evictions");
    }

    #[test]
    fn zero_capacity_ring_is_inert() {
        let ring = TraceRing::new(0);
        ring.push(TraceEvent::new("e"));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn jsonl_shape() {
        let ring = TraceRing::new(8);
        ring.push(
            TraceEvent::new("admission")
                .with("verdict", "shed")
                .with("shard", 3u64)
                .with("score", 0.25f64)
                .with("known", true),
        );
        let jsonl = ring.to_jsonl();
        let line = jsonl.lines().next().unwrap();
        assert!(line.starts_with("{\"seq\":0,"), "{line}");
        assert!(line.contains("\"kind\":\"admission\""), "{line}");
        assert!(line.contains("\"verdict\":\"shed\""), "{line}");
        assert!(line.contains("\"shard\":3"), "{line}");
        assert!(line.contains("\"score\":0.25"), "{line}");
        assert!(line.contains("\"known\":true"), "{line}");
        assert!(jsonl.ends_with('}') || jsonl.ends_with('\n'));
        // drain clears
        assert_eq!(ring.drain().len(), 1);
        assert!(ring.is_empty());
    }
}
