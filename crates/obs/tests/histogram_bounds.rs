//! Pins the log2 histogram's bucket boundaries and the error bound of
//! its bucket-derived quantile estimator. These are load-bearing for
//! the fleet bench's "internal vs external quantile" agreement gate: if
//! the boundaries drift, that gate's tolerance (one bucket) changes
//! meaning silently.

use gem_obs::{interpolate_quantile, Histogram, HISTOGRAM_BUCKETS};

#[test]
fn bucket_boundaries_are_powers_of_two() {
    // Bucket 0 is exactly the value 0.
    assert_eq!(Histogram::bucket_index(0), 0);
    assert_eq!(Histogram::bucket_lower(0), 0);
    assert_eq!(Histogram::bucket_upper(0), 0);

    // Bucket k (1..=38) covers [2^(k-1), 2^k - 1].
    for k in 1..HISTOGRAM_BUCKETS - 1 {
        let lo = 1u64 << (k - 1);
        let hi = (1u64 << k) - 1;
        assert_eq!(Histogram::bucket_lower(k), lo, "bucket {k} lower");
        assert_eq!(Histogram::bucket_upper(k), hi, "bucket {k} upper");
        assert_eq!(Histogram::bucket_index(lo), k, "lower edge of bucket {k}");
        assert_eq!(Histogram::bucket_index(hi), k, "upper edge of bucket {k}");
    }

    // Spot-pin a few human-readable edges (nanosecond reading).
    assert_eq!(Histogram::bucket_index(1), 1);
    assert_eq!(Histogram::bucket_index(1_000), 10); // ~1 µs
    assert_eq!(Histogram::bucket_index(1_000_000), 20); // ~1 ms
    assert_eq!(Histogram::bucket_index(1_000_000_000), 30); // ~1 s

    // Overflow bucket catches everything ≥ 2^38 (~4.6 min in ns).
    let last = HISTOGRAM_BUCKETS - 1;
    assert_eq!(Histogram::bucket_lower(last), 1u64 << (last - 1));
    assert_eq!(Histogram::bucket_upper(last), u64::MAX);
    assert_eq!(Histogram::bucket_index(1u64 << (last - 1)), last);
    assert_eq!(Histogram::bucket_index(u64::MAX), last);
}

#[test]
fn every_recorded_value_lands_in_its_bucket() {
    let h = Histogram::new();
    let values: Vec<u64> =
        (0..64).map(|i| if i == 0 { 0 } else { (1u64 << (i % 40)).wrapping_add(i) }).collect();
    for &v in &values {
        h.record(v);
    }
    assert_eq!(h.count(), values.len() as u64);
    assert_eq!(h.sum(), values.iter().copied().fold(0u64, u64::wrapping_add));
    let counts = h.bucket_counts();
    assert_eq!(counts.iter().sum::<u64>(), values.len() as u64);
    for (i, &c) in counts.iter().enumerate() {
        let expected = values.iter().filter(|&&v| Histogram::bucket_index(v) == i).count() as u64;
        assert_eq!(c, expected, "bucket {i}");
    }
}

#[test]
fn quantile_error_is_at_most_one_bucket() {
    // A skewed latency-like population with exactly known order
    // statistics: 900 fast (~1 µs), 90 medium (~100 µs), 10 slow
    // (~10 ms).
    let h = Histogram::new();
    let mut values = Vec::new();
    values.extend(std::iter::repeat_n(1_000u64, 900));
    values.extend(std::iter::repeat_n(100_000u64, 90));
    values.extend(std::iter::repeat_n(10_000_000u64, 10));
    for &v in &values {
        h.record(v);
    }
    values.sort_unstable();

    for &q in &[0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
        let rank = (q * (values.len() - 1) as f64).floor() as usize;
        let exact = values[rank];
        let estimate = h.quantile(q);
        // The estimate is the inclusive upper bound of the true value's
        // bucket: never below the exact value, never more than one
        // power of two above it.
        assert!(estimate >= exact, "q={q}: estimate {estimate} < exact {exact}");
        assert!(
            estimate < exact.max(1) * 2,
            "q={q}: estimate {estimate} not within one bucket of {exact}"
        );
        assert_eq!(
            h.quantile_bucket(q),
            Some(Histogram::bucket_index(exact)),
            "q={q}: estimator must land in the exact value's bucket"
        );
    }
}

#[test]
fn interpolated_quantile_stays_in_the_exact_values_bucket() {
    // Same skewed population as above: the interpolated estimate must
    // keep the conservative estimator's ≤-one-bucket error bound by
    // never leaving the bucket that holds the rank.
    let h = Histogram::new();
    let mut values = Vec::new();
    values.extend(std::iter::repeat_n(1_000u64, 900));
    values.extend(std::iter::repeat_n(100_000u64, 90));
    values.extend(std::iter::repeat_n(10_000_000u64, 10));
    for &v in &values {
        h.record(v);
    }
    values.sort_unstable();

    for &q in &[0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
        let rank = (q * (values.len() - 1) as f64).floor() as usize;
        let exact = values[rank];
        let est = h.quantile_interpolated(q);
        let bucket = Histogram::bucket_index(exact);
        assert!(
            est >= Histogram::bucket_lower(bucket) as f64
                && est <= Histogram::bucket_upper(bucket) as f64,
            "q={q}: interpolated estimate {est} left the exact value's bucket {bucket}"
        );
        assert!(
            est <= h.quantile(q) as f64,
            "q={q}: interpolated estimate {est} above the conservative upper bound"
        );
    }
}

#[test]
fn interpolated_quantiles_separate_within_one_bucket() {
    // 1000 samples spread across bucket 10 ([512, 1023]): the
    // conservative estimator collapses every quantile to 1023, the
    // interpolated one must separate p50 from p99 monotonically.
    let h = Histogram::new();
    for i in 0..1000u64 {
        h.record(520 + i / 2);
    }
    assert_eq!(h.quantile(0.50), 1023);
    assert_eq!(h.quantile(0.99), 1023);
    let p50 = h.quantile_interpolated(0.50);
    let p99 = h.quantile_interpolated(0.99);
    assert!(p50 < p99, "p50 {p50} must separate below p99 {p99}");
    assert!((520.0..=1019.0).contains(&p50), "p50 {p50} outside observed range");
    assert!((520.0..=1019.0).contains(&p99), "p99 {p99} outside observed range");

    // Identical samples collapse to the exact value: the min/max seed
    // makes every quantile report 700 exactly.
    let h = Histogram::new();
    for _ in 0..1000 {
        h.record(700);
    }
    assert_eq!(h.quantile_interpolated(0.50), 700.0);
    assert_eq!(h.quantile_interpolated(0.99), 700.0);
}

#[test]
fn interpolated_quantile_edge_buckets() {
    // Bucket 0 is the exact value 0.
    let h = Histogram::new();
    h.record(0);
    h.record(0);
    assert_eq!(h.quantile_interpolated(0.5), 0.0);

    // The overflow bucket has no finite upper bound; the min/max seed
    // pins the estimate to the observed value instead of the bucket's
    // lower bound.
    let h = Histogram::new();
    h.record(u64::MAX);
    assert_eq!(h.quantile_interpolated(0.99), u64::MAX as f64);

    // Without the seed the raw interpolator still reports the overflow
    // bucket's lower bound (no better information available).
    let overflow_lower = Histogram::bucket_lower(HISTOGRAM_BUCKETS - 1) as f64;
    assert_eq!(interpolate_quantile(&h.bucket_counts(), 0.99), Some(overflow_lower));
}

#[test]
fn seeded_quantiles_never_leave_the_observed_range() {
    // Regression for the fleet bench's hist-vs-external p99 mismatch:
    // latencies clustered near the top of a log2 bucket were
    // over-reported by interpolation across the whole bucket. Seeding
    // with the observed min/max tightens the one-bucket bound to the
    // observed range.
    let h = Histogram::new();
    // All samples land in bucket [16_777_216, 33_554_431] but only span
    // 16.9ms..18.9ms — the interpolated p99 used to report ~32ms.
    let (lo, hi) = (16_900_000u64, 18_900_000u64);
    for i in 0..1000u64 {
        h.record(lo + (hi - lo) * i / 999);
    }
    for &q in &[0.0, 0.5, 0.99, 0.999, 1.0] {
        let est = h.quantile_interpolated(q);
        assert!(
            (lo as f64..=hi as f64).contains(&est),
            "q={q}: estimate {est} left observed range [{lo}, {hi}]"
        );
    }
    // The seed must only ever tighten: still within the conservative
    // estimator's bucket bound.
    assert!(h.quantile_interpolated(0.99) <= h.quantile(0.99) as f64);
}

#[test]
fn empty_histogram_quantiles_are_zero() {
    let h = Histogram::new();
    assert_eq!(h.quantile_bucket(0.5), None);
    assert_eq!(h.quantile(0.5), 0);
    assert_eq!(h.quantile(0.99), 0);
    assert_eq!(h.quantile_interpolated(0.5), 0.0);
    assert_eq!(interpolate_quantile(&[0u64; HISTOGRAM_BUCKETS], 0.5), None);
}
