//! Weighted random walks and positive training pairs.
//!
//! BiSAGE trains on pairs of *consecutively visited* nodes from weighted
//! random walks over the bipartite graph (paper Section IV-B): the
//! transition from the current node picks a neighbor with probability
//! proportional to edge weight. Because the graph is bipartite, consecutive
//! nodes always have different types, which is what the bi-level loss
//! (Eq. 8) expects.

use gem_signal::rng::child_rng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::bigraph::{BipartiteGraph, NodeId};

/// Random-walk generation parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalkConfig {
    /// Number of walks started from every node per epoch.
    pub walks_per_node: usize,
    /// Nodes visited per walk (including the start node).
    pub walk_length: usize,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig { walks_per_node: 6, walk_length: 6 }
    }
}

/// A batch of positive `(x, y)` pairs harvested from random walks.
///
/// Pairs are consecutive visits, so `x` and `y` are always of opposite
/// types in a bipartite graph.
#[derive(Clone, Debug, Default)]
pub struct WalkPairs {
    /// The harvested pairs.
    pub pairs: Vec<(NodeId, NodeId)>,
}

impl WalkPairs {
    /// Generates one epoch of weighted walks from every node of the graph
    /// and collects the consecutive-pair stream.
    ///
    /// Walks from different start nodes are independent, so they run in
    /// parallel: one 64-bit value is drawn from `rng` and every start
    /// node derives its own child stream from it by index. The harvested
    /// stream is therefore a pure function of the incoming RNG state —
    /// identical for any thread count — and start nodes are concatenated
    /// in graph order just like the sequential loop did.
    pub fn generate(graph: &BipartiteGraph, cfg: WalkConfig, rng: &mut impl RngExt) -> Self {
        let starts: Vec<NodeId> = graph.nodes().collect();
        let base: u64 = rng.random();
        let per_start: Vec<Vec<(NodeId, NodeId)>> =
            gem_par::par_map_indexed(&starts, |i, &start| {
                let mut rng = child_rng(base, i as u64);
                let mut pairs =
                    Vec::with_capacity(cfg.walks_per_node * cfg.walk_length.saturating_sub(1));
                walk_from(graph, start, cfg, &mut rng, &mut pairs);
                pairs
            });
        let mut pairs = Vec::with_capacity(
            graph.n_nodes() * cfg.walks_per_node * cfg.walk_length.saturating_sub(1),
        );
        for p in per_start {
            pairs.extend(p);
        }
        WalkPairs { pairs }
    }

    /// Generates pairs from walks started only at the given nodes — used
    /// when embedding a few new nodes without re-walking the whole graph.
    pub fn generate_from(
        graph: &BipartiteGraph,
        starts: &[NodeId],
        cfg: WalkConfig,
        rng: &mut impl RngExt,
    ) -> Self {
        let mut pairs = Vec::new();
        for &start in starts {
            walk_from(graph, start, cfg, rng, &mut pairs);
        }
        WalkPairs { pairs }
    }

    /// Number of harvested pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pairs were harvested.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Shuffles the pair order in place (epoch re-randomization).
    pub fn shuffle(&mut self, rng: &mut impl RngExt) {
        // Fisher–Yates; rand's SliceRandom is avoided to keep the trait
        // surface minimal.
        for i in (1..self.pairs.len()).rev() {
            let j = rng.random_range(0..=i);
            self.pairs.swap(i, j);
        }
    }
}

/// Runs all configured walks from one start node, appending the harvested
/// consecutive pairs to `pairs`.
fn walk_from(
    graph: &BipartiteGraph,
    start: NodeId,
    cfg: WalkConfig,
    rng: &mut impl RngExt,
    pairs: &mut Vec<(NodeId, NodeId)>,
) {
    for _ in 0..cfg.walks_per_node {
        let mut cur = start;
        for _ in 1..cfg.walk_length {
            match graph.walk_step(cur, rng) {
                Some(next) => {
                    pairs.push((cur, next));
                    cur = next;
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bigraph::WeightFn;
    use gem_signal::{MacAddr, SignalRecord};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain_graph() -> BipartiteGraph {
        // Two records sharing MAC 3: 1-2-3 and 3-4-5 (the paper's Fig. 3).
        let mut g = BipartiteGraph::new(WeightFn::OffsetLinear { c: 120.0 });
        g.add_record(&SignalRecord::from_pairs(
            0.0,
            [
                (MacAddr::from_raw(1), -50.0),
                (MacAddr::from_raw(2), -60.0),
                (MacAddr::from_raw(3), -70.0),
            ],
        ));
        g.add_record(&SignalRecord::from_pairs(
            1.0,
            [
                (MacAddr::from_raw(3), -55.0),
                (MacAddr::from_raw(4), -65.0),
                (MacAddr::from_raw(5), -75.0),
            ],
        ));
        g
    }

    #[test]
    fn pairs_alternate_types() {
        let g = chain_graph();
        let mut rng = StdRng::seed_from_u64(1);
        let pairs =
            WalkPairs::generate(&g, WalkConfig { walks_per_node: 3, walk_length: 5 }, &mut rng);
        assert!(!pairs.is_empty());
        for &(x, y) in &pairs.pairs {
            assert_ne!(x.is_record(), y.is_record(), "bipartite walk must alternate");
        }
    }

    #[test]
    fn pair_count_upper_bound() {
        let g = chain_graph();
        let cfg = WalkConfig { walks_per_node: 2, walk_length: 4 };
        let mut rng = StdRng::seed_from_u64(2);
        let pairs = WalkPairs::generate(&g, cfg, &mut rng);
        // 7 nodes × 2 walks × 3 transitions max.
        assert!(pairs.len() <= 7 * 2 * 3);
        assert_eq!(pairs.len(), 7 * 2 * 3, "no isolated nodes, all walks complete");
    }

    #[test]
    fn generate_from_only_uses_given_starts() {
        let g = chain_graph();
        let cfg = WalkConfig { walks_per_node: 1, walk_length: 2 };
        let mut rng = StdRng::seed_from_u64(3);
        let start = NodeId::Record(crate::bigraph::RecordId(0));
        let pairs = WalkPairs::generate_from(&g, &[start], cfg, &mut rng);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs.pairs[0].0, start);
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let g = chain_graph();
        let mut rng = StdRng::seed_from_u64(4);
        let mut pairs =
            WalkPairs::generate(&g, WalkConfig { walks_per_node: 2, walk_length: 4 }, &mut rng);
        let mut before = pairs.pairs.clone();
        pairs.shuffle(&mut rng);
        let mut after = pairs.pairs.clone();
        before.sort();
        after.sort();
        assert_eq!(before, after);
    }

    #[test]
    fn walks_on_empty_graph_are_empty() {
        let g = BipartiteGraph::new(WeightFn::default());
        let mut rng = StdRng::seed_from_u64(5);
        let pairs = WalkPairs::generate(&g, WalkConfig::default(), &mut rng);
        assert!(pairs.is_empty());
    }
}
