//! Dynamic weighted bipartite graph over RF signal records.
//!
//! The paper models a collection of WiFi scans as a weighted bipartite graph
//! `G = (U, V, E, w)`: one node per signal record (`U`), one node per sensed
//! MAC address (`V`), and an edge whenever a record heard a MAC, weighted by
//! a positive function of the RSS value (Eq. 1–2 of the paper; the default
//! is `w = RSS + c` with `c = 120` dBm).
//!
//! This crate provides:
//!
//! * [`BipartiteGraph`] — an append-friendly adjacency structure that
//!   supports streaming in new records (and new MACs) at inference time;
//! * [`WeightFn`] — the family of edge-weight functions swept in Fig. 14(d);
//! * weighted neighbor sampling with replacement (the non-uniform sampling
//!   BiSAGE uses for aggregation) backed by per-node prefix sums;
//! * [`walk`] — weighted random walks and the positive-pair stream used by
//!   the BiSAGE loss;
//! * [`negative::NegativeTable`] — the `deg^{3/4}` negative-sampling
//!   distribution, backed by an alias table ([`sampling::AliasTable`]).

pub mod bigraph;
pub mod negative;
pub mod sampling;
pub mod stats;
pub mod walk;

pub use bigraph::{BipartiteGraph, MacId, NodeId, RecordId, WeightFn};
pub use negative::NegativeTable;
pub use sampling::AliasTable;
pub use stats::{graph_stats, GraphStats};
pub use walk::{WalkConfig, WalkPairs};
