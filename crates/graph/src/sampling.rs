//! Walker alias tables for O(1) discrete sampling.
//!
//! Used by the negative-sampling distribution (`deg^{3/4}`), which is drawn
//! from millions of times per training run and whose support spans every
//! node in the graph.

use rand::RngExt;

/// A Walker alias table over `n` outcomes with fixed (unnormalized)
/// non-negative weights. Construction is O(n); sampling is O(1).
///
/// ```
/// use gem_graph::AliasTable;
/// use rand::{SeedableRng, rngs::StdRng};
///
/// let t = AliasTable::new(&[1.0, 3.0]).unwrap();
/// let mut rng = StdRng::seed_from_u64(0);
/// let hits = (0..10_000).filter(|_| t.sample(&mut rng) == 1).count();
/// assert!((hits as f64 / 10_000.0 - 0.75).abs() < 0.02);
/// ```
#[derive(Clone, Debug)]
pub struct AliasTable {
    /// Acceptance probability of the primary outcome in each bucket.
    prob: Vec<f64>,
    /// Fallback outcome of each bucket.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table. Returns `None` when the weights are empty, contain
    /// a negative/NaN entry, or sum to zero.
    pub fn new(weights: &[f64]) -> Option<Self> {
        if weights.is_empty() {
            return None;
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let n = weights.len();
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        // Scaled weights: mean bucket mass is exactly 1.
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = *large.last().expect("checked non-empty");
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers: whatever remains gets probability 1.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        Some(AliasTable { prob, alias })
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no outcomes (never constructed this way).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome index.
    pub fn sample(&self, rng: &mut impl RngExt) -> usize {
        let bucket = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[bucket] {
            bucket
        } else {
            self.alias[bucket] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical(weights: &[f64], draws: usize, seed: u64) -> Vec<f64> {
        let t = AliasTable::new(weights).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[t.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn matches_target_distribution() {
        let weights = [5.0, 1.0, 0.0, 2.0, 2.0];
        let total: f64 = weights.iter().sum();
        let freq = empirical(&weights, 200_000, 42);
        for (i, (&w, &f)) in weights.iter().zip(&freq).enumerate() {
            let expect = w / total;
            assert!((f - expect).abs() < 0.01, "outcome {i}: {f} vs {expect}");
        }
        assert_eq!(freq[2], 0.0, "zero-weight outcome must never appear");
    }

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[3.5]).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn uniform_weights() {
        let freq = empirical(&[1.0; 8], 160_000, 9);
        for f in freq {
            assert!((f - 0.125).abs() < 0.01, "f={f}");
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[1.0, -1.0]).is_none());
        assert!(AliasTable::new(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn len_reports_outcomes() {
        let t = AliasTable::new(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }
}
