//! The weighted bipartite graph structure (paper Section IV-A).

use std::collections::HashMap;

use rand::RngExt;
use serde::{Deserialize, Serialize};

use gem_signal::{MacAddr, SignalRecord};

/// Identifier of a signal-record node (`u ∈ U`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RecordId(pub u32);

/// Identifier of a MAC node (`v ∈ V`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MacId(pub u32);

/// A node of either type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeId {
    /// A signal-record node.
    Record(RecordId),
    /// A MAC-address node.
    Mac(MacId),
}

impl NodeId {
    /// True if this is a record node.
    pub fn is_record(self) -> bool {
        matches!(self, NodeId::Record(_))
    }
}

/// Edge-weight function `w = f(RSS)` (paper Eq. 1).
///
/// The paper's default (Eq. 2) is the linear offset `RSS + c` with
/// `c > max |RSS|`; Fig. 14(d) sweeps alternatives, which we model as this
/// enum. All variants return strictly positive weights for RSS values in
/// the physical range.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum WeightFn {
    /// `w = RSS + c` (the paper's Eq. 2; default `c = 120`).
    OffsetLinear {
        /// Offset in dB, must exceed the magnitude of any RSS.
        c: f32,
    },
    /// `w = 10^(RSS / scale)` — proportional to received power when
    /// `scale = 10`; compresses to milder ratios for larger scales.
    Exponential {
        /// Denominator in the exponent, in dB.
        scale: f32,
    },
    /// `w = 1` for every edge — ignores RSS magnitudes entirely
    /// (presence-only ablation).
    Unit,
}

impl Default for WeightFn {
    fn default() -> Self {
        WeightFn::OffsetLinear { c: 120.0 }
    }
}

impl WeightFn {
    /// Minimum weight produced, guarding `f(RSS) > 0` even for readings
    /// below the nominal floor.
    pub const MIN_WEIGHT: f32 = 1e-3;

    /// Evaluates the weight function on an RSS value in dBm.
    pub fn weight(self, rssi: f32) -> f32 {
        let w = match self {
            WeightFn::OffsetLinear { c } => rssi + c,
            WeightFn::Exponential { scale } => 10.0f32.powf(rssi / scale),
            WeightFn::Unit => 1.0,
        };
        w.max(Self::MIN_WEIGHT)
    }
}

/// Adjacency list of one node with an appended prefix-sum for O(log deg)
/// weighted sampling. Edges are append-only, so the prefix sum extends in
/// O(1) per new edge.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct Adjacency {
    /// `(neighbor index, edge weight)` pairs in insertion order.
    nbrs: Vec<(u32, f32)>,
    /// `cumw[i]` = sum of weights of `nbrs[..=i]`.
    cumw: Vec<f64>,
}

impl Adjacency {
    fn push(&mut self, target: u32, weight: f32) {
        let prev = self.cumw.last().copied().unwrap_or(0.0);
        self.nbrs.push((target, weight));
        self.cumw.push(prev + weight as f64);
    }

    fn total_weight(&self) -> f64 {
        self.cumw.last().copied().unwrap_or(0.0)
    }

    /// Samples one neighbor index proportionally to edge weight.
    fn sample(&self, rng: &mut impl RngExt) -> Option<(u32, f32)> {
        let total = self.total_weight();
        if total <= 0.0 || self.nbrs.is_empty() {
            return None;
        }
        let target = rng.random::<f64>() * total;
        let idx = self.cumw.partition_point(|&c| c <= target).min(self.nbrs.len() - 1);
        Some(self.nbrs[idx])
    }
}

/// The dynamic weighted bipartite graph of paper Section IV-A.
///
/// Records and MACs are interned into dense `u32` id spaces. New records
/// (and previously unseen MACs) can be appended at any time, which is how
/// GEM supports streaming inference (Section V-A).
///
/// ```
/// use gem_graph::{BipartiteGraph, WeightFn};
/// use gem_signal::{MacAddr, SignalRecord};
///
/// let mut g = BipartiteGraph::new(WeightFn::default());
/// let rec = SignalRecord::from_pairs(0.0, [
///     (MacAddr::from_raw(1), -50.0),
///     (MacAddr::from_raw(2), -70.0),
/// ]);
/// let r = g.add_record(&rec);
/// assert_eq!(g.record_neighbors(r).len(), 2);
/// assert_eq!(g.n_macs(), 2);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BipartiteGraph {
    weight_fn: WeightFn,
    mac_index: HashMap<MacAddr, MacId>,
    macs: Vec<MacAddr>,
    record_adj: Vec<Adjacency>,
    mac_adj: Vec<Adjacency>,
    n_edges: usize,
}

impl BipartiteGraph {
    /// Creates an empty graph with the given edge-weight function.
    pub fn new(weight_fn: WeightFn) -> Self {
        BipartiteGraph {
            weight_fn,
            mac_index: HashMap::new(),
            macs: Vec::new(),
            record_adj: Vec::new(),
            mac_adj: Vec::new(),
            n_edges: 0,
        }
    }

    /// Builds a graph from an initial training batch.
    pub fn from_records<'a>(
        weight_fn: WeightFn,
        records: impl IntoIterator<Item = &'a SignalRecord>,
    ) -> Self {
        let mut g = BipartiteGraph::new(weight_fn);
        for rec in records {
            g.add_record(rec);
        }
        g
    }

    /// The configured weight function.
    pub fn weight_fn(&self) -> WeightFn {
        self.weight_fn
    }

    /// Number of record nodes (`|U|`).
    pub fn n_records(&self) -> usize {
        self.record_adj.len()
    }

    /// Number of MAC nodes (`|V|`).
    pub fn n_macs(&self) -> usize {
        self.mac_adj.len()
    }

    /// Total number of edges.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Looks up the node id of a MAC address, if it has been seen.
    pub fn mac_id(&self, mac: MacAddr) -> Option<MacId> {
        self.mac_index.get(&mac).copied()
    }

    /// The MAC address behind a MAC node id.
    pub fn mac_addr(&self, id: MacId) -> MacAddr {
        self.macs[id.0 as usize]
    }

    /// Interns a MAC address, creating its node on first sight.
    pub fn intern_mac(&mut self, mac: MacAddr) -> MacId {
        if let Some(&id) = self.mac_index.get(&mac) {
            return id;
        }
        let id = MacId(self.mac_adj.len() as u32);
        self.mac_index.insert(mac, id);
        self.macs.push(mac);
        self.mac_adj.push(Adjacency::default());
        id
    }

    /// Adds a signal record as a new `U` node, creating MAC nodes and
    /// weighted edges per Eq. 1–2. Returns the new record id.
    pub fn add_record(&mut self, record: &SignalRecord) -> RecordId {
        let rid = RecordId(self.record_adj.len() as u32);
        let mut adj = Adjacency::default();
        for reading in &record.readings {
            let mid = self.intern_mac(reading.mac);
            let w = self.weight_fn.weight(reading.rssi);
            adj.push(mid.0, w);
            self.mac_adj[mid.0 as usize].push(rid.0, w);
            self.n_edges += 1;
        }
        self.record_adj.push(adj);
        rid
    }

    /// True when at least one MAC in the record has been seen before.
    /// Records failing this test are treated as outliers outright (paper
    /// Section V-A, footnote 3).
    pub fn has_known_mac(&self, record: &SignalRecord) -> bool {
        record.macs().any(|m| self.mac_index.contains_key(&m))
    }

    /// Neighbors (MAC side) of a record node with edge weights.
    pub fn record_neighbors(
        &self,
        r: RecordId,
    ) -> impl ExactSizeIterator<Item = (MacId, f32)> + '_ {
        self.record_adj[r.0 as usize].nbrs.iter().map(|&(t, w)| (MacId(t), w))
    }

    /// Neighbors (record side) of a MAC node with edge weights.
    pub fn mac_neighbors(&self, m: MacId) -> impl ExactSizeIterator<Item = (RecordId, f32)> + '_ {
        self.mac_adj[m.0 as usize].nbrs.iter().map(|&(t, w)| (RecordId(t), w))
    }

    /// Degree of a node.
    pub fn degree(&self, node: NodeId) -> usize {
        match node {
            NodeId::Record(r) => self.record_adj[r.0 as usize].nbrs.len(),
            NodeId::Mac(m) => self.mac_adj[m.0 as usize].nbrs.len(),
        }
    }

    /// Sum of edge weights incident to a node.
    pub fn weight_sum(&self, node: NodeId) -> f64 {
        match node {
            NodeId::Record(r) => self.record_adj[r.0 as usize].total_weight(),
            NodeId::Mac(m) => self.mac_adj[m.0 as usize].total_weight(),
        }
    }

    /// Samples `k` neighbors of `node` *with replacement*, each drawn with
    /// probability proportional to its edge weight (the paper's non-uniform
    /// neighborhood sampling, `Pr(v) = w_uv / Σ w_uv'`). Returns
    /// `(neighbor, edge weight)` pairs; empty if the node is isolated.
    pub fn sample_neighbors(
        &self,
        node: NodeId,
        k: usize,
        rng: &mut impl RngExt,
    ) -> Vec<(NodeId, f32)> {
        let mut out = Vec::with_capacity(k);
        self.sample_neighbors_into(node, k, rng, &mut out);
        out
    }

    /// [`BipartiteGraph::sample_neighbors`], appending into a caller-owned
    /// buffer (the training hot loop reuses one buffer across nodes).
    /// Consumes exactly the same RNG stream as the allocating variant.
    pub fn sample_neighbors_into(
        &self,
        node: NodeId,
        k: usize,
        rng: &mut impl RngExt,
        out: &mut Vec<(NodeId, f32)>,
    ) {
        let adj = match node {
            NodeId::Record(r) => &self.record_adj[r.0 as usize],
            NodeId::Mac(m) => &self.mac_adj[m.0 as usize],
        };
        for _ in 0..k {
            match adj.sample(rng) {
                Some((t, w)) => out.push((
                    match node {
                        NodeId::Record(_) => NodeId::Mac(MacId(t)),
                        NodeId::Mac(_) => NodeId::Record(RecordId(t)),
                    },
                    w,
                )),
                None => break,
            }
        }
    }

    /// Samples `k` neighbors *uniformly* with replacement (the GraphSAGE
    /// baseline's sampling rule).
    pub fn sample_neighbors_uniform(
        &self,
        node: NodeId,
        k: usize,
        rng: &mut impl RngExt,
    ) -> Vec<(NodeId, f32)> {
        let mut out = Vec::with_capacity(k);
        self.sample_neighbors_uniform_into(node, k, rng, &mut out);
        out
    }

    /// [`BipartiteGraph::sample_neighbors_uniform`], appending into a
    /// caller-owned buffer. Consumes exactly the same RNG stream as the
    /// allocating variant.
    pub fn sample_neighbors_uniform_into(
        &self,
        node: NodeId,
        k: usize,
        rng: &mut impl RngExt,
        out: &mut Vec<(NodeId, f32)>,
    ) {
        let adj = match node {
            NodeId::Record(r) => &self.record_adj[r.0 as usize],
            NodeId::Mac(m) => &self.mac_adj[m.0 as usize],
        };
        if adj.nbrs.is_empty() {
            return;
        }
        out.extend((0..k).map(|_| {
            let (t, w) = adj.nbrs[rng.random_range(0..adj.nbrs.len())];
            (
                match node {
                    NodeId::Record(_) => NodeId::Mac(MacId(t)),
                    NodeId::Mac(_) => NodeId::Record(RecordId(t)),
                },
                w,
            )
        }));
    }

    /// One weighted random-walk transition from `node` (paper Section IV-B:
    /// transition probability proportional to edge weight). `None` if the
    /// node is isolated.
    pub fn walk_step(&self, node: NodeId, rng: &mut impl RngExt) -> Option<NodeId> {
        self.sample_neighbors(node, 1, rng).pop().map(|(n, _)| n)
    }

    /// Iterates every node id, records first then MACs.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        let recs = (0..self.n_records() as u32).map(|i| NodeId::Record(RecordId(i)));
        let macs = (0..self.n_macs() as u32).map(|i| NodeId::Mac(MacId(i)));
        recs.chain(macs)
    }

    /// Total node count (`|U| + |V|`).
    pub fn n_nodes(&self) -> usize {
        self.n_records() + self.n_macs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mac(i: u64) -> MacAddr {
        MacAddr::from_raw(i)
    }

    fn rec(pairs: &[(u64, f32)]) -> SignalRecord {
        SignalRecord::from_pairs(0.0, pairs.iter().map(|&(m, r)| (mac(m), r)))
    }

    #[test]
    fn weight_fn_is_positive() {
        for f in [
            WeightFn::OffsetLinear { c: 120.0 },
            WeightFn::Exponential { scale: 30.0 },
            WeightFn::Unit,
        ] {
            for rssi in [-130.0f32, -95.0, -50.0, -20.0] {
                assert!(f.weight(rssi) > 0.0, "{f:?} at {rssi}");
            }
        }
    }

    #[test]
    fn offset_linear_matches_paper_eq2() {
        let f = WeightFn::OffsetLinear { c: 120.0 };
        assert!((f.weight(-70.0) - 50.0).abs() < 1e-6);
        assert!((f.weight(-20.0) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn add_record_builds_bipartite_structure() {
        let mut g = BipartiteGraph::new(WeightFn::default());
        let r1 = g.add_record(&rec(&[(1, -50.0), (2, -60.0), (3, -70.0)]));
        let r2 = g.add_record(&rec(&[(3, -65.0), (4, -75.0), (5, -85.0)]));
        assert_eq!(g.n_records(), 2);
        assert_eq!(g.n_macs(), 5);
        assert_eq!(g.n_edges(), 6);
        assert_eq!(g.record_neighbors(r1).len(), 3);
        assert_eq!(g.record_neighbors(r2).len(), 3);
        // MAC 3 is shared between both records — the "carrier" of relevance.
        let m3 = g.mac_id(mac(3)).unwrap();
        let nbrs: Vec<_> = g.mac_neighbors(m3).map(|(r, _)| r).collect();
        assert_eq!(nbrs, vec![r1, r2]);
    }

    #[test]
    fn degrees_and_weight_sums() {
        let mut g = BipartiteGraph::new(WeightFn::OffsetLinear { c: 120.0 });
        let r = g.add_record(&rec(&[(1, -70.0), (2, -20.0)]));
        assert_eq!(g.degree(NodeId::Record(r)), 2);
        assert!((g.weight_sum(NodeId::Record(r)) - 150.0).abs() < 1e-4);
        let m1 = g.mac_id(mac(1)).unwrap();
        assert_eq!(g.degree(NodeId::Mac(m1)), 1);
        assert!((g.weight_sum(NodeId::Mac(m1)) - 50.0).abs() < 1e-4);
    }

    #[test]
    fn has_known_mac_rule() {
        let mut g = BipartiteGraph::new(WeightFn::default());
        g.add_record(&rec(&[(1, -50.0)]));
        assert!(g.has_known_mac(&rec(&[(1, -80.0), (9, -40.0)])));
        assert!(!g.has_known_mac(&rec(&[(8, -80.0), (9, -40.0)])));
        assert!(!g.has_known_mac(&rec(&[])));
    }

    #[test]
    fn weighted_sampling_tracks_edge_weights() {
        // One record hears MAC 1 strongly and MAC 2 barely:
        // weights 100 vs 25 → sampling ratio ≈ 4.
        let mut g = BipartiteGraph::new(WeightFn::OffsetLinear { c: 120.0 });
        let r = g.add_record(&rec(&[(1, -20.0), (2, -95.0)]));
        let mut rng = StdRng::seed_from_u64(11);
        let samples = g.sample_neighbors(NodeId::Record(r), 40_000, &mut rng);
        let m1 = g.mac_id(mac(1)).unwrap();
        let c1 = samples.iter().filter(|(n, _)| *n == NodeId::Mac(m1)).count();
        let ratio = c1 as f64 / (samples.len() - c1) as f64;
        assert!((ratio - 4.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn uniform_sampling_ignores_weights() {
        let mut g = BipartiteGraph::new(WeightFn::OffsetLinear { c: 120.0 });
        let r = g.add_record(&rec(&[(1, -20.0), (2, -95.0)]));
        let mut rng = StdRng::seed_from_u64(13);
        let samples = g.sample_neighbors_uniform(NodeId::Record(r), 40_000, &mut rng);
        let m1 = g.mac_id(mac(1)).unwrap();
        let c1 = samples.iter().filter(|(n, _)| *n == NodeId::Mac(m1)).count();
        let frac = c1 as f64 / samples.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn sampling_isolated_node_is_empty() {
        let mut g = BipartiteGraph::new(WeightFn::default());
        let r = g.add_record(&rec(&[]));
        let mut rng = StdRng::seed_from_u64(1);
        assert!(g.sample_neighbors(NodeId::Record(r), 5, &mut rng).is_empty());
        assert!(g.sample_neighbors_uniform(NodeId::Record(r), 5, &mut rng).is_empty());
        assert!(g.walk_step(NodeId::Record(r), &mut rng).is_none());
    }

    #[test]
    fn nodes_enumerates_both_sides() {
        let mut g = BipartiteGraph::new(WeightFn::default());
        g.add_record(&rec(&[(1, -50.0), (2, -60.0)]));
        let nodes: Vec<_> = g.nodes().collect();
        assert_eq!(nodes.len(), 3);
        assert_eq!(nodes.iter().filter(|n| n.is_record()).count(), 1);
        assert_eq!(g.n_nodes(), 3);
    }

    #[test]
    fn interning_is_stable_across_records() {
        let mut g = BipartiteGraph::new(WeightFn::default());
        g.add_record(&rec(&[(42, -50.0)]));
        let id1 = g.mac_id(mac(42)).unwrap();
        g.add_record(&rec(&[(42, -60.0), (43, -70.0)]));
        assert_eq!(g.mac_id(mac(42)).unwrap(), id1);
        assert_eq!(g.mac_addr(id1), mac(42));
    }

    #[test]
    fn walk_step_moves_to_other_side() {
        let mut g = BipartiteGraph::new(WeightFn::default());
        let r = g.add_record(&rec(&[(1, -50.0)]));
        let mut rng = StdRng::seed_from_u64(5);
        let next = g.walk_step(NodeId::Record(r), &mut rng).unwrap();
        assert!(matches!(next, NodeId::Mac(_)));
        let back = g.walk_step(next, &mut rng).unwrap();
        assert_eq!(back, NodeId::Record(r));
    }
}
