//! Negative-sampling distribution over graph nodes.
//!
//! The BiSAGE loss (paper Eq. 8) draws `K_N` negative nodes `z` per positive
//! pair with `Pr(z) ∝ deg_z^{3/4}`, the word2vec/GraphSAGE convention. The
//! table snapshots the graph's degrees at build time; rebuild it after
//! large batches of insertions.

use rand::RngExt;

use crate::bigraph::{BipartiteGraph, MacId, NodeId, RecordId};
use crate::sampling::AliasTable;

/// Alias-backed sampler for `Pr(z) ∝ deg_z^{3/4}` over all nodes `U ∪ V`.
#[derive(Clone, Debug)]
pub struct NegativeTable {
    nodes: Vec<NodeId>,
    table: AliasTable,
}

impl NegativeTable {
    /// Builds the table from the graph's current degrees, raising each to
    /// `power` (the paper uses 3/4). Nodes with zero degree are excluded.
    /// Returns `None` when the graph has no edges at all.
    pub fn build(graph: &BipartiteGraph, power: f64) -> Option<Self> {
        Self::build_filtered(graph, power, |_| true)
    }

    /// Like [`NegativeTable::build`], restricted to nodes accepted by the
    /// predicate (e.g. one side of the bipartite graph).
    pub fn build_filtered(
        graph: &BipartiteGraph,
        power: f64,
        keep: impl Fn(NodeId) -> bool,
    ) -> Option<Self> {
        let mut nodes = Vec::with_capacity(graph.n_nodes());
        let mut weights = Vec::with_capacity(graph.n_nodes());
        for node in graph.nodes() {
            let deg = graph.degree(node);
            if deg > 0 && keep(node) {
                nodes.push(node);
                weights.push((deg as f64).powf(power));
            }
        }
        let table = AliasTable::new(&weights)?;
        Some(NegativeTable { nodes, table })
    }

    /// Draws one negative node.
    pub fn sample(&self, rng: &mut impl RngExt) -> NodeId {
        self.nodes[self.table.sample(rng)]
    }

    /// Draws one negative node distinct from both `x` and `y`, retrying a
    /// bounded number of times (falls back to whatever was drawn last if
    /// the graph is tiny).
    pub fn sample_excluding(&self, x: NodeId, y: NodeId, rng: &mut impl RngExt) -> NodeId {
        let mut z = self.sample(rng);
        for _ in 0..16 {
            if z != x && z != y {
                break;
            }
            z = self.sample(rng);
        }
        z
    }

    /// Number of sampleable nodes.
    pub fn support(&self) -> usize {
        self.nodes.len()
    }

    /// Convenience accessors for type-specific sampling diagnostics.
    pub fn records(&self) -> impl Iterator<Item = RecordId> + '_ {
        self.nodes.iter().filter_map(|n| match n {
            NodeId::Record(r) => Some(*r),
            NodeId::Mac(_) => None,
        })
    }

    /// MAC nodes in the support.
    pub fn macs(&self) -> impl Iterator<Item = MacId> + '_ {
        self.nodes.iter().filter_map(|n| match n {
            NodeId::Mac(m) => Some(*m),
            NodeId::Record(_) => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bigraph::WeightFn;
    use gem_signal::{MacAddr, SignalRecord};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn graph() -> BipartiteGraph {
        let mut g = BipartiteGraph::new(WeightFn::default());
        // MAC 1 appears in 4 records, MAC 2 in 1 → degree skew.
        for i in 0..4 {
            let mut pairs = vec![(MacAddr::from_raw(1), -50.0)];
            if i == 0 {
                pairs.push((MacAddr::from_raw(2), -60.0));
            }
            g.add_record(&SignalRecord::from_pairs(i as f64, pairs));
        }
        g
    }

    #[test]
    fn frequencies_follow_degree_power() {
        let g = graph();
        let table = NegativeTable::build(&g, 0.75).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let mut counts: HashMap<NodeId, usize> = HashMap::new();
        let draws = 300_000;
        for _ in 0..draws {
            *counts.entry(table.sample(&mut rng)).or_default() += 1;
        }
        let m1 = NodeId::Mac(g.mac_id(MacAddr::from_raw(1)).unwrap());
        let m2 = NodeId::Mac(g.mac_id(MacAddr::from_raw(2)).unwrap());
        let ratio = counts[&m1] as f64 / counts[&m2] as f64;
        let expect = 4.0f64.powf(0.75); // deg 4 vs deg 1
        assert!((ratio - expect).abs() < 0.2, "ratio {ratio} vs {expect}");
    }

    #[test]
    fn excludes_given_nodes_when_possible() {
        let g = graph();
        let table = NegativeTable::build(&g, 0.75).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let x = NodeId::Record(RecordId(0));
        let y = NodeId::Mac(g.mac_id(MacAddr::from_raw(1)).unwrap());
        for _ in 0..200 {
            let z = table.sample_excluding(x, y, &mut rng);
            assert_ne!(z, x);
            assert_ne!(z, y);
        }
    }

    #[test]
    fn empty_graph_has_no_table() {
        let g = BipartiteGraph::new(WeightFn::default());
        assert!(NegativeTable::build(&g, 0.75).is_none());
    }

    #[test]
    fn support_counts_both_sides() {
        let g = graph();
        let table = NegativeTable::build(&g, 0.75).unwrap();
        assert_eq!(table.support(), 6); // 4 records + 2 MACs
        assert_eq!(table.records().count(), 4);
        assert_eq!(table.macs().count(), 2);
    }
}
