//! Graph diagnostics: connectivity and degree statistics.
//!
//! A healthy GEM training graph is (nearly) one connected component —
//! random walks cannot carry information across components, so a
//! fragmented graph means fragmented embeddings. These diagnostics are
//! cheap enough to run at fit time.

use serde::Serialize;

use crate::bigraph::{BipartiteGraph, MacId, NodeId, RecordId};

/// Summary statistics of a bipartite graph.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct GraphStats {
    /// Record nodes.
    pub n_records: usize,
    /// MAC nodes.
    pub n_macs: usize,
    /// Edges.
    pub n_edges: usize,
    /// Connected components (isolated nodes each count as one).
    pub n_components: usize,
    /// Nodes in the largest component.
    pub largest_component: usize,
    /// Mean record degree.
    pub mean_record_degree: f64,
    /// Mean MAC degree.
    pub mean_mac_degree: f64,
    /// Maximum MAC degree (the most widely heard transceiver).
    pub max_mac_degree: usize,
    /// Nodes with no edges at all.
    pub isolated_nodes: usize,
}

/// Computes summary statistics (BFS over the whole graph; O(V + E)).
pub fn graph_stats(graph: &BipartiteGraph) -> GraphStats {
    let n_records = graph.n_records();
    let n_macs = graph.n_macs();

    let index = |node: NodeId| -> usize {
        match node {
            NodeId::Record(r) => r.0 as usize,
            NodeId::Mac(m) => n_records + m.0 as usize,
        }
    };
    let total = n_records + n_macs;
    let mut visited = vec![false; total];
    let mut n_components = 0usize;
    let mut largest_component = 0usize;
    let mut isolated_nodes = 0usize;

    for start in graph.nodes() {
        if visited[index(start)] {
            continue;
        }
        n_components += 1;
        // BFS.
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        visited[index(start)] = true;
        let mut size = 0usize;
        while let Some(node) = queue.pop_front() {
            size += 1;
            let neighbors: Vec<NodeId> = match node {
                NodeId::Record(r) => {
                    graph.record_neighbors(r).map(|(m, _)| NodeId::Mac(m)).collect()
                }
                NodeId::Mac(m) => graph.mac_neighbors(m).map(|(r, _)| NodeId::Record(r)).collect(),
            };
            for nbr in neighbors {
                if !visited[index(nbr)] {
                    visited[index(nbr)] = true;
                    queue.push_back(nbr);
                }
            }
        }
        largest_component = largest_component.max(size);
        if size == 1 {
            isolated_nodes += 1;
        }
    }

    let record_deg_sum: usize =
        (0..n_records as u32).map(|r| graph.degree(NodeId::Record(RecordId(r)))).sum();
    let mac_degs: Vec<usize> =
        (0..n_macs as u32).map(|m| graph.degree(NodeId::Mac(MacId(m)))).collect();

    GraphStats {
        n_records,
        n_macs,
        n_edges: graph.n_edges(),
        n_components,
        largest_component,
        mean_record_degree: record_deg_sum as f64 / n_records.max(1) as f64,
        mean_mac_degree: mac_degs.iter().sum::<usize>() as f64 / n_macs.max(1) as f64,
        max_mac_degree: mac_degs.into_iter().max().unwrap_or(0),
        isolated_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bigraph::WeightFn;
    use gem_signal::{MacAddr, SignalRecord};

    fn mac(i: u64) -> MacAddr {
        MacAddr::from_raw(i)
    }

    fn rec(pairs: &[(u64, f32)]) -> SignalRecord {
        SignalRecord::from_pairs(0.0, pairs.iter().map(|&(m, r)| (mac(m), r)))
    }

    #[test]
    fn single_component_graph() {
        let mut g = BipartiteGraph::new(WeightFn::default());
        g.add_record(&rec(&[(1, -50.0), (2, -60.0)]));
        g.add_record(&rec(&[(2, -55.0), (3, -65.0)]));
        let s = graph_stats(&g);
        assert_eq!(s.n_components, 1);
        assert_eq!(s.largest_component, 5); // 2 records + 3 MACs
        assert_eq!(s.isolated_nodes, 0);
        assert_eq!(s.n_edges, 4);
        assert!((s.mean_record_degree - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_fragmentation() {
        let mut g = BipartiteGraph::new(WeightFn::default());
        g.add_record(&rec(&[(1, -50.0)]));
        g.add_record(&rec(&[(2, -50.0)])); // disjoint MAC → second component
        let s = graph_stats(&g);
        assert_eq!(s.n_components, 2);
        assert_eq!(s.largest_component, 2);
    }

    #[test]
    fn counts_isolated_nodes() {
        let mut g = BipartiteGraph::new(WeightFn::default());
        g.add_record(&rec(&[(1, -50.0)]));
        g.add_record(&rec(&[])); // empty scan → isolated record node
        let s = graph_stats(&g);
        assert_eq!(s.isolated_nodes, 1);
        assert_eq!(s.n_components, 2);
    }

    #[test]
    fn mac_degree_statistics() {
        let mut g = BipartiteGraph::new(WeightFn::default());
        for _ in 0..5 {
            g.add_record(&rec(&[(1, -50.0)]));
        }
        g.add_record(&rec(&[(2, -50.0), (1, -60.0)]));
        let s = graph_stats(&g);
        assert_eq!(s.max_mac_degree, 6);
        assert!((s.mean_mac_degree - 3.5).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(WeightFn::default());
        let s = graph_stats(&g);
        assert_eq!(s.n_components, 0);
        assert_eq!(s.largest_component, 0);
        assert_eq!(s.mean_record_degree, 0.0);
    }
}
