//! Property-based tests for the graph substrate, including distributional
//! checks on the weighted samplers.

use proptest::prelude::*;

use gem_graph::{AliasTable, BipartiteGraph, NegativeTable, NodeId, RecordId, WeightFn};
use gem_signal::rng::child_rng;
use gem_signal::{MacAddr, SignalRecord};

fn records_strategy() -> impl Strategy<Value = Vec<SignalRecord>> {
    prop::collection::vec(prop::collection::vec((0u64..15, -100.0f32..-20.0), 1..6), 1..25)
        .prop_map(|records| {
            records
                .into_iter()
                .enumerate()
                .map(|(i, pairs)| {
                    SignalRecord::from_pairs(
                        i as f64,
                        pairs.into_iter().map(|(m, r)| (MacAddr::from_raw(m), r)),
                    )
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Edge weights computed through any weight function are positive and
    /// finite for all physical RSS values.
    #[test]
    fn weight_functions_are_positive(rssi in -120.0f32..0.0) {
        for wf in [
            WeightFn::OffsetLinear { c: 120.0 },
            WeightFn::Exponential { scale: 20.0 },
            WeightFn::Unit,
        ] {
            let w = wf.weight(rssi);
            prop_assert!(w > 0.0 && w.is_finite());
        }
    }

    /// Sampling with replacement returns only true neighbors.
    #[test]
    fn sampled_neighbors_are_real_neighbors(records in records_strategy(), seed in 0u64..500) {
        let g = BipartiteGraph::from_records(WeightFn::default(), records.iter());
        let mut rng = child_rng(seed, 0);
        for r in 0..g.n_records() as u32 {
            let rid = RecordId(r);
            let true_neighbors: Vec<NodeId> =
                g.record_neighbors(rid).map(|(m, _)| NodeId::Mac(m)).collect();
            for (nbr, w) in g.sample_neighbors(NodeId::Record(rid), 4, &mut rng) {
                prop_assert!(true_neighbors.contains(&nbr));
                prop_assert!(w > 0.0);
            }
        }
    }

    /// The alias table's empirical distribution matches its weights
    /// (chi-square-ish bound on each cell).
    #[test]
    fn alias_table_distribution(weights in prop::collection::vec(0.5f64..8.0, 2..10), seed in 0u64..100) {
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = child_rng(seed, 1);
        let draws = 30_000;
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, (&w, &c)) in weights.iter().zip(&counts).enumerate() {
            let expect = w / total;
            let got = c as f64 / draws as f64;
            // 5σ bound on a binomial proportion.
            let sigma = (expect * (1.0 - expect) / draws as f64).sqrt();
            prop_assert!(
                (got - expect).abs() < 5.0 * sigma + 0.005,
                "cell {i}: got {got:.4} expected {expect:.4}"
            );
        }
    }

    /// Filtered negative tables only produce accepted nodes.
    #[test]
    fn filtered_negative_table_respects_predicate(records in records_strategy(), seed in 0u64..100) {
        let g = BipartiteGraph::from_records(WeightFn::default(), records.iter());
        if let Some(table) = NegativeTable::build_filtered(&g, 0.75, |n| n.is_record()) {
            let mut rng = child_rng(seed, 2);
            for _ in 0..50 {
                prop_assert!(table.sample(&mut rng).is_record());
            }
        }
        if let Some(table) = NegativeTable::build_filtered(&g, 0.75, |n| !n.is_record()) {
            let mut rng = child_rng(seed, 3);
            for _ in 0..50 {
                prop_assert!(!table.sample(&mut rng).is_record());
            }
        }
    }

    /// Streaming insertion commutes with batch construction.
    #[test]
    fn incremental_equals_batch_construction(records in records_strategy()) {
        let batch = BipartiteGraph::from_records(WeightFn::default(), records.iter());
        let mut inc = BipartiteGraph::new(WeightFn::default());
        for r in &records {
            inc.add_record(r);
        }
        prop_assert_eq!(batch.n_records(), inc.n_records());
        prop_assert_eq!(batch.n_macs(), inc.n_macs());
        prop_assert_eq!(batch.n_edges(), inc.n_edges());
        for r in 0..batch.n_records() as u32 {
            let a: Vec<_> = batch.record_neighbors(RecordId(r)).collect();
            let b: Vec<_> = inc.record_neighbors(RecordId(r)).collect();
            prop_assert_eq!(a, b);
        }
    }
}
