//! Property-based tests for the signal vocabulary types.

use proptest::prelude::*;

use gem_signal::{MacAddr, RecordSet, SignalRecord};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mac_display_parse_roundtrip(raw in 0u64..=MacAddr::MASK) {
        let mac = MacAddr::from_raw(raw);
        let parsed: MacAddr = mac.to_string().parse().unwrap();
        prop_assert_eq!(parsed, mac);
    }

    #[test]
    fn mac_octet_roundtrip(octets in prop::array::uniform6(any::<u8>())) {
        let mac = MacAddr::from_octets(octets);
        prop_assert_eq!(mac.octets(), octets);
    }

    #[test]
    fn record_push_keeps_strongest(
        readings in prop::collection::vec((0u64..5, -100.0f32..-20.0), 1..20),
    ) {
        let mut rec = SignalRecord::new(0.0);
        for &(m, r) in &readings {
            rec.push(MacAddr::from_raw(m), r);
        }
        // At most one reading per MAC, and it is the maximum seen.
        prop_assert!(rec.len() <= 5);
        for reading in &rec.readings {
            let best = readings
                .iter()
                .filter(|(m, _)| MacAddr::from_raw(*m) == reading.mac)
                .map(|&(_, r)| r)
                .fold(f32::NEG_INFINITY, f32::max);
            prop_assert_eq!(reading.rssi, best);
        }
    }

    #[test]
    fn chunks_partition_and_preserve_order(
        n in 1usize..50,
        k in 1usize..10,
    ) {
        let rs: RecordSet = (0..n)
            .map(|i| SignalRecord::from_pairs(i as f64, [(MacAddr::from_raw(1), -50.0)]))
            .collect();
        let chunks = rs.chunks(k);
        prop_assert_eq!(chunks.len(), k);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, n);
        // Re-concatenation reproduces the original order.
        let mut rebuilt = Vec::new();
        for c in &chunks {
            rebuilt.extend(c.records().iter().cloned());
        }
        prop_assert_eq!(rebuilt, rs.records().to_vec());
        // Sizes are balanced within one.
        let min = chunks.iter().map(|c| c.len()).min().unwrap();
        let max = chunks.iter().map(|c| c.len()).max().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn rss_stats_mean_is_bounded_by_extremes(
        readings in prop::collection::vec((0u64..30, -100.0f32..-20.0), 1..40),
    ) {
        let rec = SignalRecord::from_pairs(
            0.0,
            readings.iter().map(|&(m, r)| (MacAddr::from_raw(m), r)),
        );
        let rs = RecordSet::from_records(vec![rec]);
        let stats = rs.rss_stats();
        prop_assert!(stats.mean_dbm <= -20.0 + 1e-6);
        prop_assert!(stats.mean_dbm >= -100.0 - 1e-6);
        prop_assert!(stats.sd_dbm >= 0.0);
    }
}
