//! Deterministic random-number utilities shared across the workspace.
//!
//! The offline `rand` crate ships uniform sampling only; Gaussian variates
//! (shadow fading, measurement noise, embedding initialization) and
//! stream-splitting helpers are provided here so every crate draws from the
//! same, seed-reproducible implementations.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Draws a standard normal variate using the Box–Muller transform.
///
/// One of the two generated variates is discarded for simplicity; the
/// generator is cheap enough that caching the spare is not worth the state.
pub fn gaussian(rng: &mut impl RngExt) -> f64 {
    // Guard against log(0): sample u1 from the half-open (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws a normal variate with the given mean and standard deviation.
pub fn normal(rng: &mut impl RngExt, mean: f64, sd: f64) -> f64 {
    mean + sd * gaussian(rng)
}

/// Derives an independent child RNG from a base seed and a stream tag.
///
/// Experiments that fan out over users/runs derive one child per unit of
/// work so that adding or reordering work does not perturb other streams.
pub fn child_rng(base_seed: u64, stream: u64) -> StdRng {
    // SplitMix64 mixing of (seed, stream) into a fresh 64-bit seed.
    let mut z = base_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream)
        .wrapping_add(0x2545_F491_4F6C_DD1D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

/// Samples an index from an (unnormalized) non-negative weight slice.
///
/// Panics if the weights are empty or sum to a non-positive value.
pub fn weighted_index(rng: &mut impl RngExt, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weighted_index: empty weights");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weighted_index: non-positive total weight");
    let mut target = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = gaussian(&mut rng);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean_target = -70.0;
        let sd_target = 8.0;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += normal(&mut rng, mean_target, sd_target);
        }
        assert!((sum / n as f64 - mean_target).abs() < 0.3);
    }

    #[test]
    fn child_rngs_are_deterministic_and_distinct() {
        let a: f64 = child_rng(1, 0).random();
        let a2: f64 = child_rng(1, 0).random();
        let b: f64 = child_rng(1, 1).random();
        let c: f64 = child_rng(2, 0).random();
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.25, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "empty weights")]
    fn weighted_index_rejects_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        weighted_index(&mut rng, &[]);
    }
}
