//! MAC address identifiers.
//!
//! Each access point can expose one or more MAC addresses (one per
//! transceiver/band). The paper builds its bipartite graph over MAC
//! addresses rather than physical APs; this type is the node identity for
//! that side of the graph.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A 48-bit IEEE 802 MAC address, stored in the low 48 bits of a `u64`.
///
/// `MacAddr` is `Copy`, cheap to hash, and ordered, which makes it a good
/// key for interning tables and sorted containers.
///
/// ```
/// use gem_signal::MacAddr;
/// let m: MacAddr = "aa:bb:cc:00:11:22".parse().unwrap();
/// assert_eq!(m.to_string(), "aa:bb:cc:00:11:22");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MacAddr(u64);

impl MacAddr {
    /// Bit mask covering the 48 significant bits.
    pub const MASK: u64 = 0xFFFF_FFFF_FFFF;

    /// Creates a MAC address from a raw integer; bits above 48 are dropped.
    #[inline]
    pub const fn from_raw(raw: u64) -> Self {
        MacAddr(raw & Self::MASK)
    }

    /// Returns the raw 48-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Creates a MAC address from six octets.
    pub const fn from_octets(o: [u8; 6]) -> Self {
        MacAddr(
            ((o[0] as u64) << 40)
                | ((o[1] as u64) << 32)
                | ((o[2] as u64) << 24)
                | ((o[3] as u64) << 16)
                | ((o[4] as u64) << 8)
                | (o[5] as u64),
        )
    }

    /// Returns the six octets of the address.
    pub const fn octets(self) -> [u8; 6] {
        [
            (self.0 >> 40) as u8,
            (self.0 >> 32) as u8,
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// Derives a deterministic, locally-administered MAC address for a
    /// simulated AP transceiver. `ap` identifies the AP and `transceiver`
    /// the radio within it (e.g. 2.4 GHz vs 5 GHz).
    ///
    /// The locally-administered bit (bit 1 of the first octet) is set so
    /// simulated addresses can never collide with real vendor OUIs.
    pub fn simulated(ap: u32, transceiver: u8) -> Self {
        // SplitMix64-style scramble so nearby ids don't produce nearby MACs.
        let mut z = ((ap as u64) << 8 | transceiver as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let raw = z & Self::MASK;
        // Force locally-administered unicast: xxxx_xx10 in the first octet.
        let first = ((raw >> 40) as u8 & !0b01) | 0b10;
        MacAddr((raw & 0x00FF_FFFF_FFFF) | ((first as u64) << 40))
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", o[0], o[1], o[2], o[3], o[4], o[5])
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MacAddr({self})")
    }
}

/// Error returned when parsing a malformed MAC address string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMacError(String);

impl fmt::Display for ParseMacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address: {:?}", self.0)
    }
}

impl std::error::Error for ParseMacError {}

impl FromStr for MacAddr {
    type Err = ParseMacError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 6];
        let mut parts = s.split(':');
        for slot in octets.iter_mut() {
            let part = parts.next().ok_or_else(|| ParseMacError(s.to_string()))?;
            *slot = u8::from_str_radix(part, 16).map_err(|_| ParseMacError(s.to_string()))?;
        }
        if parts.next().is_some() {
            return Err(ParseMacError(s.to_string()));
        }
        Ok(MacAddr::from_octets(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_octets() {
        let m = MacAddr::from_octets([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        assert_eq!(m.octets(), [0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        assert_eq!(m.raw(), 0xdead_beef_0001);
    }

    #[test]
    fn roundtrip_string() {
        let m: MacAddr = "de:ad:be:ef:00:01".parse().unwrap();
        assert_eq!(m.to_string(), "de:ad:be:ef:00:01");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("de:ad:be:ef:00".parse::<MacAddr>().is_err());
        assert!("de:ad:be:ef:00:01:02".parse::<MacAddr>().is_err());
        assert!("zz:ad:be:ef:00:01".parse::<MacAddr>().is_err());
        assert!("".parse::<MacAddr>().is_err());
    }

    #[test]
    fn from_raw_masks_high_bits() {
        let m = MacAddr::from_raw(u64::MAX);
        assert_eq!(m.raw(), MacAddr::MASK);
    }

    #[test]
    fn simulated_addresses_are_distinct_and_local() {
        let mut seen = std::collections::HashSet::new();
        for ap in 0..200u32 {
            for t in 0..3u8 {
                let m = MacAddr::simulated(ap, t);
                assert!(seen.insert(m), "collision for ap={ap} t={t}");
                let first = m.octets()[0];
                assert_eq!(first & 0b11, 0b10, "must be locally-administered unicast");
            }
        }
    }

    #[test]
    fn simulated_is_deterministic() {
        assert_eq!(MacAddr::simulated(7, 1), MacAddr::simulated(7, 1));
        assert_ne!(MacAddr::simulated(7, 1), MacAddr::simulated(7, 2));
    }
}
