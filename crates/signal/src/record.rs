//! RF signal records and record sets.
//!
//! A [`SignalRecord`] is one WiFi scan: the list of MAC addresses heard at a
//! given instant together with their received signal strength (RSS) values
//! in dBm. Records are *variable length* — the set of audible MACs changes
//! from spot to spot and over time — which is the core data-representation
//! problem the paper addresses.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::mac::MacAddr;

/// One `(MAC, RSS)` observation inside a scan.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Reading {
    /// Transceiver that was heard.
    pub mac: MacAddr,
    /// Received signal strength in dBm (negative; stronger is closer to 0).
    pub rssi: f32,
}

impl Reading {
    /// Convenience constructor.
    pub fn new(mac: MacAddr, rssi: f32) -> Self {
        Reading { mac, rssi }
    }
}

/// One RF scan event: a timestamp plus a variable-length list of readings.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SignalRecord {
    /// Seconds since the start of the collection session.
    pub timestamp_s: f64,
    /// Observed `(MAC, RSS)` pairs. At most one reading per MAC; use
    /// [`SignalRecord::push`] to keep the strongest when duplicates occur.
    pub readings: Vec<Reading>,
}

impl SignalRecord {
    /// Creates an empty record at the given timestamp.
    pub fn new(timestamp_s: f64) -> Self {
        SignalRecord { timestamp_s, readings: Vec::new() }
    }

    /// Creates a record from `(mac, rssi)` pairs.
    pub fn from_pairs(timestamp_s: f64, pairs: impl IntoIterator<Item = (MacAddr, f32)>) -> Self {
        let mut rec = SignalRecord::new(timestamp_s);
        for (mac, rssi) in pairs {
            rec.push(mac, rssi);
        }
        rec
    }

    /// Adds a reading; if the MAC is already present the stronger RSS wins.
    pub fn push(&mut self, mac: MacAddr, rssi: f32) {
        if let Some(existing) = self.readings.iter_mut().find(|r| r.mac == mac) {
            if rssi > existing.rssi {
                existing.rssi = rssi;
            }
        } else {
            self.readings.push(Reading::new(mac, rssi));
        }
    }

    /// Number of MACs heard in this scan.
    pub fn len(&self) -> usize {
        self.readings.len()
    }

    /// Whether the scan heard nothing at all.
    pub fn is_empty(&self) -> bool {
        self.readings.is_empty()
    }

    /// Returns the RSS for `mac` if it was heard.
    pub fn rssi_of(&self, mac: MacAddr) -> Option<f32> {
        self.readings.iter().find(|r| r.mac == mac).map(|r| r.rssi)
    }

    /// Iterates over the MACs heard in this scan.
    pub fn macs(&self) -> impl Iterator<Item = MacAddr> + '_ {
        self.readings.iter().map(|r| r.mac)
    }

    /// The strongest reading, if any — used e.g. by the SignatureHome
    /// baseline as the "associated AP" proxy.
    pub fn strongest(&self) -> Option<Reading> {
        self.readings.iter().copied().max_by(|a, b| a.rssi.total_cmp(&b.rssi))
    }

    /// Removes readings for MACs not accepted by the predicate. Returns the
    /// number of readings removed.
    pub fn retain_macs(&mut self, mut keep: impl FnMut(MacAddr) -> bool) -> usize {
        let before = self.readings.len();
        self.readings.retain(|r| keep(r.mac));
        before - self.readings.len()
    }
}

/// A dense, padded matrix view of a record set (records × MACs).
///
/// This is the representation used by the matrix-based baselines
/// (SignatureHome, INOA, autoencoder, MDS): one column per MAC in a fixed
/// universe, missing entries padded with a small constant (the paper uses
/// -120 dBm). GEM itself never needs this — that is the point of the
/// bipartite graph model — but the comparisons do.
#[derive(Clone, Debug, PartialEq)]
pub struct PaddedMatrix {
    /// MAC universe in column order (sorted, deduplicated).
    pub macs: Vec<MacAddr>,
    /// Row-major data: `rows × macs.len()` RSS values in dBm.
    pub data: Vec<f32>,
    /// Number of rows (records).
    pub rows: usize,
    /// Pad value used for missing entries.
    pub pad: f32,
}

impl PaddedMatrix {
    /// Number of columns (MACs).
    pub fn cols(&self) -> usize {
        self.macs.len()
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        let c = self.cols();
        &self.data[i * c..(i + 1) * c]
    }

    /// Projects a single record onto this matrix's MAC universe,
    /// padding missing MACs and dropping unknown ones. Returns the dense
    /// vector together with the number of readings that were dropped
    /// because their MAC is outside the universe.
    pub fn project(&self, record: &SignalRecord) -> (Vec<f32>, usize) {
        let mut row = vec![self.pad; self.cols()];
        let mut dropped = 0usize;
        for r in &record.readings {
            match self.macs.binary_search(&r.mac) {
                Ok(j) => row[j] = r.rssi,
                Err(_) => dropped += 1,
            }
        }
        (row, dropped)
    }
}

/// An ordered collection of signal records with set-level helpers.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RecordSet {
    records: Vec<SignalRecord>,
}

impl RecordSet {
    /// Creates an empty record set.
    pub fn new() -> Self {
        RecordSet { records: Vec::new() }
    }

    /// Wraps an existing vector of records.
    pub fn from_records(records: Vec<SignalRecord>) -> Self {
        RecordSet { records }
    }

    /// Appends a record.
    pub fn push(&mut self, record: SignalRecord) {
        self.records.push(record);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Borrow the records.
    pub fn records(&self) -> &[SignalRecord] {
        &self.records
    }

    /// Mutably borrow the records.
    pub fn records_mut(&mut self) -> &mut [SignalRecord] {
        &mut self.records
    }

    /// Consumes the set and returns the records.
    pub fn into_records(self) -> Vec<SignalRecord> {
        self.records
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, SignalRecord> {
        self.records.iter()
    }

    /// The sorted, deduplicated MAC universe observed across all records.
    pub fn mac_universe(&self) -> Vec<MacAddr> {
        let mut macs: Vec<MacAddr> = self.records.iter().flat_map(|r| r.macs()).collect();
        macs.sort_unstable();
        macs.dedup();
        macs
    }

    /// Per-MAC observation counts.
    pub fn mac_counts(&self) -> BTreeMap<MacAddr, usize> {
        let mut counts = BTreeMap::new();
        for rec in &self.records {
            for mac in rec.macs() {
                *counts.entry(mac).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Mean and standard deviation of every RSS reading in the set, plus
    /// the number of distinct MACs — the statistics reported in the
    /// paper's Table IV.
    pub fn rss_stats(&self) -> RssStats {
        let mut n = 0usize;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for rec in &self.records {
            for r in &rec.readings {
                n += 1;
                sum += r.rssi as f64;
                sum_sq += (r.rssi as f64) * (r.rssi as f64);
            }
        }
        let mean = if n == 0 { 0.0 } else { sum / n as f64 };
        let var =
            if n < 2 { 0.0 } else { ((sum_sq - sum * sum / n as f64) / (n as f64 - 1.0)).max(0.0) };
        RssStats {
            mean_dbm: mean,
            sd_dbm: var.sqrt(),
            n_readings: n,
            n_macs: self.mac_universe().len(),
        }
    }

    /// Builds the padded matrix view over this set's own MAC universe.
    pub fn to_matrix(&self, pad: f32) -> PaddedMatrix {
        self.to_matrix_with_universe(self.mac_universe(), pad)
    }

    /// Builds the padded matrix view over a caller-provided MAC universe
    /// (must be sorted). Readings outside the universe are dropped, exactly
    /// like the fixed-length conversions of the matrix baselines.
    pub fn to_matrix_with_universe(&self, macs: Vec<MacAddr>, pad: f32) -> PaddedMatrix {
        debug_assert!(macs.windows(2).all(|w| w[0] < w[1]), "universe must be sorted+unique");
        let cols = macs.len();
        let mut data = vec![pad; self.records.len() * cols];
        for (i, rec) in self.records.iter().enumerate() {
            for r in &rec.readings {
                if let Ok(j) = macs.binary_search(&r.mac) {
                    data[i * cols + j] = r.rssi;
                }
            }
        }
        PaddedMatrix { macs, data, rows: self.records.len(), pad }
    }

    /// Splits the set into `k` nearly-equal contiguous chunks (used by the
    /// training-ratio and update-ratio experiments, Fig. 9).
    pub fn chunks(&self, k: usize) -> Vec<RecordSet> {
        assert!(k > 0, "chunk count must be positive");
        let n = self.records.len();
        let base = n / k;
        let extra = n % k;
        let mut out = Vec::with_capacity(k);
        let mut idx = 0usize;
        for c in 0..k {
            let take = base + usize::from(c < extra);
            out.push(RecordSet::from_records(self.records[idx..idx + take].to_vec()));
            idx += take;
        }
        out
    }
}

impl FromIterator<SignalRecord> for RecordSet {
    fn from_iter<T: IntoIterator<Item = SignalRecord>>(iter: T) -> Self {
        RecordSet { records: iter.into_iter().collect() }
    }
}

impl<'a> IntoIterator for &'a RecordSet {
    type Item = &'a SignalRecord;
    type IntoIter = std::slice::Iter<'a, SignalRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

/// Aggregate RSS statistics over a record set (cf. paper Table IV).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RssStats {
    /// Mean RSS over all readings, dBm.
    pub mean_dbm: f64,
    /// Sample standard deviation of RSS, dBm.
    pub sd_dbm: f64,
    /// Total number of readings.
    pub n_readings: usize,
    /// Number of distinct MACs.
    pub n_macs: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(i: u64) -> MacAddr {
        MacAddr::from_raw(i)
    }

    fn rec(t: f64, pairs: &[(u64, f32)]) -> SignalRecord {
        SignalRecord::from_pairs(t, pairs.iter().map(|&(m, r)| (mac(m), r)))
    }

    #[test]
    fn push_keeps_strongest_duplicate() {
        let mut r = SignalRecord::new(0.0);
        r.push(mac(1), -70.0);
        r.push(mac(1), -60.0);
        r.push(mac(1), -80.0);
        assert_eq!(r.len(), 1);
        assert_eq!(r.rssi_of(mac(1)), Some(-60.0));
    }

    #[test]
    fn strongest_reading() {
        let r = rec(0.0, &[(1, -70.0), (2, -55.0), (3, -90.0)]);
        assert_eq!(r.strongest().unwrap().mac, mac(2));
        assert!(SignalRecord::new(0.0).strongest().is_none());
    }

    #[test]
    fn mac_universe_sorted_unique() {
        let rs = RecordSet::from_records(vec![
            rec(0.0, &[(5, -50.0), (1, -60.0)]),
            rec(1.0, &[(1, -62.0), (9, -70.0)]),
        ]);
        assert_eq!(rs.mac_universe(), vec![mac(1), mac(5), mac(9)]);
    }

    #[test]
    fn matrix_pads_missing_entries() {
        let rs = RecordSet::from_records(vec![rec(0.0, &[(1, -50.0)]), rec(1.0, &[(2, -60.0)])]);
        let m = rs.to_matrix(-120.0);
        assert_eq!(m.rows, 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(0), &[-50.0, -120.0]);
        assert_eq!(m.row(1), &[-120.0, -60.0]);
    }

    #[test]
    fn matrix_with_foreign_universe_drops_unknowns() {
        let rs = RecordSet::from_records(vec![rec(0.0, &[(1, -50.0), (7, -55.0)])]);
        let m = rs.to_matrix_with_universe(vec![mac(1), mac(2)], -120.0);
        assert_eq!(m.row(0), &[-50.0, -120.0]);
        let (row, dropped) = m.project(&rec(0.0, &[(2, -40.0), (9, -45.0)]));
        assert_eq!(row, vec![-120.0, -40.0]);
        assert_eq!(dropped, 1);
    }

    #[test]
    fn rss_stats_match_hand_computation() {
        let rs = RecordSet::from_records(vec![
            rec(0.0, &[(1, -60.0), (2, -70.0)]),
            rec(1.0, &[(1, -80.0)]),
        ]);
        let s = rs.rss_stats();
        assert_eq!(s.n_readings, 3);
        assert_eq!(s.n_macs, 2);
        assert!((s.mean_dbm - (-70.0)).abs() < 1e-9);
        assert!((s.sd_dbm - 10.0).abs() < 1e-9);
    }

    #[test]
    fn chunks_partition_everything() {
        let rs: RecordSet = (0..10).map(|i| rec(i as f64, &[(1, -50.0)])).collect();
        let parts = rs.chunks(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 10);
        assert_eq!(parts[0].len(), 4); // 10 = 4 + 3 + 3
        assert_eq!(parts[1].len(), 3);
    }

    #[test]
    fn retain_macs_filters() {
        let mut r = rec(0.0, &[(1, -50.0), (2, -60.0), (3, -70.0)]);
        let removed = r.retain_macs(|m| m.raw() != 2);
        assert_eq!(removed, 1);
        assert_eq!(r.len(), 2);
        assert!(r.rssi_of(mac(2)).is_none());
    }
}
