//! Shared vocabulary types for the GEM geofencing system.
//!
//! This crate defines the data model that every other crate in the workspace
//! speaks: [`MacAddr`] identifiers for access-point transceivers, RSS
//! readings, variable-length [`SignalRecord`]s, and labeled [`Dataset`]s.
//! It also provides the padded matrix view of a record set
//! ([`RecordSet::to_matrix`]) used by the matrix-based baselines the paper
//! compares against, and a small deterministic random-number utility module
//! ([`rng`]) shared across the workspace.

pub mod dataset;
pub mod mac;
pub mod record;
pub mod rng;

pub use dataset::{Dataset, Label, LabeledRecord};
pub use mac::MacAddr;
pub use record::{PaddedMatrix, Reading, RecordSet, SignalRecord};

/// Default RSS floor (in dBm) used to pad missing entries in matrix
/// representations, following the paper's convention of -120 dBm.
pub const RSS_PAD_DBM: f32 = -120.0;

/// Default device sensitivity (in dBm): readings weaker than this are not
/// observed by the IoT device.
pub const RSS_SENSITIVITY_DBM: f32 = -95.0;
