//! Labeled datasets for geofencing evaluation.
//!
//! Training data in GEM is *one-class*: only in-premises records, collected
//! while walking the inner perimeter. Test data carries ground-truth
//! [`Label`]s so evaluation code can compute precision/recall/F for both the
//! in-premises and outside classes.

use serde::{Deserialize, Serialize};

use crate::record::{RecordSet, SignalRecord};

/// Ground-truth location class of a record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    /// Collected inside the geofenced premises ("normal").
    In,
    /// Collected outside the premises ("outlier").
    Out,
}

impl Label {
    /// True when the record is in-premises.
    pub fn is_in(self) -> bool {
        matches!(self, Label::In)
    }
}

/// A test record together with its ground truth.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LabeledRecord {
    /// The scan itself.
    pub record: SignalRecord,
    /// Where it was really collected.
    pub label: Label,
}

/// A complete experiment dataset: unlabeled (implicitly in-premises)
/// training records plus a labeled, time-ordered test stream.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Initial training records (all collected in-premises).
    pub train: RecordSet,
    /// Time-ordered test stream with ground truth.
    pub test: Vec<LabeledRecord>,
}

impl Dataset {
    /// Creates a dataset from its parts.
    pub fn new(train: RecordSet, test: Vec<LabeledRecord>) -> Self {
        Dataset { train, test }
    }

    /// Number of test records with the given label.
    pub fn count(&self, label: Label) -> usize {
        self.test.iter().filter(|t| t.label == label).count()
    }

    /// Splits the test stream into `k` nearly-equal contiguous stages,
    /// preserving order (used for the online-update experiment, Fig. 9b).
    pub fn test_stages(&self, k: usize) -> Vec<&[LabeledRecord]> {
        assert!(k > 0, "stage count must be positive");
        let n = self.test.len();
        let base = n / k;
        let extra = n % k;
        let mut out = Vec::with_capacity(k);
        let mut idx = 0usize;
        for c in 0..k {
            let take = base + usize::from(c < extra);
            out.push(&self.test[idx..idx + take]);
            idx += take;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::MacAddr;

    fn labeled(label: Label) -> LabeledRecord {
        LabeledRecord {
            record: SignalRecord::from_pairs(0.0, [(MacAddr::from_raw(1), -50.0)]),
            label,
        }
    }

    #[test]
    fn count_by_label() {
        let ds = Dataset::new(
            RecordSet::new(),
            vec![labeled(Label::In), labeled(Label::Out), labeled(Label::In)],
        );
        assert_eq!(ds.count(Label::In), 2);
        assert_eq!(ds.count(Label::Out), 1);
    }

    #[test]
    fn stages_cover_stream_in_order() {
        let ds = Dataset::new(RecordSet::new(), (0..7).map(|_| labeled(Label::In)).collect());
        let stages = ds.test_stages(3);
        assert_eq!(stages.len(), 3);
        assert_eq!(stages.iter().map(|s| s.len()).sum::<usize>(), 7);
        assert_eq!(stages[0].len(), 3);
    }

    #[test]
    fn label_is_in() {
        assert!(Label::In.is_in());
        assert!(!Label::Out.is_in());
    }
}
