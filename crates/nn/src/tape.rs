//! Reverse-mode automatic differentiation on a per-step tape.
//!
//! Usage pattern (define-by-run): create a [`Graph`] for each training
//! step, build the computation with the op methods (values are computed
//! eagerly), call [`Graph::backward`] on the scalar loss, then let an
//! optimizer consume the gradients accumulated in the [`ParamStore`].
//!
//! The op set is deliberately small — exactly what BiSAGE, GraphSAGE and
//! the autoencoder baseline need — and every op's gradient is validated
//! against central finite differences in this module's tests.
//!
//! # Memory architecture
//!
//! Two features make a steady-state training step allocation-free:
//!
//! * **Arena-backed buffers** — a graph built with [`Graph::with_arena`]
//!   draws every node value and gradient buffer from a
//!   [`TensorArena`]; [`Graph::reset`] (or drop) returns them, so the
//!   next step of the same shape reuses the warm buffers. Index and
//!   target buffers (`Gather`, `SelectRows`, `BceWithLogitsMean`) are
//!   `Arc`-shared with the caller instead of copied per op.
//! * **Sparse gradients** — a parameter registered as an embedding table
//!   via [`ParamStore::mark_sparse`] tracks exactly which rows received
//!   gradient (the rows `Gather` scattered into); [`GradStore`] keeps a
//!   touched-rows representation for such params so detached sinks never
//!   zero or reduce full tables. All sparse paths are bit-identical to
//!   the dense ones they shortcut: untouched rows hold exact `+0.0`
//!   gradients, and skipping `x + 0.0` / `0.0 * s` is an IEEE-754
//!   identity for the values that can occur here.

use std::rc::Rc;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::arena::TensorArena;
use crate::kernels::{self, Precision};
use crate::tensor::Tensor;

/// Handle to a learnable parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub usize);

/// Rows of a sparse-tracked parameter that received gradient this step.
///
/// `dirty` is a per-row flag (scanned in ascending row order wherever
/// summation order matters, so results match the dense full scan bit for
/// bit); `rows` is the unordered insertion list used for cheap clearing.
#[derive(Clone, Debug, Default)]
struct TouchedRows {
    dirty: Vec<bool>,
    rows: Vec<u32>,
    all: bool,
}

impl TouchedRows {
    fn new(rows: usize) -> Self {
        TouchedRows { dirty: vec![false; rows], rows: Vec::new(), all: false }
    }

    #[inline]
    fn mark(&mut self, r: u32) {
        if !self.dirty[r as usize] {
            self.dirty[r as usize] = true;
            self.rows.push(r);
        }
    }

    fn clear(&mut self) {
        for &r in &self.rows {
            self.dirty[r as usize] = false;
        }
        self.rows.clear();
        self.all = false;
    }
}

/// Which rows of a parameter carry gradient this step (see
/// [`ParamStore::collect_touched_rows`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Touched {
    /// Not sparse-tracked: treat as fully dense.
    Untracked,
    /// Sparse-tracked, but a dense write touched every row.
    All,
    /// Sparse-tracked; only the collected rows carry gradient.
    Rows,
}

/// A named, learnable tensor plus its gradient accumulator.
#[derive(Clone, Debug)]
struct Param {
    name: String,
    value: Tensor,
    grad: Tensor,
    /// `Some` for embedding-table params with row-sparse gradients.
    touched: Option<TouchedRows>,
}

/// Container of all learnable parameters of a model.
#[derive(Clone, Debug, Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its id.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.rows(), value.cols());
        self.params.push(Param { name: name.into(), value, grad, touched: None });
        ParamId(self.params.len() - 1)
    }

    /// Declares a parameter an embedding table with row-sparse gradients:
    /// the store starts tracking which rows receive gradient, so
    /// [`ParamStore::zero_grads`], norm/clip, and sparse-aware optimizers
    /// do work proportional to the touched rows instead of the table.
    pub fn mark_sparse(&mut self, id: ParamId) {
        let rows = self.params[id.0].value.rows();
        self.params[id.0].touched = Some(TouchedRows::new(rows));
    }

    /// True when the parameter is tracked as row-sparse.
    pub fn is_sparse(&self, id: ParamId) -> bool {
        self.params[id.0].touched.is_some()
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Parameter name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Borrow a parameter value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Mutably borrow a parameter value (optimizers, manual edits).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    /// Borrow a parameter's accumulated gradient.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].grad
    }

    /// Mutably borrow a parameter's gradient.
    ///
    /// For sparse-tracked params the caller takes responsibility for the
    /// touched-row invariant; direct writes conservatively mark all rows.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        if let Some(t) = &mut self.params[id.0].touched {
            t.all = true;
        }
        &mut self.params[id.0].grad
    }

    /// Simultaneous `(&mut value, &grad)` borrow for allocation-free
    /// optimizer update loops.
    pub fn value_and_grad_mut(&mut self, id: ParamId) -> (&mut Tensor, &Tensor) {
        let p = &mut self.params[id.0];
        (&mut p.value, &p.grad)
    }

    /// Appends the touched rows of `id` in ascending order to `out`
    /// (cleared first) and reports the tracking state. `Untracked` and
    /// `All` leave `out` empty: the gradient must be treated as dense.
    pub fn collect_touched_rows(&self, id: ParamId, out: &mut Vec<u32>) -> Touched {
        out.clear();
        match &self.params[id.0].touched {
            None => Touched::Untracked,
            Some(t) if t.all => Touched::All,
            Some(t) => {
                // Ascending scan of the dirty bitmap, not the unordered
                // insertion list, so callers see a deterministic order.
                for (r, &d) in t.dirty.iter().enumerate() {
                    if d {
                        out.push(r as u32);
                    }
                }
                Touched::Rows
            }
        }
    }

    /// Zeroes every gradient accumulator (start of a step). Sparse-tracked
    /// params only zero their touched rows — untouched rows are already
    /// exactly zero by the tracking invariant.
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            match &mut p.touched {
                Some(t) if !t.all => {
                    for &r in &t.rows {
                        p.grad.row_mut(r as usize).fill(0.0);
                    }
                    t.clear();
                }
                Some(t) => {
                    p.grad.fill_zero();
                    t.clear();
                }
                None => p.grad.fill_zero(),
            }
        }
    }

    /// Iterates over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Global L2 norm of all gradients (for clipping / diagnostics).
    ///
    /// Sparse-tracked params sum only their touched rows, scanned in
    /// ascending row order: skipping the exact-zero untouched rows is a
    /// bitwise no-op relative to the dense full scan (`acc + 0.0·0.0`
    /// never changes `acc`, and the accumulator of non-negative squares
    /// can never be `-0.0`).
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| match &p.touched {
                Some(t) if !t.all => {
                    let mut acc = 0.0f32;
                    for (r, &d) in t.dirty.iter().enumerate() {
                        if d {
                            for &x in p.grad.row(r) {
                                acc += x * x;
                            }
                        }
                    }
                    acc
                }
                _ => p.grad.norm_sq(),
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Scales all gradients so the global norm is at most `max_norm`.
    /// Sparse-tracked params scale only touched rows (`0.0 × s` is a
    /// bitwise no-op on the untouched exact zeros).
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for p in &mut self.params {
                match &p.touched {
                    Some(t) if !t.all => {
                        for &r in &t.rows {
                            for x in p.grad.row_mut(r as usize) {
                                *x *= s;
                            }
                        }
                    }
                    _ => p.grad.scale_in_place(s),
                }
            }
        }
    }

    /// Accumulates `alpha ×` the sink's gradients into this store's
    /// accumulators — the fixed-order reduction step of data-parallel
    /// training (reduce every worker sink in chunk order, then step).
    pub fn apply_grads(&mut self, sink: &GradStore, alpha: f32) {
        assert_eq!(sink.entries.len(), self.params.len(), "sink shaped for a different store");
        for (p, entry) in self.params.iter_mut().zip(&sink.entries) {
            match entry {
                SinkEntry::Empty => {}
                SinkEntry::Dense(g) => {
                    p.grad.axpy(alpha, g);
                    if let Some(t) = &mut p.touched {
                        t.all = true;
                    }
                }
                SinkEntry::Sparse(s) => {
                    for (slot, &r) in s.rows.iter().enumerate() {
                        let src = &s.data[slot * s.cols..(slot + 1) * s.cols];
                        for (d, &x) in p.grad.row_mut(r as usize).iter_mut().zip(src) {
                            *d += alpha * x;
                        }
                        if let Some(t) = &mut p.touched {
                            t.mark(r);
                        }
                    }
                }
            }
        }
    }
}

/// Row-sparse gradient for an embedding table: `rows[slot]` is the table
/// row stored at `data[slot·cols ..]`, in first-touch order; `slot_of`
/// maps table rows back to slots (`u32::MAX` = untouched). Clearing
/// retains all allocations, so a reused sink allocates nothing.
#[derive(Clone, Debug)]
pub struct SparseGrad {
    cols: usize,
    slot_of: Vec<u32>,
    rows: Vec<u32>,
    data: Vec<f32>,
}

const NO_SLOT: u32 = u32::MAX;

impl SparseGrad {
    fn new(table_rows: usize, cols: usize) -> Self {
        SparseGrad { cols, slot_of: vec![NO_SLOT; table_rows], rows: Vec::new(), data: Vec::new() }
    }

    fn matches(&self, table_rows: usize, cols: usize) -> bool {
        self.slot_of.len() == table_rows && self.cols == cols
    }

    fn clear(&mut self) {
        for &r in &self.rows {
            self.slot_of[r as usize] = NO_SLOT;
        }
        self.rows.clear();
        self.data.clear();
    }

    #[inline]
    fn slot_for(&mut self, r: u32) -> usize {
        let s = self.slot_of[r as usize];
        if s != NO_SLOT {
            return s as usize;
        }
        let s = self.rows.len();
        self.slot_of[r as usize] = s as u32;
        self.rows.push(r);
        self.data.resize(self.data.len() + self.cols, 0.0);
        s
    }

    /// Accumulates `grad` row `i` into table row `indices[i]`, in the same
    /// per-element order a dense scatter uses (ascending `i`), so the
    /// accumulated values are bit-identical to the dense path.
    fn scatter(&mut self, indices: &[u32], grad: &Tensor) {
        debug_assert_eq!(grad.cols(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            let slot = self.slot_for(r);
            let dst = &mut self.data[slot * self.cols..(slot + 1) * self.cols];
            for (d, &x) in dst.iter_mut().zip(grad.row(i)) {
                *d += x;
            }
        }
    }

    /// Touched table rows in first-touch order.
    pub fn touched(&self) -> &[u32] {
        &self.rows
    }

    /// Gradient row for slot `i` of [`SparseGrad::touched`].
    pub fn slot_row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }
}

/// One parameter's gradient inside a [`GradStore`]: nothing yet, a dense
/// tensor, or a row-sparse table gradient. The representation is chosen
/// by the first backward write (`Param` ⇒ dense, `Gather` ⇒ sparse) and
/// then sticks across [`GradStore::ensure_like`] re-arms so buffers warm
/// up once.
#[derive(Clone, Debug)]
enum SinkEntry {
    Empty,
    Dense(Tensor),
    Sparse(SparseGrad),
}

/// Parameter gradients decoupled from the [`ParamStore`] that owns the
/// values. Data-parallel workers each run [`Graph::backward_into`] against
/// a private sink while sharing one read-only store; the reducer then
/// folds the sinks back with [`ParamStore::apply_grads`] in a fixed order,
/// which keeps training results independent of the thread count.
#[derive(Clone, Debug, Default)]
pub struct GradStore {
    entries: Vec<SinkEntry>,
    shapes: Vec<(usize, usize)>,
}

impl GradStore {
    /// An empty sink (re-arm with [`GradStore::ensure_like`] before use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Zero gradients shaped like every parameter of `store`.
    pub fn zeros_like(store: &ParamStore) -> Self {
        let mut sink = Self::default();
        sink.ensure_like(store);
        sink
    }

    /// Re-shapes the sink to match `store` and clears everything, reusing
    /// allocations whose shapes already agree — the cheap per-chunk re-arm
    /// for a thread-local sink.
    pub fn ensure_like(&mut self, store: &ParamStore) {
        self.entries.resize_with(store.params.len(), || SinkEntry::Empty);
        self.shapes.resize(store.params.len(), (0, 0));
        for ((entry, shape), p) in
            self.entries.iter_mut().zip(self.shapes.iter_mut()).zip(&store.params)
        {
            *shape = p.value.shape();
            match entry {
                SinkEntry::Dense(g) if g.shape() == *shape => g.fill_zero(),
                SinkEntry::Sparse(s) if s.matches(shape.0, shape.1) => s.clear(),
                SinkEntry::Empty => {}
                other => *other = SinkEntry::Empty,
            }
        }
    }

    /// The dense gradient tensor, when this parameter's gradient is held
    /// densely (`None` for untouched or sparse entries).
    pub fn dense(&self, id: ParamId) -> Option<&Tensor> {
        match &self.entries[id.0] {
            SinkEntry::Dense(g) => Some(g),
            _ => None,
        }
    }

    /// The row-sparse gradient, when this parameter's gradient is held
    /// sparsely (`None` for untouched or dense entries).
    pub fn sparse(&self, id: ParamId) -> Option<&SparseGrad> {
        match &self.entries[id.0] {
            SinkEntry::Sparse(s) => Some(s),
            _ => None,
        }
    }

    /// Materializes the gradient for a parameter as a dense tensor
    /// (tests, diagnostics).
    pub fn to_dense(&self, id: ParamId) -> Tensor {
        let (rows, cols) = self.shapes[id.0];
        match &self.entries[id.0] {
            SinkEntry::Empty => Tensor::zeros(rows, cols),
            SinkEntry::Dense(g) => g.clone(),
            SinkEntry::Sparse(s) => {
                let mut out = Tensor::zeros(rows, cols);
                for (slot, &r) in s.rows.iter().enumerate() {
                    out.row_mut(r as usize).copy_from_slice(s.slot_row(slot));
                }
                out
            }
        }
    }

    /// Folds `other`'s gradients into this sink — the associative
    /// combine step of a gradient tree reduction. Sparse rows merge in
    /// `other`'s first-touch order and dense entries add element-wise,
    /// so the result depends only on the merge *topology* (which is
    /// fixed by chunk index), never on which thread produced a sink:
    /// a fixed tree gives bit-identical results for any thread count.
    pub fn merge_from(&mut self, other: &GradStore) {
        assert_eq!(other.entries.len(), self.entries.len(), "sinks shaped for different stores");
        for i in 0..self.entries.len() {
            match &other.entries[i] {
                SinkEntry::Empty => {}
                SinkEntry::Dense(g) => {
                    self.dense_entry(ParamId(i)).axpy(1.0, g);
                }
                SinkEntry::Sparse(s) => match &mut self.entries[i] {
                    SinkEntry::Empty => {
                        self.entries[i] = SinkEntry::Sparse(s.clone());
                    }
                    SinkEntry::Sparse(dst) => {
                        debug_assert!(dst.matches(s.slot_of.len(), s.cols));
                        for (slot, &r) in s.rows.iter().enumerate() {
                            let d = dst.slot_for(r);
                            let dst_row = &mut dst.data[d * s.cols..(d + 1) * s.cols];
                            let src_row = &s.data[slot * s.cols..(slot + 1) * s.cols];
                            for (a, &b) in dst_row.iter_mut().zip(src_row) {
                                *a += b;
                            }
                        }
                    }
                    SinkEntry::Dense(dst) => {
                        for (slot, &r) in s.rows.iter().enumerate() {
                            let src = &s.data[slot * s.cols..(slot + 1) * s.cols];
                            for (a, &b) in dst.row_mut(r as usize).iter_mut().zip(src) {
                                *a += b;
                            }
                        }
                    }
                },
            }
        }
    }

    fn dense_entry(&mut self, id: ParamId) -> &mut Tensor {
        let (rows, cols) = self.shapes[id.0];
        match &self.entries[id.0] {
            SinkEntry::Empty => {
                self.entries[id.0] = SinkEntry::Dense(Tensor::zeros(rows, cols));
            }
            SinkEntry::Sparse(_) => {
                // A dense write folding into a sparse entry: promote to
                // dense (rare — a model using both `param` and `gather`
                // on one table).
                let dense = self.to_dense(id);
                self.entries[id.0] = SinkEntry::Dense(dense);
            }
            SinkEntry::Dense(_) => {}
        }
        match &mut self.entries[id.0] {
            SinkEntry::Dense(g) => g,
            _ => unreachable!(),
        }
    }
}

/// Destination of parameter gradients during the reverse pass: either the
/// store itself (single-threaded path) or a detached [`GradStore`].
trait GradSink {
    fn add_dense(&mut self, id: ParamId, grad: &Tensor);
    fn scatter_rows(&mut self, id: ParamId, indices: &[u32], grad: &Tensor);
}

impl GradSink for ParamStore {
    fn add_dense(&mut self, id: ParamId, grad: &Tensor) {
        let p = &mut self.params[id.0];
        p.grad.axpy(1.0, grad);
        if let Some(t) = &mut p.touched {
            t.all = true;
        }
    }

    fn scatter_rows(&mut self, id: ParamId, indices: &[u32], grad: &Tensor) {
        let p = &mut self.params[id.0];
        for (i, &r) in indices.iter().enumerate() {
            let dst = p.grad.row_mut(r as usize);
            for (d, &s) in dst.iter_mut().zip(grad.row(i)) {
                *d += s;
            }
            if let Some(t) = &mut p.touched {
                t.mark(r);
            }
        }
    }
}

impl GradSink for GradStore {
    fn add_dense(&mut self, id: ParamId, grad: &Tensor) {
        self.dense_entry(id).axpy(1.0, grad);
    }

    fn scatter_rows(&mut self, id: ParamId, indices: &[u32], grad: &Tensor) {
        let (rows, cols) = self.shapes[id.0];
        let entry = &mut self.entries[id.0];
        if let SinkEntry::Empty = entry {
            *entry = SinkEntry::Sparse(SparseGrad::new(rows, cols));
        }
        match entry {
            SinkEntry::Sparse(s) => s.scatter(indices, grad),
            SinkEntry::Dense(g) => {
                for (i, &r) in indices.iter().enumerate() {
                    let dst = g.row_mut(r as usize);
                    for (d, &s) in dst.iter_mut().zip(grad.row(i)) {
                        *d += s;
                    }
                }
            }
            SinkEntry::Empty => unreachable!(),
        }
    }
}

/// Cheap conversion into the `Arc`-shared index buffers tape ops store.
/// Callers that pre-build indices once per tree pass an `Arc` (zero-copy);
/// slices and vecs still work and copy once at op construction.
pub trait IntoIndexArc {
    /// Converts into a shared index buffer.
    fn into_index_arc(self) -> Arc<Vec<u32>>;
}

impl IntoIndexArc for Arc<Vec<u32>> {
    fn into_index_arc(self) -> Arc<Vec<u32>> {
        self
    }
}

impl IntoIndexArc for &Arc<Vec<u32>> {
    fn into_index_arc(self) -> Arc<Vec<u32>> {
        Arc::clone(self)
    }
}

impl IntoIndexArc for Vec<u32> {
    fn into_index_arc(self) -> Arc<Vec<u32>> {
        Arc::new(self)
    }
}

impl IntoIndexArc for &Vec<u32> {
    fn into_index_arc(self) -> Arc<Vec<u32>> {
        Arc::new(self.clone())
    }
}

impl IntoIndexArc for &[u32] {
    fn into_index_arc(self) -> Arc<Vec<u32>> {
        Arc::new(self.to_vec())
    }
}

impl<const N: usize> IntoIndexArc for &[u32; N] {
    fn into_index_arc(self) -> Arc<Vec<u32>> {
        Arc::new(self.to_vec())
    }
}

/// Cheap conversion into the `Arc`-shared target buffers tape ops store.
pub trait IntoTargetArc {
    /// Converts into a shared target buffer.
    fn into_target_arc(self) -> Arc<Vec<f32>>;
}

impl IntoTargetArc for Arc<Vec<f32>> {
    fn into_target_arc(self) -> Arc<Vec<f32>> {
        self
    }
}

impl IntoTargetArc for &Arc<Vec<f32>> {
    fn into_target_arc(self) -> Arc<Vec<f32>> {
        Arc::clone(self)
    }
}

impl IntoTargetArc for Vec<f32> {
    fn into_target_arc(self) -> Arc<Vec<f32>> {
        Arc::new(self)
    }
}

impl IntoTargetArc for &Vec<f32> {
    fn into_target_arc(self) -> Arc<Vec<f32>> {
        Arc::new(self.clone())
    }
}

impl IntoTargetArc for &[f32] {
    fn into_target_arc(self) -> Arc<Vec<f32>> {
        Arc::new(self.to_vec())
    }
}

impl<const N: usize> IntoTargetArc for &[f32; N] {
    fn into_target_arc(self) -> Arc<Vec<f32>> {
        Arc::new(self.to_vec())
    }
}

/// Nonlinearities supported by [`Graph::activation`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// x for x ≥ 0, 0.01·x otherwise.
    LeakyRelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Pass-through.
    Identity,
}

impl Activation {
    /// The element-wise nonlinearity itself. Public so forward-only
    /// consumers (the tape-free inference engine) apply *exactly* the
    /// arithmetic [`Graph::activation`] applies — bitwise-parity tests
    /// between the two paths rely on this being the same code.
    #[inline]
    pub fn forward(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x >= 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// Applies the nonlinearity across a slice in place. Semantically
    /// `for x in xs { *x = self.forward(*x) }`, but element-independent
    /// cases route through the dispatched SIMD kernels — with results
    /// bit-identical to the scalar loop, so the tape/engine parity
    /// contract extends unchanged.
    #[inline]
    pub fn forward_slice(self, xs: &mut [f32]) {
        match self {
            Activation::LeakyRelu => kernels::leaky_relu(xs, 0.01),
            Activation::Identity => {}
            _ => {
                for x in xs {
                    *x = self.forward(*x);
                }
            }
        }
    }

    /// Derivative given the input `x` and output `y`.
    #[inline]
    fn derivative(self, x: f32, y: f32) -> f32 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if x >= 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Identity => 1.0,
        }
    }
}

/// Handle to a node on the tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

enum Op {
    /// Constant leaf (inputs to the network; receives no gradient).
    Constant,
    /// Full parameter matrix.
    Param(ParamId),
    /// Selected rows of a parameter table (embedding lookup).
    Gather { param: ParamId, indices: Arc<Vec<u32>> },
    /// `a · b`.
    MatMul(Var, Var),
    /// `a + b`, same shape.
    Add(Var, Var),
    /// `a - b`, same shape.
    Sub(Var, Var),
    /// Element-wise product, same shape.
    MulElem(Var, Var),
    /// `c · a`.
    Scale(Var, f32),
    /// Horizontal concatenation `[a | b]`.
    ConcatCols(Var, Var),
    /// Element-wise nonlinearity.
    Act(Var, Activation),
    /// Row-wise L2 normalization (paper Eq. 7).
    RowL2Norm(Var),
    /// Per-segment weighted sum of input rows: output row `s` is
    /// `Σ_{j ∈ seg s} weights[j] · input_row[j]`. This is the paper's
    /// weighted aggregator over sampled neighborhoods.
    SegmentWeightedSum { input: Var, offsets: Arc<Vec<u32>>, weights: Arc<Vec<f32>> },
    /// Copies selected rows of another node's value (slicing, repeating).
    SelectRows { input: Var, indices: Arc<Vec<u32>> },
    /// Row-wise dot product of two same-shape matrices → `(m × 1)`.
    RowsDot(Var, Var),
    /// Broadcast row-vector bias add: `(m × n) + (1 × n)`.
    AddBias(Var, Var),
    /// Mean binary-cross-entropy with logits against fixed targets → `1 × 1`.
    BceWithLogitsMean { scores: Var, targets: Arc<Vec<f32>> },
    /// Mean squared error against a fixed target → `1 × 1`.
    MseMean { pred: Var, target: Tensor },
    /// 1-D convolution with bias over channel-major rows.
    Conv1d {
        input: Var,
        kernel: Var,
        bias: Var,
        in_ch: usize,
        out_ch: usize,
        ksize: usize,
        stride: usize,
        in_len: usize,
    },
}

struct Node {
    op: Op,
    value: Tensor,
    grad: Option<Tensor>,
}

/// A define-by-run computation tape.
///
/// Built with [`Graph::with_arena`], all node value/gradient buffers are
/// drawn from (and recycled to) the arena; the node list itself keeps its
/// capacity across [`Graph::reset`], so a warm graph rebuilds a
/// same-shaped step without heap allocations.
pub struct Graph {
    nodes: Vec<Node>,
    arena: Option<Rc<TensorArena>>,
    precision: Precision,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Graph {
    fn drop(&mut self) {
        self.reset();
    }
}

impl Graph {
    /// Creates an empty tape (plain heap allocation, no arena).
    pub fn new() -> Self {
        Graph { nodes: Vec::new(), arena: None, precision: Precision::Strict }
    }

    /// Creates an empty tape whose node buffers come from `arena`.
    pub fn with_arena(arena: Rc<TensorArena>) -> Self {
        Graph { nodes: Vec::new(), arena: Some(arena), precision: Precision::Strict }
    }

    /// The arena backing this tape, if any.
    pub fn arena(&self) -> Option<&Rc<TensorArena>> {
        self.arena.as_ref()
    }

    /// Sets the multiply-accumulate rounding policy for this tape's
    /// matmul forward *and* backward kernels. `Strict` (the default)
    /// keeps the historical separately rounded semantics; `Fused` is the
    /// opt-in fused-FMA training path — still deterministic per backend,
    /// but not bit-comparable with `Strict` results. Survives
    /// [`Graph::reset`], so a thread-local step graph keeps its policy.
    pub fn set_precision(&mut self, precision: Precision) {
        self.precision = precision;
    }

    /// The tape's current multiply-accumulate rounding policy.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Clears the tape for reuse, recycling every node value and gradient
    /// buffer into the arena (when present). Also runs on drop.
    pub fn reset(&mut self) {
        match &self.arena {
            Some(arena) => {
                for node in self.nodes.drain(..) {
                    arena.recycle(node.value);
                    if let Some(g) = node.grad {
                        arena.recycle(g);
                    }
                }
            }
            None => self.nodes.clear(),
        }
    }

    /// A zeroed tensor from the arena (or the heap without one).
    fn alloc(&self, rows: usize, cols: usize) -> Tensor {
        match &self.arena {
            Some(arena) => arena.alloc(rows, cols),
            None => Tensor::zeros(rows, cols),
        }
    }

    /// An arena-backed copy of `src`.
    fn alloc_copy(&self, src: &Tensor) -> Tensor {
        let mut t = self.alloc(src.rows(), src.cols());
        t.data_mut().copy_from_slice(src.data());
        t
    }

    /// Returns a scratch tensor to the arena (no-op without one).
    fn recycle(&self, t: Tensor) {
        if let Some(arena) = &self.arena {
            arena.recycle(t);
        }
    }

    fn push(&mut self, op: Op, value: Tensor) -> Var {
        self.nodes.push(Node { op, value, grad: None });
        Var(self.nodes.len() - 1)
    }

    /// The current value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The gradient of a node after [`Graph::backward`] (if it received one).
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a constant (non-learnable) leaf.
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.push(Op::Constant, value)
    }

    /// References a full parameter matrix.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let value = self.alloc_copy(store.value(id));
        self.push(Op::Param(id), value)
    }

    /// Looks up rows of a parameter table (embedding gather).
    pub fn gather(&mut self, store: &ParamStore, id: ParamId, indices: impl IntoIndexArc) -> Var {
        let indices = indices.into_index_arc();
        let table = store.value(id);
        let mut value = self.alloc(indices.len(), table.cols());
        for (i, &idx) in indices.iter().enumerate() {
            value.set_row(i, table.row(idx as usize));
        }
        self.push(Op::Gather { param: id, indices }, value)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let mut value = self.alloc(self.value(a).rows(), self.value(b).cols());
        self.value(a).matmul_into_prec(self.value(b), &mut value, self.precision);
        self.push(Op::MatMul(a, b), value)
    }

    /// Element-wise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let mut value = self.alloc_copy(self.value(a));
        value.axpy(1.0, self.value(b));
        self.push(Op::Add(a, b), value)
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let mut value = self.alloc_copy(self.value(a));
        value.axpy(-1.0, self.value(b));
        self.push(Op::Sub(a, b), value)
    }

    /// Element-wise product.
    pub fn mul_elem(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.value(a).shape(), self.value(b).shape());
        let mut value = self.alloc(self.value(a).rows(), self.value(a).cols());
        for ((o, &x), &y) in
            value.data_mut().iter_mut().zip(self.value(a).data()).zip(self.value(b).data())
        {
            *o = x * y;
        }
        self.push(Op::MulElem(a, b), value)
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let mut value = self.alloc(self.value(a).rows(), self.value(a).cols());
        for (o, &x) in value.data_mut().iter_mut().zip(self.value(a).data()) {
            *o = c * x;
        }
        self.push(Op::Scale(a, c), value)
    }

    /// Horizontal concatenation `[a | b]` (paper's CONCAT in Eq. 4/6).
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (m, n1, n2) = {
            let (av, bv) = (self.value(a), self.value(b));
            assert_eq!(av.rows(), bv.rows(), "concat_cols row mismatch");
            (av.rows(), av.cols(), bv.cols())
        };
        let mut value = self.alloc(m, n1 + n2);
        {
            let av = self.value(a);
            let bv = self.value(b);
            for i in 0..m {
                value.row_mut(i)[..n1].copy_from_slice(av.row(i));
                value.row_mut(i)[n1..].copy_from_slice(bv.row(i));
            }
        }
        self.push(Op::ConcatCols(a, b), value)
    }

    /// Element-wise nonlinearity.
    pub fn activation(&mut self, a: Var, act: Activation) -> Var {
        let mut value = self.alloc_copy(self.value(a));
        act.forward_slice(value.data_mut());
        self.push(Op::Act(a, act), value)
    }

    /// Row-wise L2 normalization (paper Eq. 7). Zero rows stay zero.
    pub fn row_l2_normalize(&mut self, a: Var) -> Var {
        let mut value = self.alloc_copy(self.value(a));
        for i in 0..value.rows() {
            let norm = value.row(i).iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 1e-12 {
                for x in value.row_mut(i) {
                    *x /= norm;
                }
            }
        }
        self.push(Op::RowL2Norm(a), value)
    }

    /// Weighted aggregation over sampled neighborhoods: `offsets` has one
    /// entry per output row giving the start of its segment in `input`
    /// (plus a final end sentinel); `weights` has one entry per input row.
    /// Callers normalize weights per segment to implement the paper's
    /// weighted-mean aggregator.
    ///
    /// The buffers are taken as (convertible-to) `Arc`s so a caller that
    /// reuses one neighborhood tree across several ops shares the
    /// allocations instead of cloning them per forward pass.
    pub fn segment_weighted_sum(
        &mut self,
        input: Var,
        offsets: impl Into<Arc<Vec<u32>>>,
        weights: impl Into<Arc<Vec<f32>>>,
    ) -> Var {
        let offsets = offsets.into();
        let weights = weights.into();
        let (n_seg, d) = {
            let inp = self.value(input);
            assert_eq!(weights.len(), inp.rows(), "one weight per input row");
            assert!(!offsets.is_empty(), "offsets needs an end sentinel");
            assert_eq!(*offsets.last().unwrap() as usize, inp.rows(), "sentinel mismatch");
            (offsets.len() - 1, inp.cols())
        };
        let mut value = self.alloc(n_seg, d);
        {
            let inp = self.value(input);
            for s in 0..n_seg {
                let (lo, hi) = (offsets[s] as usize, offsets[s + 1] as usize);
                let dst = value.row_mut(s);
                for (j, &w) in weights.iter().enumerate().take(hi).skip(lo) {
                    kernels::axpy(dst, w, inp.row(j));
                }
            }
        }
        self.push(Op::SegmentWeightedSum { input, offsets, weights }, value)
    }

    /// Selects rows of a node's value by index (repetition allowed) —
    /// used to slice batches apart and to align positives with their
    /// repeated negative samples.
    pub fn select_rows(&mut self, input: Var, indices: impl IntoIndexArc) -> Var {
        let indices = indices.into_index_arc();
        let mut value = self.alloc(indices.len(), self.value(input).cols());
        {
            let inp = self.value(input);
            for (i, &idx) in indices.iter().enumerate() {
                value.set_row(i, inp.row(idx as usize));
            }
        }
        self.push(Op::SelectRows { input, indices }, value)
    }

    /// Row-wise dot products → column vector.
    pub fn rows_dot(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.value(a).shape(), self.value(b).shape(), "rows_dot shape mismatch");
        let m = self.value(a).rows();
        let mut value = self.alloc(m, 1);
        {
            let (av, bv) = (self.value(a), self.value(b));
            for i in 0..m {
                value[(i, 0)] = av.row(i).iter().zip(bv.row(i)).map(|(&x, &y)| x * y).sum();
            }
        }
        self.push(Op::RowsDot(a, b), value)
    }

    /// Broadcast row-bias add.
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Var {
        {
            let (av, bv) = (self.value(a), self.value(bias));
            assert_eq!(bv.rows(), 1, "bias must be a row vector");
            assert_eq!(av.cols(), bv.cols(), "bias width mismatch");
        }
        let mut value = self.alloc_copy(self.value(a));
        {
            let bv = self.value(bias);
            for i in 0..value.rows() {
                for (x, &b) in value.row_mut(i).iter_mut().zip(bv.row(0)) {
                    *x += b;
                }
            }
        }
        self.push(Op::AddBias(a, bias), value)
    }

    /// Mean binary cross-entropy with logits: implements the negative-
    /// sampling loss (paper Eq. 8) with targets 1 for positive pairs and 0
    /// for negatives. Numerically stable softplus formulation.
    pub fn bce_with_logits_mean(&mut self, scores: Var, targets: impl IntoTargetArc) -> Var {
        let targets = targets.into_target_arc();
        let sv = self.value(scores);
        assert_eq!(sv.cols(), 1, "scores must be a column vector");
        assert_eq!(sv.rows(), targets.len(), "one target per score");
        let m = targets.len().max(1);
        let mut loss = 0.0f64;
        for (i, &t) in targets.iter().enumerate() {
            let s = sv[(i, 0)];
            // softplus(s) - t*s, stable for |s| large.
            let softplus = s.max(0.0) + (-s.abs()).exp().ln_1p();
            loss += (softplus - t * s) as f64;
        }
        let mut value = self.alloc(1, 1);
        value[(0, 0)] = (loss / m as f64) as f32;
        self.push(Op::BceWithLogitsMean { scores, targets }, value)
    }

    /// Mean squared error against a fixed target.
    pub fn mse_mean(&mut self, pred: Var, target: Tensor) -> Var {
        let pv = self.value(pred);
        assert_eq!(pv.shape(), target.shape(), "mse shape mismatch");
        let n = pv.len().max(1);
        let mut loss = 0.0f64;
        for (&p, &t) in pv.data().iter().zip(target.data()) {
            let d = (p - t) as f64;
            loss += d * d;
        }
        let mut value = self.alloc(1, 1);
        value[(0, 0)] = (loss / n as f64) as f32;
        self.push(Op::MseMean { pred, target }, value)
    }

    /// Valid (no-padding) 1-D convolution with per-output-channel bias.
    ///
    /// `input` rows are channel-major: `in_ch` blocks of `in_len` samples.
    /// `kernel` is `(out_ch × in_ch·ksize)`; `bias` is `(1 × out_ch)`.
    /// Output rows are `out_ch` blocks of `out_len` samples where
    /// `out_len = (in_len - ksize) / stride + 1`.
    #[allow(clippy::too_many_arguments)]
    pub fn conv1d(
        &mut self,
        input: Var,
        kernel: Var,
        bias: Var,
        in_ch: usize,
        out_ch: usize,
        ksize: usize,
        stride: usize,
    ) -> Var {
        let (in_len, out_len, batch) = {
            let (iv, kv, bv) = (self.value(input), self.value(kernel), self.value(bias));
            assert_eq!(iv.cols() % in_ch, 0, "input width must be in_ch * in_len");
            let in_len = iv.cols() / in_ch;
            assert!(in_len >= ksize, "input shorter than kernel");
            assert_eq!(kv.shape(), (out_ch, in_ch * ksize), "kernel shape");
            assert_eq!(bv.shape(), (1, out_ch), "bias shape");
            ((iv.cols() / in_ch), (in_len - ksize) / stride + 1, iv.rows())
        };
        let mut value = self.alloc(batch, out_ch * out_len);
        {
            let (iv, kv, bv) = (self.value(input), self.value(kernel), self.value(bias));
            for b in 0..batch {
                let in_row = iv.row(b);
                for oc in 0..out_ch {
                    let k_row = kv.row(oc);
                    let bias_v = bv[(0, oc)];
                    for p in 0..out_len {
                        let mut acc = bias_v;
                        for ic in 0..in_ch {
                            let in_base = ic * in_len + p * stride;
                            let k_base = ic * ksize;
                            for kk in 0..ksize {
                                acc += in_row[in_base + kk] * k_row[k_base + kk];
                            }
                        }
                        value[(b, oc * out_len + p)] = acc;
                    }
                }
            }
        }
        self.push(Op::Conv1d { input, kernel, bias, in_ch, out_ch, ksize, stride, in_len }, value)
    }

    /// Adds an owned `delta` into the gradient of `v`, recycling the
    /// buffer when the node already has one.
    fn accumulate(&mut self, v: Var, delta: Tensor) {
        let spare = {
            let node = &mut self.nodes[v.0];
            match &mut node.grad {
                Some(g) => {
                    g.axpy(1.0, &delta);
                    Some(delta)
                }
                None => {
                    node.grad = Some(delta);
                    None
                }
            }
        };
        if let Some(t) = spare {
            self.recycle(t);
        }
    }

    /// Adds a borrowed `delta` into the gradient of `v` (copying only
    /// when the node has no gradient yet).
    fn accumulate_ref(&mut self, v: Var, delta: &Tensor) {
        if self.nodes[v.0].grad.is_some() {
            self.nodes[v.0].grad.as_mut().unwrap().axpy(1.0, delta);
        } else {
            let copy = self.alloc_copy(delta);
            self.nodes[v.0].grad = Some(copy);
        }
    }

    /// Runs the reverse pass from scalar node `loss` (seeded with 1.0),
    /// accumulating parameter gradients into `store`.
    ///
    /// The tape is consumed structurally: ops are taken out as they are
    /// processed, so `backward` can only run once per graph. Node values
    /// and gradients remain readable afterwards.
    pub fn backward(&mut self, loss: Var, store: &mut ParamStore) {
        self.backward_impl(loss, store);
    }

    /// [`Graph::backward`] writing into a detached [`GradStore`] instead
    /// of the parameter store. The store is never touched, so workers on
    /// other threads can backprop concurrently against one shared
    /// `&ParamStore` snapshot, each into its own sink.
    pub fn backward_into(&mut self, loss: Var, sink: &mut GradStore) {
        self.backward_impl(loss, sink);
    }

    fn backward_impl<S: GradSink>(&mut self, loss: Var, store: &mut S) {
        assert_eq!(self.value(loss).shape(), (1, 1), "loss must be scalar");
        let mut seed = self.alloc(1, 1);
        seed[(0, 0)] = 1.0;
        self.nodes[loss.0].grad = Some(seed);

        for idx in (0..self.nodes.len()).rev() {
            let Some(grad) = self.nodes[idx].grad.take() else {
                continue;
            };
            // Take the op out to release the borrow on `self.nodes`.
            let op = std::mem::replace(&mut self.nodes[idx].op, Op::Constant);
            match op {
                Op::Constant => {}
                Op::Param(id) => {
                    store.add_dense(id, &grad);
                }
                Op::Gather { param, indices } => {
                    store.scatter_rows(param, &indices, &grad);
                }
                Op::MatMul(a, b) => {
                    let prec = self.precision;
                    let mut da = self.alloc(grad.rows(), self.value(b).rows());
                    grad.matmul_nt_into_prec(self.value(b), &mut da, prec);
                    let mut db = self.alloc(self.value(a).cols(), grad.cols());
                    self.value(a).matmul_tn_into_prec(&grad, &mut db, prec);
                    self.accumulate(a, da);
                    self.accumulate(b, db);
                }
                Op::Add(a, b) => {
                    self.accumulate_ref(a, &grad);
                    self.accumulate_ref(b, &grad);
                }
                Op::Sub(a, b) => {
                    self.accumulate_ref(a, &grad);
                    let mut neg = self.alloc_copy(&grad);
                    neg.scale_in_place(-1.0);
                    self.accumulate(b, neg);
                }
                Op::MulElem(a, b) => {
                    let mut da = self.alloc(grad.rows(), grad.cols());
                    let mut db = self.alloc(grad.rows(), grad.cols());
                    for ((d, &g), &y) in
                        da.data_mut().iter_mut().zip(grad.data()).zip(self.value(b).data())
                    {
                        *d = g * y;
                    }
                    for ((e, &g), &x) in
                        db.data_mut().iter_mut().zip(grad.data()).zip(self.value(a).data())
                    {
                        *e = g * x;
                    }
                    self.accumulate(a, da);
                    self.accumulate(b, db);
                }
                Op::Scale(a, c) => {
                    let mut da = self.alloc(grad.rows(), grad.cols());
                    for (d, &g) in da.data_mut().iter_mut().zip(grad.data()) {
                        *d = c * g;
                    }
                    self.accumulate(a, da);
                }
                Op::ConcatCols(a, b) => {
                    let n1 = self.value(a).cols();
                    let n2 = self.value(b).cols();
                    let m = grad.rows();
                    let mut da = self.alloc(m, n1);
                    let mut db = self.alloc(m, n2);
                    for i in 0..m {
                        da.row_mut(i).copy_from_slice(&grad.row(i)[..n1]);
                        db.row_mut(i).copy_from_slice(&grad.row(i)[n1..]);
                    }
                    self.accumulate(a, da);
                    self.accumulate(b, db);
                }
                Op::Act(a, act) => {
                    let mut da = self.alloc(grad.rows(), grad.cols());
                    {
                        let x = self.value(a);
                        let y = &self.nodes[idx].value;
                        for ((d, &g), (&xv, &yv)) in da
                            .data_mut()
                            .iter_mut()
                            .zip(grad.data())
                            .zip(x.data().iter().zip(y.data()))
                        {
                            *d = g * act.derivative(xv, yv);
                        }
                    }
                    self.accumulate(a, da);
                }
                Op::RowL2Norm(a) => {
                    let mut da = self.alloc(grad.rows(), grad.cols());
                    {
                        let x = self.value(a);
                        let y = &self.nodes[idx].value;
                        for i in 0..grad.rows() {
                            let norm = x.row(i).iter().map(|v| v * v).sum::<f32>().sqrt();
                            if norm <= 1e-12 {
                                continue; // forward left the row at zero
                            }
                            let y_row = y.row(i);
                            let g_row = grad.row(i);
                            let ydotg: f32 = y_row.iter().zip(g_row).map(|(&a, &b)| a * b).sum();
                            for ((d, &g), &yv) in da.row_mut(i).iter_mut().zip(g_row).zip(y_row) {
                                *d = (g - yv * ydotg) / norm;
                            }
                        }
                    }
                    self.accumulate(a, da);
                }
                Op::SegmentWeightedSum { input, offsets, weights } => {
                    let inp_shape = self.value(input).shape();
                    let mut da = self.alloc(inp_shape.0, inp_shape.1);
                    for s in 0..offsets.len() - 1 {
                        let (lo, hi) = (offsets[s] as usize, offsets[s + 1] as usize);
                        let g_row = grad.row(s);
                        for (j, &w) in weights.iter().enumerate().take(hi).skip(lo) {
                            kernels::axpy(da.row_mut(j), w, g_row);
                        }
                    }
                    self.accumulate(input, da);
                }
                Op::SelectRows { input, indices } => {
                    let shape = self.value(input).shape();
                    let mut da = self.alloc(shape.0, shape.1);
                    for (i, &idx2) in indices.iter().enumerate() {
                        let dst = da.row_mut(idx2 as usize);
                        for (d, &g) in dst.iter_mut().zip(grad.row(i)) {
                            *d += g;
                        }
                    }
                    self.accumulate(input, da);
                }
                Op::RowsDot(a, b) => {
                    let (m, n) = self.value(a).shape();
                    let mut da = self.alloc(m, n);
                    let mut db = self.alloc(m, n);
                    {
                        let (av, bv) = (self.value(a), self.value(b));
                        for i in 0..m {
                            let g = grad[(i, 0)];
                            for ((d, &y), (e, &x)) in da
                                .row_mut(i)
                                .iter_mut()
                                .zip(bv.row(i))
                                .zip(db.row_mut(i).iter_mut().zip(av.row(i)))
                            {
                                *d = g * y;
                                *e = g * x;
                            }
                        }
                    }
                    self.accumulate(a, da);
                    self.accumulate(b, db);
                }
                Op::AddBias(a, bias) => {
                    self.accumulate_ref(a, &grad);
                    let mut db = self.alloc(1, grad.cols());
                    for i in 0..grad.rows() {
                        for (d, &g) in db.row_mut(0).iter_mut().zip(grad.row(i)) {
                            *d += g;
                        }
                    }
                    self.accumulate(bias, db);
                }
                Op::BceWithLogitsMean { scores, targets } => {
                    let g = grad[(0, 0)];
                    let m = targets.len().max(1) as f32;
                    let mut ds = self.alloc(self.value(scores).rows(), 1);
                    {
                        let sv = self.value(scores);
                        for (i, &t) in targets.iter().enumerate() {
                            let s = sv[(i, 0)];
                            let sigma = 1.0 / (1.0 + (-s).exp());
                            ds[(i, 0)] = g * (sigma - t) / m;
                        }
                    }
                    self.accumulate(scores, ds);
                }
                Op::MseMean { pred, target } => {
                    let g = grad[(0, 0)];
                    let n = target.len().max(1) as f32;
                    let mut dp = self.alloc(self.value(pred).rows(), self.value(pred).cols());
                    {
                        let pv = self.value(pred);
                        for ((d, &p), &t) in
                            dp.data_mut().iter_mut().zip(pv.data()).zip(target.data())
                        {
                            *d = g * 2.0 * (p - t) / n;
                        }
                    }
                    self.accumulate(pred, dp);
                }
                Op::Conv1d { input, kernel, bias, in_ch, out_ch, ksize, stride, in_len } => {
                    let out_len = (in_len - ksize) / stride + 1;
                    let batch = self.value(input).rows();
                    let mut di = self.alloc(batch, in_ch * in_len);
                    let mut dk = self.alloc(out_ch, in_ch * ksize);
                    let mut db = self.alloc(1, out_ch);
                    {
                        let (iv, kv) = (self.value(input), self.value(kernel));
                        for b in 0..batch {
                            for oc in 0..out_ch {
                                for p in 0..out_len {
                                    let g = grad[(b, oc * out_len + p)];
                                    if g == 0.0 {
                                        continue;
                                    }
                                    db[(0, oc)] += g;
                                    for ic in 0..in_ch {
                                        let in_base = ic * in_len + p * stride;
                                        let k_base = ic * ksize;
                                        for kk in 0..ksize {
                                            di[(b, in_base + kk)] += g * kv[(oc, k_base + kk)];
                                            dk[(oc, k_base + kk)] += g * iv[(b, in_base + kk)];
                                        }
                                    }
                                }
                            }
                        }
                    }
                    self.accumulate(input, di);
                    self.accumulate(kernel, dk);
                    self.accumulate(bias, db);
                }
            }
            // Re-install so callers can inspect intermediate grads.
            self.nodes[idx].grad = Some(grad);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Central finite-difference check of `d loss / d param` for every
    /// element of every parameter used by `build`.
    fn grad_check(
        store: &mut ParamStore,
        build: &mut dyn FnMut(&mut Graph, &ParamStore) -> Var,
        tol: f32,
    ) {
        // Analytic gradients.
        store.zero_grads();
        let mut g = Graph::new();
        let loss = build(&mut g, store);
        g.backward(loss, store);
        let analytic: Vec<Tensor> = store.ids().map(|id| store.grad(id).clone()).collect();

        let eps = 3e-3f32;
        for id in store.ids() {
            let (rows, cols) = store.value(id).shape();
            for i in 0..rows {
                for j in 0..cols {
                    let orig = store.value(id)[(i, j)];
                    store.value_mut(id)[(i, j)] = orig + eps;
                    let mut gp = Graph::new();
                    let lp = build(&mut gp, store);
                    let fp = gp.value(lp)[(0, 0)];
                    store.value_mut(id)[(i, j)] = orig - eps;
                    let mut gm = Graph::new();
                    let lm = build(&mut gm, store);
                    let fm = gm.value(lm)[(0, 0)];
                    store.value_mut(id)[(i, j)] = orig;
                    let numeric = (fp - fm) / (2.0 * eps);
                    let a = analytic[id.0][(i, j)];
                    assert!(
                        (a - numeric).abs() <= tol * (1.0 + numeric.abs().max(a.abs())),
                        "param {} [{i},{j}]: analytic {a} vs numeric {numeric}",
                        store.name(id),
                    );
                }
            }
        }
    }

    fn rand_tensor(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
        Tensor::from_fn(rows, cols, |_, _| rng.random_range(-1.0..1.0f32))
    }

    #[test]
    fn grad_matmul_chain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let w1 = store.add("w1", rand_tensor(&mut rng, 3, 4));
        let w2 = store.add("w2", rand_tensor(&mut rng, 4, 2));
        let x = rand_tensor(&mut rng, 2, 3);
        let target = rand_tensor(&mut rng, 2, 2);
        grad_check(
            &mut store,
            &mut |g, s| {
                let xv = g.constant(x.clone());
                let a = g.param(s, w1);
                let b = g.param(s, w2);
                let h = g.matmul(xv, a);
                let y = g.matmul(h, b);
                g.mse_mean(y, target.clone())
            },
            1e-2,
        );
    }

    #[test]
    fn grad_activations() {
        for act in [
            Activation::Relu,
            Activation::LeakyRelu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Identity,
        ] {
            let mut rng = StdRng::seed_from_u64(2);
            let mut store = ParamStore::new();
            // Keep values away from the ReLU kink for stable finite diffs.
            let w = store.add(
                "w",
                Tensor::from_fn(2, 3, |_, _| {
                    let v: f32 = rng.random_range(0.1..1.0);
                    if rng.random_bool(0.5) {
                        v
                    } else {
                        -v
                    }
                }),
            );
            let target = rand_tensor(&mut rng, 2, 3);
            grad_check(
                &mut store,
                &mut |g, s| {
                    let a = g.param(s, w);
                    let y = g.activation(a, act);
                    g.mse_mean(y, target.clone())
                },
                2e-2,
            );
        }
    }

    #[test]
    fn grad_row_l2_normalize() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let w = store.add("w", rand_tensor(&mut rng, 3, 4));
        let target = rand_tensor(&mut rng, 3, 4);
        grad_check(
            &mut store,
            &mut |g, s| {
                let a = g.param(s, w);
                let y = g.row_l2_normalize(a);
                g.mse_mean(y, target.clone())
            },
            2e-2,
        );
    }

    #[test]
    fn grad_concat_and_bias() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let a = store.add("a", rand_tensor(&mut rng, 2, 3));
        let b = store.add("b", rand_tensor(&mut rng, 2, 2));
        let bias = store.add("bias", rand_tensor(&mut rng, 1, 5));
        let target = rand_tensor(&mut rng, 2, 5);
        grad_check(
            &mut store,
            &mut |g, s| {
                let av = g.param(s, a);
                let bv = g.param(s, b);
                let cat = g.concat_cols(av, bv);
                let biasv = g.param(s, bias);
                let y = g.add_bias(cat, biasv);
                g.mse_mean(y, target.clone())
            },
            1e-2,
        );
    }

    #[test]
    fn grad_segment_weighted_sum() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let w = store.add("w", rand_tensor(&mut rng, 5, 3));
        let target = rand_tensor(&mut rng, 2, 3);
        let offsets = vec![0u32, 2, 5];
        let weights = vec![0.6, 0.4, 0.2, 0.5, 0.3];
        grad_check(
            &mut store,
            &mut |g, s| {
                let a = g.param(s, w);
                let y = g.segment_weighted_sum(a, offsets.clone(), weights.clone());
                g.mse_mean(y, target.clone())
            },
            1e-2,
        );
    }

    #[test]
    fn grad_rows_dot_and_bce() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let a = store.add("a", rand_tensor(&mut rng, 4, 3));
        let b = store.add("b", rand_tensor(&mut rng, 4, 3));
        let targets = vec![1.0, 0.0, 1.0, 0.0];
        grad_check(
            &mut store,
            &mut |g, s| {
                let av = g.param(s, a);
                let bv = g.param(s, b);
                let scores = g.rows_dot(av, bv);
                g.bce_with_logits_mean(scores, &targets)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_gather_scatter() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let table = store.add("table", rand_tensor(&mut rng, 6, 3));
        let target = rand_tensor(&mut rng, 4, 3);
        // Repeated index 2 exercises scatter-add accumulation.
        let idx = vec![2u32, 0, 2, 5];
        grad_check(
            &mut store,
            &mut |g, s| {
                let a = g.gather(s, table, &idx);
                g.mse_mean(a, target.clone())
            },
            1e-2,
        );
    }

    #[test]
    fn grad_select_rows() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let w = store.add("w", rand_tensor(&mut rng, 4, 3));
        let target = rand_tensor(&mut rng, 5, 3);
        // Repeats exercise gradient accumulation.
        let idx = vec![0u32, 2, 2, 3, 0];
        grad_check(
            &mut store,
            &mut |g, s| {
                let a = g.param(s, w);
                let sel = g.select_rows(a, &idx);
                g.mse_mean(sel, target.clone())
            },
            1e-2,
        );
    }

    #[test]
    fn grad_mul_scale_sub() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut store = ParamStore::new();
        let a = store.add("a", rand_tensor(&mut rng, 2, 3));
        let b = store.add("b", rand_tensor(&mut rng, 2, 3));
        let target = rand_tensor(&mut rng, 2, 3);
        grad_check(
            &mut store,
            &mut |g, s| {
                let av = g.param(s, a);
                let bv = g.param(s, b);
                let prod = g.mul_elem(av, bv);
                let scaled = g.scale(prod, 1.7);
                let diff = g.sub(scaled, bv);
                g.mse_mean(diff, target.clone())
            },
            1e-2,
        );
    }

    #[test]
    fn grad_conv1d() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        let (in_ch, out_ch, ksize, stride, in_len, batch) = (2, 3, 3, 2, 8, 2);
        let out_len = (in_len - ksize) / stride + 1;
        let input = store.add("input", rand_tensor(&mut rng, batch, in_ch * in_len));
        let kernel = store.add("kernel", rand_tensor(&mut rng, out_ch, in_ch * ksize));
        let bias = store.add("bias", rand_tensor(&mut rng, 1, out_ch));
        let target = rand_tensor(&mut rng, batch, out_ch * out_len);
        grad_check(
            &mut store,
            &mut |g, s| {
                let iv = g.param(s, input);
                let kv = g.param(s, kernel);
                let bv = g.param(s, bias);
                let y = g.conv1d(iv, kv, bv, in_ch, out_ch, ksize, stride);
                g.mse_mean(y, target.clone())
            },
            1.5e-2,
        );
    }

    #[test]
    fn shared_param_accumulates_grads() {
        // loss = mse(w + w) pulls gradient through two paths.
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(1, 1, vec![3.0]));
        let mut g = Graph::new();
        let a = g.param(&store, w);
        let b = g.param(&store, w);
        let sum = g.add(a, b);
        let loss = g.mse_mean(sum, Tensor::from_vec(1, 1, vec![0.0]));
        g.backward(loss, &mut store);
        // d/dw (2w)^2 = 8w = 24.
        assert!((store.grad(w)[(0, 0)] - 24.0).abs() < 1e-4);
    }

    #[test]
    fn clip_grad_norm_bounds_gradients() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(1, 2, vec![10.0, 0.0]));
        let mut g = Graph::new();
        let a = g.param(&store, w);
        let loss = g.mse_mean(a, Tensor::zeros(1, 2));
        g.backward(loss, &mut store);
        store.clip_grad_norm(1.0);
        assert!((store.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn backward_into_matches_backward_bitwise() {
        // The detached-sink path must be indistinguishable from the
        // in-store path: same ops, same accumulation order, same bits.
        // The table gradient lands in the sink's sparse representation;
        // materialized, it must equal the store's dense scatter exactly.
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let w = store.add("w", rand_tensor(&mut rng, 6, 4));
        let table = store.add("table", rand_tensor(&mut rng, 5, 6));
        let target = rand_tensor(&mut rng, 3, 4);
        let build = |g: &mut Graph, s: &ParamStore| {
            let rows = g.gather(s, table, &[0u32, 2, 4]);
            let wv = g.param(s, w);
            let y = g.matmul(rows, wv);
            g.mse_mean(y, target.clone())
        };

        store.zero_grads();
        let mut g1 = Graph::new();
        let loss1 = build(&mut g1, &store);
        g1.backward(loss1, &mut store);

        let mut sink = GradStore::zeros_like(&store);
        let mut g2 = Graph::new();
        let loss2 = build(&mut g2, &store);
        g2.backward_into(loss2, &mut sink);

        assert!(sink.dense(w).is_some(), "dense param uses the dense entry");
        assert!(sink.sparse(table).is_some(), "gathered table uses the sparse entry");
        assert_eq!(store.grad(w), &sink.to_dense(w));
        assert_eq!(store.grad(table), &sink.to_dense(table));

        // Reducing the sink into a zeroed store reproduces the direct
        // gradients exactly (x + 0 = x in f32 for the values involved).
        store.zero_grads();
        store.apply_grads(&sink, 1.0);
        assert_eq!(store.grad(w), &sink.to_dense(w));
        assert_eq!(store.grad(table), &sink.to_dense(table));
    }

    #[test]
    fn zero_row_l2_norm_is_stable() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(2, 3));
        let mut g = Graph::new();
        let a = g.param(&store, w);
        let y = g.row_l2_normalize(a);
        let loss = g.mse_mean(y, Tensor::full(2, 3, 1.0));
        g.backward(loss, &mut store);
        assert!(store.grad(w).data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn arena_graph_matches_plain_graph_bitwise() {
        // Same step built on a plain tape and an arena tape must produce
        // the same loss and the same gradients, bit for bit.
        let mut rng = StdRng::seed_from_u64(21);
        let mut store = ParamStore::new();
        let w = store.add("w", rand_tensor(&mut rng, 4, 3));
        let table = store.add("table", rand_tensor(&mut rng, 6, 4));
        let target = rand_tensor(&mut rng, 3, 3);
        let idx = vec![1u32, 3, 1];
        let build = |g: &mut Graph, s: &ParamStore| {
            let rows = g.gather(s, table, &idx);
            let wv = g.param(s, w);
            let h = g.matmul(rows, wv);
            let n = g.row_l2_normalize(h);
            g.mse_mean(n, target.clone())
        };

        store.zero_grads();
        let mut plain = Graph::new();
        let l1 = build(&mut plain, &store);
        plain.backward(l1, &mut store);
        let plain_loss = plain.value(l1).clone();
        let plain_gw = store.grad(w).clone();
        let plain_gt = store.grad(table).clone();

        store.zero_grads();
        let arena = Rc::new(TensorArena::new());
        let mut g = Graph::with_arena(Rc::clone(&arena));
        let l2 = build(&mut g, &store);
        g.backward(l2, &mut store);
        assert_eq!(g.value(l2), &plain_loss);
        assert_eq!(store.grad(w), &plain_gw);
        assert_eq!(store.grad(table), &plain_gt);
    }

    #[test]
    fn arena_graph_reuses_buffers_across_steps() {
        // After one warm-up step, rebuilding the same-shaped step on a
        // reset tape must allocate no fresh buffers from the arena.
        let mut rng = StdRng::seed_from_u64(22);
        let mut store = ParamStore::new();
        let w = store.add("w", rand_tensor(&mut rng, 4, 3));
        let target = rand_tensor(&mut rng, 4, 3);
        let arena = Rc::new(TensorArena::new());
        let mut g = Graph::with_arena(Rc::clone(&arena));

        for step in 0..3 {
            store.zero_grads();
            g.reset();
            let wv = g.param(&store, w);
            let y = g.row_l2_normalize(wv);
            let loss = g.mse_mean(y, target.clone());
            g.backward(loss, &mut store);
            if step == 0 {
                // Warm-up primes the free lists.
                assert!(arena.stats().fresh > 0);
            }
        }
        let stats = arena.stats();
        // Steps 1 and 2 were served entirely from recycled buffers.
        assert!(stats.reused >= 2 * stats.fresh, "expected warm steps to reuse buffers: {stats:?}");
        drop(g);
        assert!(arena.pooled_buffers() > 0);
    }

    #[test]
    fn sparse_tracking_matches_dense_norm_and_clip() {
        // A sparse-tracked table and an identical untracked one must see
        // bitwise-identical gradients through scatter, norm, clip, zero.
        let mut rng = StdRng::seed_from_u64(23);
        let init = rand_tensor(&mut rng, 8, 3);
        let target = rand_tensor(&mut rng, 4, 3);
        let idx = vec![5u32, 1, 5, 2];

        let run = |sparse: bool| -> (f32, Tensor) {
            let mut store = ParamStore::new();
            let table = store.add("table", init.clone());
            if sparse {
                store.mark_sparse(table);
            }
            store.zero_grads();
            let mut g = Graph::new();
            let rows = g.gather(&store, table, &idx);
            let loss = g.mse_mean(rows, target.clone());
            g.backward(loss, &mut store);
            store.clip_grad_norm(0.01); // force a rescale
            (store.grad_norm(), store.grad(table).clone())
        };

        let (dense_norm, dense_grad) = run(false);
        let (sparse_norm, sparse_grad) = run(true);
        assert_eq!(dense_norm.to_bits(), sparse_norm.to_bits());
        assert_eq!(dense_grad, sparse_grad);
    }

    #[test]
    fn sparse_zero_grads_clears_only_touched_rows() {
        let mut store = ParamStore::new();
        let table = store.add("table", Tensor::zeros(6, 2));
        store.mark_sparse(table);
        let mut g = Graph::new();
        let rows = g.gather(&store, table, &[1u32, 4]);
        let loss = g.mse_mean(rows, Tensor::full(2, 2, 1.0));
        g.backward(loss, &mut store);

        let mut touched = Vec::new();
        assert_eq!(store.collect_touched_rows(table, &mut touched), Touched::Rows);
        assert_eq!(touched, vec![1, 4]);
        assert!(store.grad(table).row(1).iter().any(|&x| x != 0.0));

        store.zero_grads();
        assert!(store.grad(table).data().iter().all(|&x| x == 0.0));
        assert_eq!(store.collect_touched_rows(table, &mut touched), Touched::Rows);
        assert!(touched.is_empty());
    }

    #[test]
    fn gather_and_select_share_arc_buffers() {
        // Passing an Arc must not copy the index buffer.
        let mut store = ParamStore::new();
        let table = store.add("table", Tensor::full(4, 2, 1.0));
        let idx = Arc::new(vec![0u32, 3]);
        let mut g = Graph::new();
        let rows = g.gather(&store, table, &idx);
        let sel = g.select_rows(rows, idx2_from(&idx));
        assert_eq!(g.value(sel).rows(), 2);
        // Two op references + ours ⇒ the buffer was shared, not copied.
        assert_eq!(Arc::strong_count(&idx), 2);
    }

    fn idx2_from(idx: &Arc<Vec<u32>>) -> Arc<Vec<u32>> {
        Arc::new(idx.iter().map(|&i| i.min(1)).collect())
    }
}
