//! Reverse-mode automatic differentiation on a per-step tape.
//!
//! Usage pattern (define-by-run): create a [`Graph`] for each training
//! step, build the computation with the op methods (values are computed
//! eagerly), call [`Graph::backward`] on the scalar loss, then let an
//! optimizer consume the gradients accumulated in the [`ParamStore`].
//!
//! The op set is deliberately small — exactly what BiSAGE, GraphSAGE and
//! the autoencoder baseline need — and every op's gradient is validated
//! against central finite differences in this module's tests.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// Handle to a learnable parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub usize);

/// A named, learnable tensor plus its gradient accumulator.
#[derive(Clone, Debug)]
struct Param {
    name: String,
    value: Tensor,
    grad: Tensor,
}

/// Container of all learnable parameters of a model.
#[derive(Clone, Debug, Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its id.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.rows(), value.cols());
        self.params.push(Param { name: name.into(), value, grad });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Parameter name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Borrow a parameter value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Mutably borrow a parameter value (optimizers, manual edits).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    /// Borrow a parameter's accumulated gradient.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].grad
    }

    /// Mutably borrow a parameter's gradient.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].grad
    }

    /// Zeroes every gradient accumulator (start of a step).
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.fill_zero();
        }
    }

    /// Iterates over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Global L2 norm of all gradients (for clipping / diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| p.grad.norm_sq())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales all gradients so the global norm is at most `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for p in &mut self.params {
                p.grad.scale_in_place(s);
            }
        }
    }

    /// Accumulates `alpha ×` the sink's gradients into this store's
    /// accumulators — the fixed-order reduction step of data-parallel
    /// training (reduce every worker sink in chunk order, then step).
    pub fn apply_grads(&mut self, sink: &GradStore, alpha: f32) {
        assert_eq!(sink.grads.len(), self.params.len(), "sink shaped for a different store");
        for (p, g) in self.params.iter_mut().zip(&sink.grads) {
            p.grad.axpy(alpha, g);
        }
    }
}

/// Parameter gradients decoupled from the [`ParamStore`] that owns the
/// values. Data-parallel workers each run [`Graph::backward_into`] against
/// a private sink while sharing one read-only store; the reducer then
/// folds the sinks back with [`ParamStore::apply_grads`] in a fixed order,
/// which keeps training results independent of the thread count.
#[derive(Clone, Debug, Default)]
pub struct GradStore {
    grads: Vec<Tensor>,
}

impl GradStore {
    /// An empty sink (re-arm with [`GradStore::ensure_like`] before use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Zero gradients shaped like every parameter of `store`.
    pub fn zeros_like(store: &ParamStore) -> Self {
        let mut sink = Self::default();
        sink.ensure_like(store);
        sink
    }

    /// Re-shapes the sink to match `store` and zeroes everything,
    /// reusing allocations whose shapes already agree — the cheap
    /// per-chunk re-arm for a thread-local sink.
    pub fn ensure_like(&mut self, store: &ParamStore) {
        self.grads.resize_with(store.params.len(), || Tensor::zeros(0, 0));
        for (g, p) in self.grads.iter_mut().zip(&store.params) {
            if g.shape() == p.value.shape() {
                g.fill_zero();
            } else {
                *g = Tensor::zeros(p.value.rows(), p.value.cols());
            }
        }
    }

    /// Borrow the accumulated gradient for a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Mutably borrow the accumulated gradient for a parameter.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.grads[id.0]
    }
}

/// Destination of parameter gradients during the reverse pass: either the
/// store itself (single-threaded path) or a detached [`GradStore`].
trait GradSink {
    fn sink_grad_mut(&mut self, id: ParamId) -> &mut Tensor;
}

impl GradSink for ParamStore {
    fn sink_grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        self.grad_mut(id)
    }
}

impl GradSink for GradStore {
    fn sink_grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        self.grad_mut(id)
    }
}

/// Nonlinearities supported by [`Graph::activation`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// x for x ≥ 0, 0.01·x otherwise.
    LeakyRelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Pass-through.
    Identity,
}

impl Activation {
    #[inline]
    fn forward(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x >= 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// Derivative given the input `x` and output `y`.
    #[inline]
    fn derivative(self, x: f32, y: f32) -> f32 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if x >= 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Identity => 1.0,
        }
    }
}

/// Handle to a node on the tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

enum Op {
    /// Constant leaf (inputs to the network; receives no gradient).
    Constant,
    /// Full parameter matrix.
    Param(ParamId),
    /// Selected rows of a parameter table (embedding lookup).
    Gather { param: ParamId, indices: Vec<u32> },
    /// `a · b`.
    MatMul(Var, Var),
    /// `a + b`, same shape.
    Add(Var, Var),
    /// `a - b`, same shape.
    Sub(Var, Var),
    /// Element-wise product, same shape.
    MulElem(Var, Var),
    /// `c · a`.
    Scale(Var, f32),
    /// Horizontal concatenation `[a | b]`.
    ConcatCols(Var, Var),
    /// Element-wise nonlinearity.
    Act(Var, Activation),
    /// Row-wise L2 normalization (paper Eq. 7).
    RowL2Norm(Var),
    /// Per-segment weighted sum of input rows: output row `s` is
    /// `Σ_{j ∈ seg s} weights[j] · input_row[j]`. This is the paper's
    /// weighted aggregator over sampled neighborhoods.
    SegmentWeightedSum { input: Var, offsets: Arc<Vec<u32>>, weights: Arc<Vec<f32>> },
    /// Copies selected rows of another node's value (slicing, repeating).
    SelectRows { input: Var, indices: Vec<u32> },
    /// Row-wise dot product of two same-shape matrices → `(m × 1)`.
    RowsDot(Var, Var),
    /// Broadcast row-vector bias add: `(m × n) + (1 × n)`.
    AddBias(Var, Var),
    /// Mean binary-cross-entropy with logits against fixed targets → `1 × 1`.
    BceWithLogitsMean { scores: Var, targets: Vec<f32> },
    /// Mean squared error against a fixed target → `1 × 1`.
    MseMean { pred: Var, target: Tensor },
    /// 1-D convolution with bias over channel-major rows.
    Conv1d {
        input: Var,
        kernel: Var,
        bias: Var,
        in_ch: usize,
        out_ch: usize,
        ksize: usize,
        stride: usize,
        in_len: usize,
    },
}

struct Node {
    op: Op,
    value: Tensor,
    grad: Option<Tensor>,
}

/// A define-by-run computation tape.
pub struct Graph {
    nodes: Vec<Node>,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph { nodes: Vec::new() }
    }

    fn push(&mut self, op: Op, value: Tensor) -> Var {
        self.nodes.push(Node { op, value, grad: None });
        Var(self.nodes.len() - 1)
    }

    /// The current value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The gradient of a node after [`Graph::backward`] (if it received one).
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a constant (non-learnable) leaf.
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.push(Op::Constant, value)
    }

    /// References a full parameter matrix.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let value = store.value(id).clone();
        self.push(Op::Param(id), value)
    }

    /// Looks up rows of a parameter table (embedding gather).
    pub fn gather(&mut self, store: &ParamStore, id: ParamId, indices: &[u32]) -> Var {
        let table = store.value(id);
        let mut value = Tensor::zeros(indices.len(), table.cols());
        for (i, &idx) in indices.iter().enumerate() {
            value.set_row(i, table.row(idx as usize));
        }
        self.push(Op::Gather { param: id, indices: indices.to_vec() }, value)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a, b), value)
    }

    /// Element-wise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let mut value = self.value(a).clone();
        value.axpy(1.0, self.value(b));
        self.push(Op::Add(a, b), value)
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let mut value = self.value(a).clone();
        value.axpy(-1.0, self.value(b));
        self.push(Op::Sub(a, b), value)
    }

    /// Element-wise product.
    pub fn mul_elem(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.value(a).shape(), self.value(b).shape());
        let bv = self.value(b).clone();
        let value = Tensor::from_vec(
            bv.rows(),
            bv.cols(),
            self.value(a)
                .data()
                .iter()
                .zip(bv.data())
                .map(|(&x, &y)| x * y)
                .collect(),
        );
        self.push(Op::MulElem(a, b), value)
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let value = self.value(a).map(|x| c * x);
        self.push(Op::Scale(a, c), value)
    }

    /// Horizontal concatenation `[a | b]` (paper's CONCAT in Eq. 4/6).
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (av, bv) = (self.value(a), self.value(b));
        assert_eq!(av.rows(), bv.rows(), "concat_cols row mismatch");
        let (m, n1, n2) = (av.rows(), av.cols(), bv.cols());
        let mut value = Tensor::zeros(m, n1 + n2);
        for i in 0..m {
            value.row_mut(i)[..n1].copy_from_slice(av.row(i));
            value.row_mut(i)[n1..].copy_from_slice(bv.row(i));
        }
        self.push(Op::ConcatCols(a, b), value)
    }

    /// Element-wise nonlinearity.
    pub fn activation(&mut self, a: Var, act: Activation) -> Var {
        let value = self.value(a).map(|x| act.forward(x));
        self.push(Op::Act(a, act), value)
    }

    /// Row-wise L2 normalization (paper Eq. 7). Zero rows stay zero.
    pub fn row_l2_normalize(&mut self, a: Var) -> Var {
        let av = self.value(a);
        let mut value = av.clone();
        for i in 0..value.rows() {
            let norm = value.row(i).iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 1e-12 {
                for x in value.row_mut(i) {
                    *x /= norm;
                }
            }
        }
        self.push(Op::RowL2Norm(a), value)
    }

    /// Weighted aggregation over sampled neighborhoods: `offsets` has one
    /// entry per output row giving the start of its segment in `input`
    /// (plus a final end sentinel); `weights` has one entry per input row.
    /// Callers normalize weights per segment to implement the paper's
    /// weighted-mean aggregator.
    ///
    /// The buffers are taken as (convertible-to) `Arc`s so a caller that
    /// reuses one neighborhood tree across several ops shares the
    /// allocations instead of cloning them per forward pass.
    pub fn segment_weighted_sum(
        &mut self,
        input: Var,
        offsets: impl Into<Arc<Vec<u32>>>,
        weights: impl Into<Arc<Vec<f32>>>,
    ) -> Var {
        let offsets = offsets.into();
        let weights = weights.into();
        let inp = self.value(input);
        assert_eq!(weights.len(), inp.rows(), "one weight per input row");
        assert!(!offsets.is_empty(), "offsets needs an end sentinel");
        assert_eq!(*offsets.last().unwrap() as usize, inp.rows(), "sentinel mismatch");
        let n_seg = offsets.len() - 1;
        let d = inp.cols();
        let mut value = Tensor::zeros(n_seg, d);
        for s in 0..n_seg {
            let (lo, hi) = (offsets[s] as usize, offsets[s + 1] as usize);
            for (j, &w) in weights.iter().enumerate().take(hi).skip(lo) {
                let src = inp.row(j);
                for (o, &x) in value.row_mut(s).iter_mut().zip(src) {
                    *o += w * x;
                }
            }
        }
        self.push(Op::SegmentWeightedSum { input, offsets, weights }, value)
    }

    /// Selects rows of a node's value by index (repetition allowed) —
    /// used to slice batches apart and to align positives with their
    /// repeated negative samples.
    pub fn select_rows(&mut self, input: Var, indices: &[u32]) -> Var {
        let inp = self.value(input);
        let mut value = Tensor::zeros(indices.len(), inp.cols());
        for (i, &idx) in indices.iter().enumerate() {
            value.set_row(i, inp.row(idx as usize));
        }
        self.push(Op::SelectRows { input, indices: indices.to_vec() }, value)
    }

    /// Row-wise dot products → column vector.
    pub fn rows_dot(&mut self, a: Var, b: Var) -> Var {
        let (av, bv) = (self.value(a), self.value(b));
        assert_eq!(av.shape(), bv.shape(), "rows_dot shape mismatch");
        let m = av.rows();
        let mut value = Tensor::zeros(m, 1);
        for i in 0..m {
            value[(i, 0)] = av.row(i).iter().zip(bv.row(i)).map(|(&x, &y)| x * y).sum();
        }
        self.push(Op::RowsDot(a, b), value)
    }

    /// Broadcast row-bias add.
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Var {
        let (av, bv) = (self.value(a), self.value(bias));
        assert_eq!(bv.rows(), 1, "bias must be a row vector");
        assert_eq!(av.cols(), bv.cols(), "bias width mismatch");
        let mut value = av.clone();
        for i in 0..value.rows() {
            for (x, &b) in value.row_mut(i).iter_mut().zip(bv.row(0)) {
                *x += b;
            }
        }
        self.push(Op::AddBias(a, bias), value)
    }

    /// Mean binary cross-entropy with logits: implements the negative-
    /// sampling loss (paper Eq. 8) with targets 1 for positive pairs and 0
    /// for negatives. Numerically stable softplus formulation.
    pub fn bce_with_logits_mean(&mut self, scores: Var, targets: &[f32]) -> Var {
        let sv = self.value(scores);
        assert_eq!(sv.cols(), 1, "scores must be a column vector");
        assert_eq!(sv.rows(), targets.len(), "one target per score");
        let m = targets.len().max(1);
        let mut loss = 0.0f64;
        for (i, &t) in targets.iter().enumerate() {
            let s = sv[(i, 0)];
            // softplus(s) - t*s, stable for |s| large.
            let softplus = s.max(0.0) + (-s.abs()).exp().ln_1p();
            loss += (softplus - t * s) as f64;
        }
        let value = Tensor::from_vec(1, 1, vec![(loss / m as f64) as f32]);
        self.push(Op::BceWithLogitsMean { scores, targets: targets.to_vec() }, value)
    }

    /// Mean squared error against a fixed target.
    pub fn mse_mean(&mut self, pred: Var, target: Tensor) -> Var {
        let pv = self.value(pred);
        assert_eq!(pv.shape(), target.shape(), "mse shape mismatch");
        let n = pv.len().max(1);
        let mut loss = 0.0f64;
        for (&p, &t) in pv.data().iter().zip(target.data()) {
            let d = (p - t) as f64;
            loss += d * d;
        }
        let value = Tensor::from_vec(1, 1, vec![(loss / n as f64) as f32]);
        self.push(Op::MseMean { pred, target }, value)
    }

    /// Valid (no-padding) 1-D convolution with per-output-channel bias.
    ///
    /// `input` rows are channel-major: `in_ch` blocks of `in_len` samples.
    /// `kernel` is `(out_ch × in_ch·ksize)`; `bias` is `(1 × out_ch)`.
    /// Output rows are `out_ch` blocks of `out_len` samples where
    /// `out_len = (in_len - ksize) / stride + 1`.
    #[allow(clippy::too_many_arguments)]
    pub fn conv1d(
        &mut self,
        input: Var,
        kernel: Var,
        bias: Var,
        in_ch: usize,
        out_ch: usize,
        ksize: usize,
        stride: usize,
    ) -> Var {
        let (iv, kv, bv) = (self.value(input), self.value(kernel), self.value(bias));
        assert_eq!(iv.cols() % in_ch, 0, "input width must be in_ch * in_len");
        let in_len = iv.cols() / in_ch;
        assert!(in_len >= ksize, "input shorter than kernel");
        assert_eq!(kv.shape(), (out_ch, in_ch * ksize), "kernel shape");
        assert_eq!(bv.shape(), (1, out_ch), "bias shape");
        let out_len = (in_len - ksize) / stride + 1;
        let batch = iv.rows();
        let mut value = Tensor::zeros(batch, out_ch * out_len);
        for b in 0..batch {
            let in_row = iv.row(b);
            for oc in 0..out_ch {
                let k_row = kv.row(oc);
                let bias_v = bv[(0, oc)];
                for p in 0..out_len {
                    let mut acc = bias_v;
                    for ic in 0..in_ch {
                        let in_base = ic * in_len + p * stride;
                        let k_base = ic * ksize;
                        for kk in 0..ksize {
                            acc += in_row[in_base + kk] * k_row[k_base + kk];
                        }
                    }
                    value[(b, oc * out_len + p)] = acc;
                }
            }
        }
        self.push(
            Op::Conv1d { input, kernel, bias, in_ch, out_ch, ksize, stride, in_len },
            value,
        )
    }

    fn accumulate(&mut self, v: Var, delta: &Tensor) {
        let node = &mut self.nodes[v.0];
        match &mut node.grad {
            Some(g) => g.axpy(1.0, delta),
            None => node.grad = Some(delta.clone()),
        }
    }

    /// Runs the reverse pass from scalar node `loss` (seeded with 1.0),
    /// accumulating parameter gradients into `store`.
    ///
    /// The tape is consumed structurally: ops are taken out as they are
    /// processed, so `backward` can only run once per graph. Node values
    /// and gradients remain readable afterwards.
    pub fn backward(&mut self, loss: Var, store: &mut ParamStore) {
        self.backward_impl(loss, store);
    }

    /// [`Graph::backward`] writing into a detached [`GradStore`] instead
    /// of the parameter store. The store is never touched, so workers on
    /// other threads can backprop concurrently against one shared
    /// `&ParamStore` snapshot, each into its own sink.
    pub fn backward_into(&mut self, loss: Var, sink: &mut GradStore) {
        self.backward_impl(loss, sink);
    }

    fn backward_impl<S: GradSink>(&mut self, loss: Var, store: &mut S) {
        assert_eq!(self.value(loss).shape(), (1, 1), "loss must be scalar");
        self.nodes[loss.0].grad = Some(Tensor::from_vec(1, 1, vec![1.0]));

        for idx in (0..self.nodes.len()).rev() {
            let Some(grad) = self.nodes[idx].grad.take() else {
                continue;
            };
            // Re-install so callers can inspect intermediate grads.
            self.nodes[idx].grad = Some(grad.clone());
            // Take the op out to release the borrow on `self.nodes`.
            let op = std::mem::replace(&mut self.nodes[idx].op, Op::Constant);
            match op {
                Op::Constant => {}
                Op::Param(id) => {
                    store.sink_grad_mut(id).axpy(1.0, &grad);
                }
                Op::Gather { param, indices } => {
                    let g = store.sink_grad_mut(param);
                    for (i, &r) in indices.iter().enumerate() {
                        let dst = g.row_mut(r as usize);
                        for (d, &s) in dst.iter_mut().zip(grad.row(i)) {
                            *d += s;
                        }
                    }
                }
                Op::MatMul(a, b) => {
                    let da = grad.matmul_nt(self.value(b));
                    let db = self.value(a).matmul_tn(&grad);
                    self.accumulate(a, &da);
                    self.accumulate(b, &db);
                }
                Op::Add(a, b) => {
                    self.accumulate(a, &grad);
                    self.accumulate(b, &grad);
                }
                Op::Sub(a, b) => {
                    self.accumulate(a, &grad);
                    let mut neg = grad.clone();
                    neg.scale_in_place(-1.0);
                    self.accumulate(b, &neg);
                }
                Op::MulElem(a, b) => {
                    let da = Tensor::from_vec(
                        grad.rows(),
                        grad.cols(),
                        grad.data()
                            .iter()
                            .zip(self.value(b).data())
                            .map(|(&g, &y)| g * y)
                            .collect(),
                    );
                    let db = Tensor::from_vec(
                        grad.rows(),
                        grad.cols(),
                        grad.data()
                            .iter()
                            .zip(self.value(a).data())
                            .map(|(&g, &x)| g * x)
                            .collect(),
                    );
                    self.accumulate(a, &da);
                    self.accumulate(b, &db);
                }
                Op::Scale(a, c) => {
                    let da = grad.map(|g| c * g);
                    self.accumulate(a, &da);
                }
                Op::ConcatCols(a, b) => {
                    let n1 = self.value(a).cols();
                    let n2 = self.value(b).cols();
                    let m = grad.rows();
                    let mut da = Tensor::zeros(m, n1);
                    let mut db = Tensor::zeros(m, n2);
                    for i in 0..m {
                        da.row_mut(i).copy_from_slice(&grad.row(i)[..n1]);
                        db.row_mut(i).copy_from_slice(&grad.row(i)[n1..]);
                    }
                    self.accumulate(a, &da);
                    self.accumulate(b, &db);
                }
                Op::Act(a, act) => {
                    let x = self.value(a);
                    let y = &self.nodes[idx].value;
                    let da = Tensor::from_vec(
                        grad.rows(),
                        grad.cols(),
                        grad.data()
                            .iter()
                            .zip(x.data().iter().zip(y.data()))
                            .map(|(&g, (&xv, &yv))| g * act.derivative(xv, yv))
                            .collect(),
                    );
                    self.accumulate(a, &da);
                }
                Op::RowL2Norm(a) => {
                    let x = self.value(a);
                    let y = &self.nodes[idx].value;
                    let mut da = Tensor::zeros(grad.rows(), grad.cols());
                    for i in 0..grad.rows() {
                        let norm = x.row(i).iter().map(|v| v * v).sum::<f32>().sqrt();
                        if norm <= 1e-12 {
                            continue; // forward left the row at zero
                        }
                        let y_row = y.row(i);
                        let g_row = grad.row(i);
                        let ydotg: f32 = y_row.iter().zip(g_row).map(|(&a, &b)| a * b).sum();
                        for ((d, &g), &yv) in da.row_mut(i).iter_mut().zip(g_row).zip(y_row) {
                            *d = (g - yv * ydotg) / norm;
                        }
                    }
                    self.accumulate(a, &da);
                }
                Op::SegmentWeightedSum { input, offsets, weights } => {
                    let inp_shape = self.value(input).shape();
                    let mut da = Tensor::zeros(inp_shape.0, inp_shape.1);
                    for s in 0..offsets.len() - 1 {
                        let (lo, hi) = (offsets[s] as usize, offsets[s + 1] as usize);
                        let g_row = grad.row(s);
                        for (j, &w) in weights.iter().enumerate().take(hi).skip(lo) {
                            for (d, &g) in da.row_mut(j).iter_mut().zip(g_row) {
                                *d += w * g;
                            }
                        }
                    }
                    self.accumulate(input, &da);
                }
                Op::SelectRows { input, indices } => {
                    let shape = self.value(input).shape();
                    let mut da = Tensor::zeros(shape.0, shape.1);
                    for (i, &idx) in indices.iter().enumerate() {
                        let dst = da.row_mut(idx as usize);
                        for (d, &g) in dst.iter_mut().zip(grad.row(i)) {
                            *d += g;
                        }
                    }
                    self.accumulate(input, &da);
                }
                Op::RowsDot(a, b) => {
                    let (av, bv) = (self.value(a).clone(), self.value(b).clone());
                    let mut da = Tensor::zeros(av.rows(), av.cols());
                    let mut db = Tensor::zeros(bv.rows(), bv.cols());
                    for i in 0..av.rows() {
                        let g = grad[(i, 0)];
                        for ((d, &y), (e, &x)) in da
                            .row_mut(i)
                            .iter_mut()
                            .zip(bv.row(i))
                            .zip(db.row_mut(i).iter_mut().zip(av.row(i)))
                        {
                            *d = g * y;
                            *e = g * x;
                        }
                    }
                    self.accumulate(a, &da);
                    self.accumulate(b, &db);
                }
                Op::AddBias(a, bias) => {
                    self.accumulate(a, &grad);
                    let mut db = Tensor::zeros(1, grad.cols());
                    for i in 0..grad.rows() {
                        for (d, &g) in db.row_mut(0).iter_mut().zip(grad.row(i)) {
                            *d += g;
                        }
                    }
                    self.accumulate(bias, &db);
                }
                Op::BceWithLogitsMean { scores, targets } => {
                    let g = grad[(0, 0)];
                    let m = targets.len().max(1) as f32;
                    let sv = self.value(scores);
                    let mut ds = Tensor::zeros(sv.rows(), 1);
                    for (i, &t) in targets.iter().enumerate() {
                        let s = sv[(i, 0)];
                        let sigma = 1.0 / (1.0 + (-s).exp());
                        ds[(i, 0)] = g * (sigma - t) / m;
                    }
                    self.accumulate(scores, &ds);
                }
                Op::MseMean { pred, target } => {
                    let g = grad[(0, 0)];
                    let n = target.len().max(1) as f32;
                    let pv = self.value(pred);
                    let dp = Tensor::from_vec(
                        pv.rows(),
                        pv.cols(),
                        pv.data()
                            .iter()
                            .zip(target.data())
                            .map(|(&p, &t)| g * 2.0 * (p - t) / n)
                            .collect(),
                    );
                    self.accumulate(pred, &dp);
                }
                Op::Conv1d { input, kernel, bias, in_ch, out_ch, ksize, stride, in_len } => {
                    let out_len = (in_len - ksize) / stride + 1;
                    let iv = self.value(input).clone();
                    let kv = self.value(kernel).clone();
                    let batch = iv.rows();
                    let mut di = Tensor::zeros(batch, in_ch * in_len);
                    let mut dk = Tensor::zeros(out_ch, in_ch * ksize);
                    let mut db = Tensor::zeros(1, out_ch);
                    for b in 0..batch {
                        for oc in 0..out_ch {
                            for p in 0..out_len {
                                let g = grad[(b, oc * out_len + p)];
                                if g == 0.0 {
                                    continue;
                                }
                                db[(0, oc)] += g;
                                for ic in 0..in_ch {
                                    let in_base = ic * in_len + p * stride;
                                    let k_base = ic * ksize;
                                    for kk in 0..ksize {
                                        di[(b, in_base + kk)] += g * kv[(oc, k_base + kk)];
                                        dk[(oc, k_base + kk)] += g * iv[(b, in_base + kk)];
                                    }
                                }
                            }
                        }
                    }
                    self.accumulate(input, &di);
                    self.accumulate(kernel, &dk);
                    self.accumulate(bias, &db);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Central finite-difference check of `d loss / d param` for every
    /// element of every parameter used by `build`.
    fn grad_check(
        store: &mut ParamStore,
        build: &mut dyn FnMut(&mut Graph, &ParamStore) -> Var,
        tol: f32,
    ) {
        // Analytic gradients.
        store.zero_grads();
        let mut g = Graph::new();
        let loss = build(&mut g, store);
        g.backward(loss, store);
        let analytic: Vec<Tensor> = store.ids().map(|id| store.grad(id).clone()).collect();

        let eps = 3e-3f32;
        for id in store.ids() {
            let (rows, cols) = store.value(id).shape();
            for i in 0..rows {
                for j in 0..cols {
                    let orig = store.value(id)[(i, j)];
                    store.value_mut(id)[(i, j)] = orig + eps;
                    let mut gp = Graph::new();
                    let lp = build(&mut gp, store);
                    let fp = gp.value(lp)[(0, 0)];
                    store.value_mut(id)[(i, j)] = orig - eps;
                    let mut gm = Graph::new();
                    let lm = build(&mut gm, store);
                    let fm = gm.value(lm)[(0, 0)];
                    store.value_mut(id)[(i, j)] = orig;
                    let numeric = (fp - fm) / (2.0 * eps);
                    let a = analytic[id.0][(i, j)];
                    assert!(
                        (a - numeric).abs() <= tol * (1.0 + numeric.abs().max(a.abs())),
                        "param {} [{i},{j}]: analytic {a} vs numeric {numeric}",
                        store.name(id),
                    );
                }
            }
        }
    }

    fn rand_tensor(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
        Tensor::from_fn(rows, cols, |_, _| rng.random_range(-1.0..1.0f32))
    }

    #[test]
    fn grad_matmul_chain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let w1 = store.add("w1", rand_tensor(&mut rng, 3, 4));
        let w2 = store.add("w2", rand_tensor(&mut rng, 4, 2));
        let x = rand_tensor(&mut rng, 2, 3);
        let target = rand_tensor(&mut rng, 2, 2);
        grad_check(
            &mut store,
            &mut |g, s| {
                let xv = g.constant(x.clone());
                let a = g.param(s, w1);
                let b = g.param(s, w2);
                let h = g.matmul(xv, a);
                let y = g.matmul(h, b);
                g.mse_mean(y, target.clone())
            },
            1e-2,
        );
    }

    #[test]
    fn grad_activations() {
        for act in [
            Activation::Relu,
            Activation::LeakyRelu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Identity,
        ] {
            let mut rng = StdRng::seed_from_u64(2);
            let mut store = ParamStore::new();
            // Keep values away from the ReLU kink for stable finite diffs.
            let w = store.add(
                "w",
                Tensor::from_fn(2, 3, |_, _| {
                    let v: f32 = rng.random_range(0.1..1.0);
                    if rng.random_bool(0.5) {
                        v
                    } else {
                        -v
                    }
                }),
            );
            let target = rand_tensor(&mut rng, 2, 3);
            grad_check(
                &mut store,
                &mut |g, s| {
                    let a = g.param(s, w);
                    let y = g.activation(a, act);
                    g.mse_mean(y, target.clone())
                },
                2e-2,
            );
        }
    }

    #[test]
    fn grad_row_l2_normalize() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let w = store.add("w", rand_tensor(&mut rng, 3, 4));
        let target = rand_tensor(&mut rng, 3, 4);
        grad_check(
            &mut store,
            &mut |g, s| {
                let a = g.param(s, w);
                let y = g.row_l2_normalize(a);
                g.mse_mean(y, target.clone())
            },
            2e-2,
        );
    }

    #[test]
    fn grad_concat_and_bias() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let a = store.add("a", rand_tensor(&mut rng, 2, 3));
        let b = store.add("b", rand_tensor(&mut rng, 2, 2));
        let bias = store.add("bias", rand_tensor(&mut rng, 1, 5));
        let target = rand_tensor(&mut rng, 2, 5);
        grad_check(
            &mut store,
            &mut |g, s| {
                let av = g.param(s, a);
                let bv = g.param(s, b);
                let cat = g.concat_cols(av, bv);
                let biasv = g.param(s, bias);
                let y = g.add_bias(cat, biasv);
                g.mse_mean(y, target.clone())
            },
            1e-2,
        );
    }

    #[test]
    fn grad_segment_weighted_sum() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let w = store.add("w", rand_tensor(&mut rng, 5, 3));
        let target = rand_tensor(&mut rng, 2, 3);
        let offsets = vec![0u32, 2, 5];
        let weights = vec![0.6, 0.4, 0.2, 0.5, 0.3];
        grad_check(
            &mut store,
            &mut |g, s| {
                let a = g.param(s, w);
                let y = g.segment_weighted_sum(a, offsets.clone(), weights.clone());
                g.mse_mean(y, target.clone())
            },
            1e-2,
        );
    }

    #[test]
    fn grad_rows_dot_and_bce() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let a = store.add("a", rand_tensor(&mut rng, 4, 3));
        let b = store.add("b", rand_tensor(&mut rng, 4, 3));
        let targets = vec![1.0, 0.0, 1.0, 0.0];
        grad_check(
            &mut store,
            &mut |g, s| {
                let av = g.param(s, a);
                let bv = g.param(s, b);
                let scores = g.rows_dot(av, bv);
                g.bce_with_logits_mean(scores, &targets)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_gather_scatter() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let table = store.add("table", rand_tensor(&mut rng, 6, 3));
        let target = rand_tensor(&mut rng, 4, 3);
        // Repeated index 2 exercises scatter-add accumulation.
        let idx = vec![2u32, 0, 2, 5];
        grad_check(
            &mut store,
            &mut |g, s| {
                let a = g.gather(s, table, &idx);
                g.mse_mean(a, target.clone())
            },
            1e-2,
        );
    }

    #[test]
    fn grad_select_rows() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let w = store.add("w", rand_tensor(&mut rng, 4, 3));
        let target = rand_tensor(&mut rng, 5, 3);
        // Repeats exercise gradient accumulation.
        let idx = vec![0u32, 2, 2, 3, 0];
        grad_check(
            &mut store,
            &mut |g, s| {
                let a = g.param(s, w);
                let sel = g.select_rows(a, &idx);
                g.mse_mean(sel, target.clone())
            },
            1e-2,
        );
    }

    #[test]
    fn grad_mul_scale_sub() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut store = ParamStore::new();
        let a = store.add("a", rand_tensor(&mut rng, 2, 3));
        let b = store.add("b", rand_tensor(&mut rng, 2, 3));
        let target = rand_tensor(&mut rng, 2, 3);
        grad_check(
            &mut store,
            &mut |g, s| {
                let av = g.param(s, a);
                let bv = g.param(s, b);
                let prod = g.mul_elem(av, bv);
                let scaled = g.scale(prod, 1.7);
                let diff = g.sub(scaled, bv);
                g.mse_mean(diff, target.clone())
            },
            1e-2,
        );
    }

    #[test]
    fn grad_conv1d() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        let (in_ch, out_ch, ksize, stride, in_len, batch) = (2, 3, 3, 2, 8, 2);
        let out_len = (in_len - ksize) / stride + 1;
        let input = store.add("input", rand_tensor(&mut rng, batch, in_ch * in_len));
        let kernel = store.add("kernel", rand_tensor(&mut rng, out_ch, in_ch * ksize));
        let bias = store.add("bias", rand_tensor(&mut rng, 1, out_ch));
        let target = rand_tensor(&mut rng, batch, out_ch * out_len);
        grad_check(
            &mut store,
            &mut |g, s| {
                let iv = g.param(s, input);
                let kv = g.param(s, kernel);
                let bv = g.param(s, bias);
                let y = g.conv1d(iv, kv, bv, in_ch, out_ch, ksize, stride);
                g.mse_mean(y, target.clone())
            },
            1.5e-2,
        );
    }

    #[test]
    fn shared_param_accumulates_grads() {
        // loss = mse(w + w) pulls gradient through two paths.
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(1, 1, vec![3.0]));
        let mut g = Graph::new();
        let a = g.param(&store, w);
        let b = g.param(&store, w);
        let sum = g.add(a, b);
        let loss = g.mse_mean(sum, Tensor::from_vec(1, 1, vec![0.0]));
        g.backward(loss, &mut store);
        // d/dw (2w)^2 = 8w = 24.
        assert!((store.grad(w)[(0, 0)] - 24.0).abs() < 1e-4);
    }

    #[test]
    fn clip_grad_norm_bounds_gradients() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(1, 2, vec![10.0, 0.0]));
        let mut g = Graph::new();
        let a = g.param(&store, w);
        let loss = g.mse_mean(a, Tensor::zeros(1, 2));
        g.backward(loss, &mut store);
        store.clip_grad_norm(1.0);
        assert!((store.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn backward_into_matches_backward_bitwise() {
        // The detached-sink path must be indistinguishable from the
        // in-store path: same ops, same accumulation order, same bits.
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let w = store.add("w", rand_tensor(&mut rng, 6, 4));
        let table = store.add("table", rand_tensor(&mut rng, 5, 6));
        let target = rand_tensor(&mut rng, 3, 4);
        let build = |g: &mut Graph, s: &ParamStore| {
            let rows = g.gather(s, table, &[0, 2, 4]);
            let wv = g.param(s, w);
            let y = g.matmul(rows, wv);
            g.mse_mean(y, target.clone())
        };

        store.zero_grads();
        let mut g1 = Graph::new();
        let loss1 = build(&mut g1, &store);
        g1.backward(loss1, &mut store);

        let mut sink = GradStore::zeros_like(&store);
        let mut g2 = Graph::new();
        let loss2 = build(&mut g2, &store);
        g2.backward_into(loss2, &mut sink);

        assert_eq!(store.grad(w), sink.grad(w));
        assert_eq!(store.grad(table), sink.grad(table));

        // Reducing the sink into a zeroed store reproduces the direct
        // gradients exactly (x + 0 = x in f32 for the values involved).
        store.zero_grads();
        store.apply_grads(&sink, 1.0);
        assert_eq!(store.grad(w), sink.grad(w));
    }

    #[test]
    fn zero_row_l2_norm_is_stable() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(2, 3));
        let mut g = Graph::new();
        let a = g.param(&store, w);
        let y = g.row_l2_normalize(a);
        let loss = g.mse_mean(y, Tensor::full(2, 3, 1.0));
        g.backward(loss, &mut store);
        assert!(store.grad(w).data().iter().all(|v| v.is_finite()));
    }

}
