//! Reusable layer modules built on the autograd tape.

use rand::RngExt;

use crate::init;
use crate::tape::{Activation, Graph, ParamId, ParamStore, Var};

/// A fully-connected layer `act(x·W + b)`.
#[derive(Clone, Copy, Debug)]
pub struct Dense {
    /// Weight matrix id, shape `(in_dim × out_dim)`.
    pub w: ParamId,
    /// Bias id, shape `(1 × out_dim)`.
    pub b: ParamId,
    /// Nonlinearity applied after the affine map.
    pub act: Activation,
}

impl Dense {
    /// Registers Xavier-initialized parameters in the store.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        act: Activation,
        rng: &mut impl RngExt,
    ) -> Self {
        let w = store.add(format!("{name}.w"), init::xavier_uniform(rng, in_dim, out_dim));
        let b = store.add(format!("{name}.b"), crate::tensor::Tensor::zeros(1, out_dim));
        Dense { w, b, act }
    }

    /// Applies the layer to a batch `(m × in_dim)`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        let affine = g.matmul(x, w);
        let biased = g.add_bias(affine, b);
        g.activation(biased, self.act)
    }
}

/// A 1-D convolution layer with per-channel bias, valid padding.
///
/// Rows are channel-major (`in_ch` blocks of `in_len` samples); see
/// [`Graph::conv1d`] for the layout contract.
#[derive(Clone, Copy, Debug)]
pub struct Conv1dLayer {
    /// Kernel id, shape `(out_ch × in_ch·ksize)`.
    pub kernel: ParamId,
    /// Bias id, shape `(1 × out_ch)`.
    pub bias: ParamId,
    /// Input channel count.
    pub in_ch: usize,
    /// Output channel count.
    pub out_ch: usize,
    /// Kernel width.
    pub ksize: usize,
    /// Stride.
    pub stride: usize,
    /// Nonlinearity applied after the convolution.
    pub act: Activation,
}

impl Conv1dLayer {
    /// Registers Xavier-initialized parameters in the store.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_ch: usize,
        out_ch: usize,
        ksize: usize,
        stride: usize,
        act: Activation,
        rng: &mut impl RngExt,
    ) -> Self {
        let kernel =
            store.add(format!("{name}.kernel"), init::xavier_uniform(rng, out_ch, in_ch * ksize));
        let bias = store.add(format!("{name}.bias"), crate::tensor::Tensor::zeros(1, out_ch));
        Conv1dLayer { kernel, bias, in_ch, out_ch, ksize, stride, act }
    }

    /// Output length for a given input length.
    pub fn out_len(&self, in_len: usize) -> usize {
        (in_len - self.ksize) / self.stride + 1
    }

    /// Applies the layer.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let k = g.param(store, self.kernel);
        let b = g.param(store, self.bias);
        let conv = g.conv1d(x, k, b, self.in_ch, self.out_ch, self.ksize, self.stride);
        g.activation(conv, self.act)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Optimizer, Sgd};
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_learns_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let layer = Dense::new(&mut store, "d", 3, 3, Activation::Identity, &mut rng);
        let x = Tensor::from_fn(8, 3, |_, _| rng.random_range(-1.0..1.0f32));
        let mut opt = Sgd::new(0.3);
        let mut last = f32::MAX;
        for _ in 0..300 {
            store.zero_grads();
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            let y = layer.forward(&mut g, &store, xv);
            let loss = g.mse_mean(y, x.clone());
            last = g.value(loss)[(0, 0)];
            g.backward(loss, &mut store);
            opt.step(&mut store);
        }
        assert!(last < 1e-3, "loss {last}");
    }

    #[test]
    fn conv_shapes_are_consistent() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let layer = Conv1dLayer::new(&mut store, "c", 2, 4, 3, 2, Activation::Relu, &mut rng);
        let in_len = 11;
        let x = Tensor::zeros(5, 2 * in_len);
        let mut g = Graph::new();
        let xv = g.constant(x);
        let y = layer.forward(&mut g, &store, xv);
        assert_eq!(g.value(y).shape(), (5, 4 * layer.out_len(in_len)));
        assert_eq!(layer.out_len(in_len), 5);
    }

    #[test]
    fn conv_learns_moving_average() {
        // Target: 3-tap moving average over one channel.
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let layer = Conv1dLayer::new(&mut store, "c", 1, 1, 3, 1, Activation::Identity, &mut rng);
        let in_len = 10;
        let x = Tensor::from_fn(16, in_len, |_, _| rng.random_range(-1.0..1.0f32));
        let mut target = Tensor::zeros(16, in_len - 2);
        for i in 0..16 {
            for p in 0..in_len - 2 {
                target[(i, p)] = (x[(i, p)] + x[(i, p + 1)] + x[(i, p + 2)]) / 3.0;
            }
        }
        let mut opt = Sgd::new(0.2);
        let mut last = f32::MAX;
        for _ in 0..400 {
            store.zero_grads();
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            let y = layer.forward(&mut g, &store, xv);
            let loss = g.mse_mean(y, target.clone());
            last = g.value(loss)[(0, 0)];
            g.backward(loss, &mut store);
            opt.step(&mut store);
        }
        assert!(last < 1e-4, "loss {last}");
        for &k in store.value(layer.kernel).data() {
            assert!((k - 1.0 / 3.0).abs() < 0.02, "kernel tap {k}");
        }
    }
}
