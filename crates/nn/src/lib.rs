//! Minimal neural-network substrate for GEM.
//!
//! The offline crate set has no ML dependency, so this crate implements the
//! numeric stack the paper's algorithms need, from scratch:
//!
//! * [`tensor::Tensor`] — dense row-major `f32` matrices with the usual
//!   BLAS-ish kernels;
//! * [`tape`] — a small reverse-mode automatic-differentiation engine
//!   (build a computation [`tape::Graph`] per step, call
//!   [`tape::Graph::backward`], read gradients out of the
//!   [`tape::ParamStore`]); its op set is exactly what BiSAGE, GraphSAGE
//!   and the autoencoder baseline require, including segment-weighted
//!   neighborhood aggregation and embedding-table gather/scatter;
//! * [`optim`] — SGD / momentum / Adam optimizers over a `ParamStore`;
//! * [`init`] — Xavier and scaled-uniform initializers;
//! * [`layers`] — Dense and Conv1d modules built on the tape;
//! * [`linalg`] — a cyclic Jacobi symmetric eigensolver (used by the
//!   classical-MDS baseline).
//!
//! Every differentiable op is verified against central finite differences
//! in the test suite.

pub mod arena;
pub mod init;
pub mod kernels;
pub mod layers;
pub mod linalg;
pub mod optim;
pub mod tape;
pub mod tensor;

pub use arena::{ArenaStats, TensorArena};
pub use kernels::{Backend, Precision};
pub use optim::{Adam, Optimizer, Sgd};
pub use tape::{Activation, GradStore, Graph, ParamId, ParamStore, SparseGrad, Touched, Var};
pub use tensor::Tensor;
