//! First-order optimizers over a [`ParamStore`].

use crate::tape::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// A gradient-descent style optimizer.
pub trait Optimizer {
    /// Applies one update using the gradients currently accumulated in the
    /// store, then leaves the gradients untouched (callers usually follow
    /// with [`ParamStore::zero_grads`]).
    fn step(&mut self, store: &mut ParamStore);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (e.g. for decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// SGD without momentum.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, momentum: 0.0, velocity: Vec::new() }
    }

    /// SGD with classical momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd { lr, momentum, velocity: Vec::new() }
    }

    fn velocity_for(&mut self, id: ParamId, rows: usize, cols: usize) -> &mut Tensor {
        if self.velocity.len() <= id.0 {
            self.velocity.resize(id.0 + 1, None);
        }
        self.velocity[id.0].get_or_insert_with(|| Tensor::zeros(rows, cols))
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        for id in store.ids().collect::<Vec<_>>() {
            let grad = store.grad(id).clone();
            if self.momentum > 0.0 {
                let momentum = self.momentum;
                let (r, c) = grad.shape();
                let v = self.velocity_for(id, r, c);
                v.scale_in_place(momentum);
                v.axpy(1.0, &grad);
                let v = v.clone();
                store.value_mut(id).axpy(-self.lr, &v);
            } else {
                store.value_mut(id).axpy(-self.lr, &grad);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    /// Adam with the customary β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    fn slot(vec: &mut Vec<Option<Tensor>>, id: ParamId, rows: usize, cols: usize) -> &mut Tensor {
        if vec.len() <= id.0 {
            vec.resize(id.0 + 1, None);
        }
        vec[id.0].get_or_insert_with(|| Tensor::zeros(rows, cols))
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for id in store.ids().collect::<Vec<_>>() {
            let grad = store.grad(id).clone();
            let (r, c) = grad.shape();
            let m = Self::slot(&mut self.m, id, r, c);
            for (mi, &gi) in m.data_mut().iter_mut().zip(grad.data()) {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
            }
            let m_snapshot = m.clone();
            let v = Self::slot(&mut self.v, id, r, c);
            for (vi, &gi) in v.data_mut().iter_mut().zip(grad.data()) {
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let value = store.value_mut(id);
            for ((pv, &mi), &vi) in value
                .data_mut()
                .iter_mut()
                .zip(m_snapshot.data())
                .zip(v.data())
            {
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                *pv -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Graph;

    /// Minimizes ||w - target||² and checks convergence.
    fn converges(opt: &mut dyn Optimizer) -> f32 {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(1, 2, vec![5.0, -3.0]));
        let target = Tensor::from_vec(1, 2, vec![1.0, 2.0]);
        for _ in 0..400 {
            store.zero_grads();
            let mut g = Graph::new();
            let wv = g.param(&store, w);
            let loss = g.mse_mean(wv, target.clone());
            g.backward(loss, &mut store);
            opt.step(&mut store);
        }
        let v = store.value(w);
        ((v[(0, 0)] - 1.0).powi(2) + (v[(0, 1)] - 2.0).powi(2)).sqrt()
    }

    #[test]
    fn sgd_converges() {
        assert!(converges(&mut Sgd::new(0.1)) < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges() {
        assert!(converges(&mut Sgd::with_momentum(0.05, 0.9)) < 1e-3);
    }

    #[test]
    fn adam_converges() {
        assert!(converges(&mut Adam::new(0.05)) < 1e-2);
    }

    #[test]
    fn learning_rate_override() {
        let mut opt = Sgd::new(0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    fn adam_handles_late_registered_params() {
        let mut store = ParamStore::new();
        let _a = store.add("a", Tensor::zeros(1, 1));
        let mut opt = Adam::new(0.1);
        opt.step(&mut store);
        let b = store.add("b", Tensor::from_vec(1, 1, vec![1.0]));
        store.grad_mut(b)[(0, 0)] = 1.0;
        opt.step(&mut store); // must not panic on the new slot
        assert!(store.value(b)[(0, 0)] < 1.0);
    }
}
