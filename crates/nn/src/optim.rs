//! First-order optimizers over a [`ParamStore`].
//!
//! Both optimizers keep their warm paths allocation-free: per-parameter
//! state tensors are created on first use and reused on every later step,
//! and the update loops write through
//! [`ParamStore::value_and_grad_mut`] without cloning gradients.
//!
//! [`Adam`] additionally supports a *sparse* path for parameters marked
//! with [`ParamStore::mark_sparse`] (embedding tables updated through
//! `gather`): each step updates only the rows touched by the current
//! gradient, and the zero-gradient decay that dense Adam would have
//! applied to every other row is replayed lazily — when the row is next
//! touched, explicitly caught up via [`Adam::catch_up_rows`] before being
//! read, or flushed at the end of training by [`Adam::finalize`]. The
//! replay recomputes the exact dense per-step updates (including per-step
//! bias corrections), so the sparse trajectory is bit-identical to the
//! dense one. Hyper-parameters must stay fixed while rows are behind
//! (call [`Adam::finalize`] before changing the learning rate).

use crate::tape::{ParamId, ParamStore, Touched};
use crate::tensor::Tensor;

/// A gradient-descent style optimizer.
pub trait Optimizer {
    /// Applies one update using the gradients currently accumulated in the
    /// store, then leaves the gradients untouched (callers usually follow
    /// with [`ParamStore::zero_grads`]).
    fn step(&mut self, store: &mut ParamStore);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (e.g. for decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

fn slot(vec: &mut Vec<Option<Tensor>>, idx: usize, rows: usize, cols: usize) -> &mut Tensor {
    if vec.len() <= idx {
        vec.resize(idx + 1, None);
    }
    vec[idx].get_or_insert_with(|| Tensor::zeros(rows, cols))
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// SGD without momentum.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, momentum: 0.0, velocity: Vec::new() }
    }

    /// SGD with classical momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        for i in 0..store.len() {
            let id = ParamId(i);
            if self.momentum > 0.0 {
                let (r, c) = store.value(id).shape();
                let v = slot(&mut self.velocity, i, r, c);
                let (value, grad) = store.value_and_grad_mut(id);
                v.scale_in_place(self.momentum);
                v.axpy(1.0, grad);
                value.axpy(-self.lr, v);
            } else {
                let (value, grad) = store.value_and_grad_mut(id);
                value.axpy(-self.lr, grad);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction, plus a lazy sparse-row path
/// for embedding tables (see the module docs).
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
    /// For sparse params: the step number each row was last brought up to.
    /// Empty for dense params.
    row_step: Vec<Vec<u64>>,
    /// Scratch for touched-row collection (reused across steps).
    rows_scratch: Vec<u32>,
}

/// One dense Adam element update. Interleaving m/v/p per element is
/// bit-identical to the staged m-then-v-then-p loops because no element
/// reads another element's state.
#[allow(clippy::too_many_arguments)] // flat scalar helper, meant to inline
#[inline]
fn update_elem(
    m: &mut f32,
    v: &mut f32,
    p: &mut f32,
    g: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    lr: f32,
    bc1: f32,
    bc2: f32,
) {
    *m = beta1 * *m + (1.0 - beta1) * g;
    *v = beta2 * *v + (1.0 - beta2) * g * g;
    let m_hat = *m / bc1;
    let v_hat = *v / bc2;
    *p -= lr * m_hat / (v_hat.sqrt() + eps);
}

/// Replays the zero-gradient updates dense Adam would have applied to one
/// row over steps `from..=to`, reproducing the dense trajectory bit for
/// bit (the per-step bias corrections are recomputed exactly).
#[allow(clippy::too_many_arguments)]
fn catch_up_row(
    m: &mut [f32],
    v: &mut [f32],
    p: &mut [f32],
    beta1: f32,
    beta2: f32,
    eps: f32,
    lr: f32,
    from: u64,
    to: u64,
) {
    // A row whose moments are exactly zero stays exactly zero under a
    // zero gradient (β·0 + (1-β)·0 = +0.0), and the weight update is
    // p -= lr·(0/bc1)/((0/bc2).sqrt()+eps) = p - 0.0 = p, an exact
    // identity. Skipping the replay is therefore bit-preserving, which
    // makes never-touched rows O(cols) instead of O(steps·cols).
    if m.iter().all(|x| x.to_bits() == 0) && v.iter().all(|x| x.to_bits() == 0) {
        return;
    }
    for s in from..=to {
        let bc1 = 1.0 - beta1.powi(s as i32);
        let bc2 = 1.0 - beta2.powi(s as i32);
        for j in 0..m.len() {
            update_elem(&mut m[j], &mut v[j], &mut p[j], 0.0, beta1, beta2, eps, lr, bc1, bc2);
        }
    }
}

impl Adam {
    /// Adam with the customary β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
            row_step: Vec::new(),
            rows_scratch: Vec::new(),
        }
    }

    /// Number of optimizer steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    fn row_steps(row_step: &mut Vec<Vec<u64>>, idx: usize, rows: usize) -> &mut Vec<u64> {
        if row_step.len() <= idx {
            row_step.resize(idx + 1, Vec::new());
        }
        let rs = &mut row_step[idx];
        if rs.len() < rows {
            rs.resize(rows, 0);
        }
        rs
    }

    /// Brings the given rows of a sparse parameter up to the current step
    /// by replaying the deferred zero-gradient updates. Must be called
    /// before *reading* those rows (e.g. gathering them in a forward
    /// pass) for the sparse trajectory to match the dense one.
    pub fn catch_up_rows(&mut self, store: &mut ParamStore, id: ParamId, rows: &[u32]) {
        if self.t == 0 {
            return;
        }
        let (r, c) = store.value(id).shape();
        let m = slot(&mut self.m, id.0, r, c);
        let v = slot(&mut self.v, id.0, r, c);
        let rs = Self::row_steps(&mut self.row_step, id.0, r);
        let value = store.value_mut(id);
        for &row in rows {
            let row = row as usize;
            let last = rs[row];
            if last < self.t {
                catch_up_row(
                    m.row_mut(row),
                    v.row_mut(row),
                    value.row_mut(row),
                    self.beta1,
                    self.beta2,
                    self.eps,
                    self.lr,
                    last + 1,
                    self.t,
                );
                rs[row] = self.t;
            }
        }
    }

    /// Catches every row of every sparse parameter up to the current
    /// step. Call at the end of training (or before changing
    /// hyper-parameters) so the stored weights bitwise match what dense
    /// Adam would have produced.
    pub fn finalize(&mut self, store: &mut ParamStore) {
        if self.t == 0 {
            return;
        }
        for i in 0..store.len() {
            let id = ParamId(i);
            if !store.is_sparse(id) {
                continue;
            }
            let rows = store.value(id).rows();
            self.rows_scratch.clear();
            self.rows_scratch.extend(0..rows as u32);
            let rows = std::mem::take(&mut self.rows_scratch);
            self.catch_up_rows(store, id, &rows);
            self.rows_scratch = rows;
        }
    }

    /// Optimizer moments for a parameter (testing / diagnostics).
    #[doc(hidden)]
    pub fn moments(&self, id: ParamId) -> Option<(&Tensor, &Tensor)> {
        match (self.m.get(id.0), self.v.get(id.0)) {
            (Some(Some(m)), Some(Some(v))) => Some((m, v)),
            _ => None,
        }
    }

    /// Dense update of a whole parameter.
    #[allow(clippy::too_many_arguments)]
    fn dense_update(
        m: &mut Tensor,
        v: &mut Tensor,
        value: &mut Tensor,
        grad: &Tensor,
        beta1: f32,
        beta2: f32,
        eps: f32,
        lr: f32,
        bc1: f32,
        bc2: f32,
    ) {
        let (m, v) = (m.data_mut(), v.data_mut());
        let (p, g) = (value.data_mut(), grad.data());
        for j in 0..p.len() {
            update_elem(&mut m[j], &mut v[j], &mut p[j], g[j], beta1, beta2, eps, lr, bc1, bc2);
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let t = self.t;
        let (beta1, beta2, eps, lr) = (self.beta1, self.beta2, self.eps, self.lr);
        let bc1 = 1.0 - beta1.powi(t as i32);
        let bc2 = 1.0 - beta2.powi(t as i32);
        for i in 0..store.len() {
            let id = ParamId(i);
            let (r, c) = store.value(id).shape();
            let mut rows = std::mem::take(&mut self.rows_scratch);
            rows.clear();
            let touched = store.collect_touched_rows(id, &mut rows);
            let m = slot(&mut self.m, i, r, c);
            let v = slot(&mut self.v, i, r, c);
            match touched {
                Touched::Rows => {
                    // Sparse path: bring each touched row up to t-1, then
                    // apply the real gradient at step t.
                    let rs = Self::row_steps(&mut self.row_step, i, r);
                    let (value, grad) = store.value_and_grad_mut(id);
                    for &row in &rows {
                        let row = row as usize;
                        let last = rs[row];
                        if last + 1 < t {
                            catch_up_row(
                                m.row_mut(row),
                                v.row_mut(row),
                                value.row_mut(row),
                                beta1,
                                beta2,
                                eps,
                                lr,
                                last + 1,
                                t - 1,
                            );
                        }
                        let (mr, vr) = (m.row_mut(row), v.row_mut(row));
                        let (pr, gr) = (value.row_mut(row), grad.row(row));
                        for j in 0..c {
                            update_elem(
                                &mut mr[j], &mut vr[j], &mut pr[j], gr[j], beta1, beta2, eps, lr,
                                bc1, bc2,
                            );
                        }
                        rs[row] = t;
                    }
                }
                Touched::All => {
                    // A sparse param that received a dense gradient this
                    // step: catch all rows up, then update densely.
                    let rs = Self::row_steps(&mut self.row_step, i, r);
                    let (value, grad) = store.value_and_grad_mut(id);
                    for (row, last_step) in rs.iter_mut().enumerate() {
                        let last = *last_step;
                        if last + 1 < t {
                            catch_up_row(
                                m.row_mut(row),
                                v.row_mut(row),
                                value.row_mut(row),
                                beta1,
                                beta2,
                                eps,
                                lr,
                                last + 1,
                                t - 1,
                            );
                        }
                        *last_step = t;
                    }
                    Self::dense_update(m, v, value, grad, beta1, beta2, eps, lr, bc1, bc2);
                }
                Touched::Untracked => {
                    let (value, grad) = store.value_and_grad_mut(id);
                    Self::dense_update(m, v, value, grad, beta1, beta2, eps, lr, bc1, bc2);
                }
            }
            self.rows_scratch = rows;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Graph;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Minimizes ||w - target||² and checks convergence.
    fn converges(opt: &mut dyn Optimizer) -> f32 {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(1, 2, vec![5.0, -3.0]));
        let target = Tensor::from_vec(1, 2, vec![1.0, 2.0]);
        for _ in 0..400 {
            store.zero_grads();
            let mut g = Graph::new();
            let wv = g.param(&store, w);
            let loss = g.mse_mean(wv, target.clone());
            g.backward(loss, &mut store);
            opt.step(&mut store);
        }
        let v = store.value(w);
        ((v[(0, 0)] - 1.0).powi(2) + (v[(0, 1)] - 2.0).powi(2)).sqrt()
    }

    #[test]
    fn sgd_converges() {
        assert!(converges(&mut Sgd::new(0.1)) < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges() {
        assert!(converges(&mut Sgd::with_momentum(0.05, 0.9)) < 1e-3);
    }

    #[test]
    fn adam_converges() {
        assert!(converges(&mut Adam::new(0.05)) < 1e-2);
    }

    #[test]
    fn learning_rate_override() {
        let mut opt = Sgd::new(0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    fn adam_handles_late_registered_params() {
        let mut store = ParamStore::new();
        let _a = store.add("a", Tensor::zeros(1, 1));
        let mut opt = Adam::new(0.1);
        opt.step(&mut store);
        let b = store.add("b", Tensor::from_vec(1, 1, vec![1.0]));
        store.grad_mut(b)[(0, 0)] = 1.0;
        opt.step(&mut store); // must not panic on the new slot
        assert!(store.value(b)[(0, 0)] < 1.0);
    }

    /// Runs `steps` Adam iterations over a gathered embedding table, one
    /// trajectory with dense gradients and one with sparse tracking +
    /// lazy catch-up, and asserts bitwise-identical weights and moments.
    fn sparse_dense_trajectories(seed: u64, steps: usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let init = Tensor::from_fn(10, 4, |_, _| rng.random_range(-1.0..1.0f32));
        let batches: Vec<Vec<u32>> =
            (0..steps).map(|_| (0..3).map(|_| rng.random_range(0..10u32)).collect()).collect();
        let targets: Vec<Tensor> = (0..steps)
            .map(|_| Tensor::from_fn(3, 4, |_, _| rng.random_range(-1.0..1.0f32)))
            .collect();

        let run = |sparse: bool| -> (Tensor, Tensor, Tensor) {
            let mut store = ParamStore::new();
            let table = store.add("table", init.clone());
            if sparse {
                store.mark_sparse(table);
            }
            let mut opt = Adam::new(0.05);
            for s in 0..steps {
                if sparse {
                    // Dense Adam has updated every row up to this point;
                    // the forward pass reads gathered rows, so they must
                    // be caught up first.
                    opt.catch_up_rows(&mut store, table, &batches[s]);
                }
                store.zero_grads();
                let mut g = Graph::new();
                let rows = g.gather(&store, table, &batches[s]);
                let loss = g.mse_mean(rows, targets[s].clone());
                g.backward(loss, &mut store);
                opt.step(&mut store);
            }
            opt.finalize(&mut store);
            let (m, v) = opt.moments(table).expect("moments exist");
            (store.value(table).clone(), m.clone(), v.clone())
        };

        let (dw, dm, dv) = run(false);
        let (sw, sm, sv) = run(true);
        assert_eq!(dw, sw, "weights diverged (seed {seed})");
        assert_eq!(dm, sm, "first moments diverged (seed {seed})");
        assert_eq!(dv, sv, "second moments diverged (seed {seed})");
    }

    #[test]
    fn sparse_adam_matches_dense_bitwise() {
        for seed in [1, 7, 42] {
            sparse_dense_trajectories(seed, 9);
        }
    }

    #[test]
    fn sparse_adam_leaves_untouched_rows_alone() {
        // Without finalize, rows never touched keep their exact initial
        // bytes and zero moments.
        let mut store = ParamStore::new();
        let init = Tensor::from_fn(6, 2, |i, j| (i * 2 + j) as f32 + 0.5);
        let table = store.add("table", init.clone());
        store.mark_sparse(table);
        let mut opt = Adam::new(0.1);
        for _ in 0..5 {
            store.zero_grads();
            let mut g = Graph::new();
            let rows = g.gather(&store, table, &[1u32, 4]);
            let loss = g.mse_mean(rows, Tensor::zeros(2, 2));
            g.backward(loss, &mut store);
            opt.step(&mut store);
        }
        let value = store.value(table);
        for row in [0usize, 2, 3, 5] {
            assert_eq!(value.row(row), init.row(row), "row {row} moved");
        }
        let (m, v) = opt.moments(table).unwrap();
        for row in [0usize, 2, 3, 5] {
            assert!(m.row(row).iter().all(|x| x.to_bits() == 0));
            assert!(v.row(row).iter().all(|x| x.to_bits() == 0));
        }
        assert_ne!(value.row(1), init.row(1));
    }
}
