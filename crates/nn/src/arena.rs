//! Size-classed tensor arena for allocation-free training steps.
//!
//! A [`TensorArena`] recycles the `Vec<f32>` buffers behind [`Tensor`]s
//! across tape lifetimes: every buffer a [`crate::tape::Graph`] allocates
//! for a node value or gradient is drawn from the arena and returned to it
//! when the tape is reset (or dropped). After the first training step has
//! warmed the free lists, subsequent steps of the same shape perform zero
//! heap allocations on the tape path.
//!
//! Buffers are binned by the floor-log2 of their *capacity*; an allocation
//! request of `n` elements pops from the ceil-log2(`n`) bin, whose buffers
//! are guaranteed to hold at least `n` elements. Fresh buffers are created
//! with a power-of-two capacity so they land back in the bin they were
//! served from, keeping reuse exact across steps.
//!
//! The arena is single-threaded by design (`RefCell`, shared via `Rc`):
//! tapes are thread-local in the data-parallel trainer, so each worker owns
//! one arena and no synchronization is needed on the hot path.

use std::cell::{Cell, RefCell};

use crate::tensor::Tensor;

/// One bin per possible capacity class (`2^0 ..= 2^63`).
const CLASSES: usize = 64;

/// Upper bound on buffers retained per class — a backstop against
/// pathological workloads hoarding memory; normal training steps keep a
/// bounded live set far below this.
const MAX_PER_CLASS: usize = 1024;

/// Reuse statistics, readable via [`TensorArena::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Allocations served from a free list (no heap traffic).
    pub reused: u64,
    /// Allocations that had to create a fresh buffer.
    pub fresh: u64,
    /// Buffers returned to the free lists.
    pub recycled: u64,
}

/// A pool of `f32` buffers binned by power-of-two capacity class.
#[derive(Debug, Default)]
pub struct TensorArena {
    classes: RefCell<Vec<Vec<Vec<f32>>>>,
    reused: Cell<u64>,
    fresh: Cell<u64>,
    recycled: Cell<u64>,
}

/// Class index whose buffers are all large enough to hold `n` elements.
#[inline]
fn class_for_len(n: usize) -> usize {
    debug_assert!(n > 0);
    (usize::BITS - (n - 1).leading_zeros()) as usize
}

/// Class index a buffer of this capacity is stored under.
#[inline]
fn class_for_capacity(cap: usize) -> usize {
    debug_assert!(cap > 0);
    (usize::BITS - 1 - cap.leading_zeros()) as usize
}

impl TensorArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zeroed `rows × cols` tensor, served from the free lists when a
    /// large-enough buffer is available.
    pub fn alloc(&self, rows: usize, cols: usize) -> Tensor {
        let n = rows * cols;
        if n == 0 {
            return Tensor::zeros(rows, cols);
        }
        let class = class_for_len(n);
        let mut buf = {
            let mut classes = self.classes.borrow_mut();
            if classes.len() <= class {
                classes.resize_with(CLASSES, Vec::new);
            }
            classes[class].pop()
        };
        match &mut buf {
            Some(v) => {
                self.reused.set(self.reused.get() + 1);
                v.clear();
                v.resize(n, 0.0);
            }
            None => {
                self.fresh.set(self.fresh.get() + 1);
                let mut v = Vec::with_capacity(1usize << class);
                v.resize(n, 0.0);
                buf = Some(v);
            }
        }
        Tensor::from_vec(rows, cols, buf.unwrap())
    }

    /// Like [`TensorArena::alloc`] but with the contents of `src`.
    pub fn alloc_copy(&self, src: &Tensor) -> Tensor {
        let mut t = self.alloc(src.rows(), src.cols());
        t.data_mut().copy_from_slice(src.data());
        t
    }

    /// Returns a tensor's buffer to the free lists for reuse. Buffers the
    /// arena did not create are accepted too (they are just `Vec<f32>`s)
    /// and binned by their own capacity.
    pub fn recycle(&self, t: Tensor) {
        let v = t.into_raw();
        let cap = v.capacity();
        if cap == 0 {
            return;
        }
        let class = class_for_capacity(cap);
        let mut classes = self.classes.borrow_mut();
        if classes.len() <= class {
            classes.resize_with(CLASSES, Vec::new);
        }
        if classes[class].len() < MAX_PER_CLASS {
            classes[class].push(v);
            self.recycled.set(self.recycled.get() + 1);
        }
    }

    /// Current reuse counters.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            reused: self.reused.get(),
            fresh: self.fresh.get(),
            recycled: self.recycled.get(),
        }
    }

    /// Buffers currently parked in the free lists.
    pub fn pooled_buffers(&self) -> usize {
        self.classes.borrow().iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices() {
        assert_eq!(class_for_len(1), 0);
        assert_eq!(class_for_len(2), 1);
        assert_eq!(class_for_len(3), 2);
        assert_eq!(class_for_len(4), 2);
        assert_eq!(class_for_len(5), 3);
        assert_eq!(class_for_capacity(1), 0);
        assert_eq!(class_for_capacity(4), 2);
        assert_eq!(class_for_capacity(7), 2);
        assert_eq!(class_for_capacity(8), 3);
    }

    #[test]
    fn alloc_recycle_roundtrip_reuses_buffer() {
        let arena = TensorArena::new();
        let t = arena.alloc(3, 5);
        assert_eq!(t.shape(), (3, 5));
        assert!(t.data().iter().all(|&x| x == 0.0));
        arena.recycle(t);
        assert_eq!(arena.pooled_buffers(), 1);
        // Same class (16-element bucket) → served from the pool.
        let t2 = arena.alloc(4, 4);
        assert_eq!(arena.stats().reused, 1);
        assert!(t2.data().iter().all(|&x| x == 0.0));
        assert_eq!(arena.pooled_buffers(), 0);
    }

    #[test]
    fn recycled_buffers_are_zeroed_on_realloc() {
        let arena = TensorArena::new();
        let mut t = arena.alloc(2, 2);
        t.data_mut().fill(7.0);
        arena.recycle(t);
        let t2 = arena.alloc(2, 2);
        assert!(t2.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn foreign_buffers_are_accepted() {
        let arena = TensorArena::new();
        arena.recycle(Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        // Capacity 3 lands in class 1 (floor log2 3); a 2-element request
        // (class 1) can reuse it.
        let t = arena.alloc(1, 2);
        assert_eq!(arena.stats().reused, 1);
        assert_eq!(t.data(), &[0.0, 0.0]);
    }

    #[test]
    fn zero_sized_allocs_are_fine() {
        let arena = TensorArena::new();
        let t = arena.alloc(0, 5);
        assert_eq!(t.shape(), (0, 5));
        arena.recycle(t);
        assert_eq!(arena.stats(), ArenaStats { reused: 0, fresh: 0, recycled: 0 });
    }
}
