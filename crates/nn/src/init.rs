//! Weight initializers.

use rand::RngExt;

use crate::tensor::Tensor;

/// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
/// The right default for tanh/sigmoid networks and fine for shallow ReLU
/// stacks like ours.
pub fn xavier_uniform(rng: &mut impl RngExt, rows: usize, cols: usize) -> Tensor {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    Tensor::from_fn(rows, cols, |_, _| rng.random_range(-a..a))
}

/// Uniform in `[lo, hi)`.
pub fn uniform(rng: &mut impl RngExt, rows: usize, cols: usize, lo: f32, hi: f32) -> Tensor {
    Tensor::from_fn(rows, cols, |_, _| rng.random_range(lo..hi))
}

/// Row-normalized random embeddings: each row drawn uniformly then scaled
/// to unit L2 norm — the paper's "h⁰ and l⁰ are chosen randomly" with the
/// same scale the L2-normalized aggregation rounds produce.
pub fn unit_rows(rng: &mut impl RngExt, rows: usize, cols: usize) -> Tensor {
    let mut t = uniform(rng, rows, cols, -1.0, 1.0);
    for i in 0..rows {
        let norm = t.row(i).iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
        for x in t.row_mut(i) {
            *x /= norm;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = xavier_uniform(&mut rng, 10, 20);
        let a = (6.0f32 / 30.0).sqrt();
        assert!(t.data().iter().all(|&x| x > -a && x < a));
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = uniform(&mut rng, 5, 5, -0.5, 0.5);
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn unit_rows_have_unit_norm() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = unit_rows(&mut rng, 8, 16);
        for i in 0..8 {
            let n = t.row(i).iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(9), 3, 3);
        let b = xavier_uniform(&mut StdRng::seed_from_u64(9), 3, 3);
        assert_eq!(a, b);
    }
}
