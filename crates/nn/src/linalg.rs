//! Dense symmetric linear algebra (f64), used by the classical-MDS
//! baseline: a cyclic Jacobi eigensolver and the double-centering
//! transform.

/// A dense symmetric matrix stored fully (row-major) in `f64`.
#[derive(Clone, Debug)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// Zero matrix of order `n`.
    pub fn zeros(n: usize) -> Self {
        SymMatrix { n, data: vec![0.0; n * n] }
    }

    /// Builds from a full row-major buffer; symmetry is enforced by
    /// averaging `(i,j)` and `(j,i)`.
    pub fn from_dense(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n);
        let mut m = SymMatrix { n, data };
        for i in 0..n {
            for j in (i + 1)..n {
                let avg = 0.5 * (m.get(i, j) + m.get(j, i));
                m.set(i, j, avg);
                m.set(j, i, avg);
            }
        }
        m
    }

    /// Order of the matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Element assignment (caller keeps symmetry).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Sum of squares of off-diagonal elements (convergence measure).
    fn off_diag_norm_sq(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    s += self.get(i, j) * self.get(i, j);
                }
            }
        }
        s
    }
}

/// Eigen-decomposition result: `values[k]` belongs to the eigenvector
/// stored in column `k` of `vectors` (row-major `n × n`), sorted by
/// descending eigenvalue.
#[derive(Clone, Debug)]
pub struct EigenDecomposition {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Row-major `n × n`; column `k` is the k-th eigenvector.
    pub vectors: Vec<f64>,
    /// Matrix order.
    pub n: usize,
}

impl EigenDecomposition {
    /// Component `i` of eigenvector `k`.
    pub fn vector_component(&self, k: usize, i: usize) -> f64 {
        self.vectors[i * self.n + k]
    }
}

/// Cyclic Jacobi eigensolver for symmetric matrices.
///
/// Runs sweeps of Givens rotations until the off-diagonal mass drops below
/// `tol` (relative to the Frobenius norm) or `max_sweeps` is reached.
/// O(n³) per sweep; intended for the ≤ ~1000-point matrices the MDS
/// baseline produces.
pub fn jacobi_eigen(mut a: SymMatrix, tol: f64, max_sweeps: usize) -> EigenDecomposition {
    let n = a.n();
    // Eigenvector accumulator starts as identity.
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    let frob = a.data.iter().map(|x| x * x).sum::<f64>().max(1e-300);
    for _ in 0..max_sweeps {
        if a.off_diag_norm_sq() / frob < tol * tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = a.get(p, p);
                let aqq = a.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                // Stable tangent of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate columns p and q (strided pass), then rows p
                // and q. The row pass walks two disjoint row slices
                // linearly — same arithmetic and update order as the
                // accessor-based version, minus the per-element index
                // recomputation in the hot loop.
                let d = &mut a.data;
                for k in 0..n {
                    let akp = d[k * n + p];
                    let akq = d[k * n + q];
                    d[k * n + p] = c * akp - s * akq;
                    d[k * n + q] = s * akp + c * akq;
                }
                // p < q, so row p lies entirely before row q. The
                // dispatched kernel applies the same per-element op
                // sequence as the scalar pass (two muls, one sub/add),
                // so the result is backend-independent bit for bit.
                let (lo, hi) = d.split_at_mut(q * n);
                let rp = &mut lo[p * n..p * n + n];
                let rq = &mut hi[..n];
                crate::kernels::rotate_rows_f64(rp, rq, c, s);
                // Accumulate rotation into eigenvectors.
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    // Extract eigenvalues and sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let values_raw: Vec<f64> = (0..n).map(|i| a.get(i, i)).collect();
    order.sort_by(|&i, &j| values_raw[j].total_cmp(&values_raw[i]));
    let values: Vec<f64> = order.iter().map(|&i| values_raw[i]).collect();
    let mut vectors = vec![0.0f64; n * n];
    for (new_col, &old_col) in order.iter().enumerate() {
        for row in 0..n {
            vectors[row * n + new_col] = v[row * n + old_col];
        }
    }
    EigenDecomposition { values, vectors, n }
}

/// Double-centers a squared-distance matrix: `B = -1/2 · J D² J` with
/// `J = I - (1/n)·11ᵀ`. This is the Gram matrix classical MDS
/// eigendecomposes. `d2` is the row-major `n × n` matrix of *squared*
/// distances.
pub fn double_center(n: usize, d2: &[f64]) -> SymMatrix {
    assert_eq!(d2.len(), n * n);
    let mut row_mean = vec![0.0f64; n];
    let mut total = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            row_mean[i] += d2[i * n + j];
        }
        total += row_mean[i];
        row_mean[i] /= n as f64;
    }
    let grand = total / (n * n) as f64;
    // Fill the buffer in one pass instead of zero-initializing and then
    // overwriting every element through the accessor.
    let mut data = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            data.push(-0.5 * (d2[i * n + j] - row_mean[i] - row_mean[j] + grand));
        }
    }
    SymMatrix { n, data }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eigen_of_diagonal() {
        let mut a = SymMatrix::zeros(3);
        a.set(0, 0, 3.0);
        a.set(1, 1, -1.0);
        a.set(2, 2, 7.0);
        let e = jacobi_eigen(a, 1e-12, 50);
        assert!((e.values[0] - 7.0).abs() < 1e-9);
        assert!((e.values[1] - 3.0).abs() < 1e-9);
        assert!((e.values[2] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn eigen_of_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = SymMatrix::from_dense(2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = jacobi_eigen(a, 1e-12, 50);
        assert!((e.values[0] - 3.0).abs() < 1e-9);
        assert!((e.values[1] - 1.0).abs() < 1e-9);
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let (x, y) = (e.vector_component(0, 0), e.vector_component(0, 1));
        assert!((x.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
        assert!((x - y).abs() < 1e-9);
    }

    #[test]
    fn reconstruction_from_eigenpairs() {
        // A = V Λ Vᵀ must reproduce the original matrix.
        let a_data = vec![
            4.0, 1.0, -2.0, //
            1.0, 2.0, 0.0, //
            -2.0, 0.0, 3.0,
        ];
        let a = SymMatrix::from_dense(3, a_data.clone());
        let e = jacobi_eigen(a, 1e-14, 100);
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += e.values[k] * e.vector_component(k, i) * e.vector_component(k, j);
                }
                assert!((s - a_data[i * 3 + j]).abs() < 1e-8, "({i},{j}): {s}");
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = SymMatrix::from_dense(
            4,
            vec![
                5.0, 2.0, 0.0, 1.0, //
                2.0, 4.0, 1.0, 0.0, //
                0.0, 1.0, 3.0, 2.0, //
                1.0, 0.0, 2.0, 6.0,
            ],
        );
        let e = jacobi_eigen(a, 1e-14, 100);
        for k in 0..4 {
            for l in 0..4 {
                let dot: f64 =
                    (0..4).map(|i| e.vector_component(k, i) * e.vector_component(l, i)).sum();
                let expect = if k == l { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-8, "({k},{l}): {dot}");
            }
        }
    }

    #[test]
    fn double_center_recovers_1d_configuration() {
        // Points on a line at 0, 1, 3 → classical MDS must recover the
        // pairwise geometry: B = X Xᵀ for centered X.
        let pts = [0.0f64, 1.0, 3.0];
        let n = 3;
        let mut d2 = vec![0.0f64; 9];
        for i in 0..n {
            for j in 0..n {
                d2[i * n + j] = (pts[i] - pts[j]).powi(2);
            }
        }
        let b = double_center(n, &d2);
        let e = jacobi_eigen(b, 1e-14, 100);
        // Exactly one significant eigenvalue (1-D configuration).
        assert!(e.values[0] > 1.0);
        assert!(e.values[1].abs() < 1e-9);
        // Embedded coordinates reproduce pairwise distances.
        let coord: Vec<f64> =
            (0..n).map(|i| e.values[0].sqrt() * e.vector_component(0, i)).collect();
        for i in 0..n {
            for j in 0..n {
                let d = (coord[i] - coord[j]).abs();
                assert!((d * d - d2[i * n + j]).abs() < 1e-8);
            }
        }
    }
}
