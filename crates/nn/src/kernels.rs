//! Runtime-dispatched SIMD kernels under the tensor API.
//!
//! Every hot loop of the numeric stack funnels through this module: the
//! blocked matmul cores, the `y += α·x` accumulate (axpy) that dominates
//! neighborhood aggregation, the LeakyReLU activation sweep, the Jacobi
//! row rotation of the f64 eigensolver, and the int8 dequantizing
//! accumulate of the quantized inference cache. Each kernel has an
//! arch-agnostic scalar reference and, on `x86_64`, an AVX2 variant
//! selected **once** at startup via `is_x86_feature_detected!` — std
//! only, no new dependencies. Setting `GEM_FORCE_SCALAR=1` pins the
//! process to the scalar reference (the CI escape hatch and A/B lever).
//!
//! # Determinism contract
//!
//! The SIMD variants are **bit-identical** to the scalar reference, not
//! merely close. This is possible because every vectorized loop is
//! element-independent: each output element is produced by the same
//! sequence of individually rounded operations in both variants — SIMD
//! only computes eight elements of that sequence at a time. In
//! particular the matmul cores keep each output element a single chain
//! of adds in ascending-`k` order (the invariant the training
//! determinism proptests pin), and no reduction is ever reassociated.
//! Order-sensitive reductions (row sums, norms, dot products) are *not*
//! vectorized for exactly that reason.
//!
//! # Precision policy
//!
//! [`Precision::Strict`] (the default everywhere) rounds the multiply
//! and the add of every `acc + a·b` separately — the historical scalar
//! semantics. [`Precision::Fused`] contracts them into one correctly
//! rounded fused multiply-add (`vfmaddps` on AVX2/FMA, `f32::mul_add`
//! on the scalar path): higher internal precision *and* double the
//! peak FLOPs, at the price of differing from `Strict` by up to an ULP
//! per accumulation step. Crucially both the scalar and the SIMD
//! `Fused` paths use correctly rounded FMAs, so `Fused` results are
//! *also* bitwise reproducible across backends — the fused training
//! path stays deterministic for any thread count and any machine that
//! runs the same backend. Only opt-in training code uses `Fused`
//! (see `BiSageConfig::fused_kernels` in `gem-core`); inference and
//! every parity-tested path stay `Strict`.

use std::sync::OnceLock;

/// Which kernel implementation backs the dispatched entry points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Arch-agnostic scalar reference (also the forced-CI mode).
    Scalar,
    /// AVX2 (+FMA for [`Precision::Fused`]) `std::arch` kernels.
    Avx2,
}

impl Backend {
    /// Stable lowercase name, logged into bench result lines.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
        }
    }
}

/// Rounding policy of the multiply-accumulate inner ops.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Precision {
    /// Separately rounded multiply and add — bit-identical to the
    /// historical scalar kernels. The default.
    #[default]
    Strict,
    /// Correctly rounded fused multiply-add (higher internal precision,
    /// faster on FMA hardware; differs from `Strict` by ≤ 1 ULP per
    /// accumulation step, still bitwise reproducible per backend pair —
    /// scalar `f32::mul_add` and AVX2 `vfmadd` round identically).
    Fused,
}

/// The process-wide dispatch decision, resolved once on first use:
/// AVX2+FMA when the CPU has them and `GEM_FORCE_SCALAR` is not `1`.
pub fn backend() -> Backend {
    static BACKEND: OnceLock<Backend> = OnceLock::new();
    *BACKEND.get_or_init(|| {
        if std::env::var("GEM_FORCE_SCALAR").as_deref() == Ok("1") {
            return Backend::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        {
            // FMA is required even for Strict-only use so one detected
            // backend serves both precisions.
            if std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma") {
                return Backend::Avx2;
            }
        }
        Backend::Scalar
    })
}

/// Name of the dispatched backend (`"scalar"` / `"avx2"`).
pub fn backend_name() -> &'static str {
    backend().name()
}

/// Rows handled per register tile of the matmul cores.
const MR: usize = 4;
/// `k`-panel height: the slab of `b` rows kept hot in cache while a
/// block of output rows is updated.
const K_PANEL: usize = 256;

// ---------------------------------------------------------------------------
// matmul: out += a · b  (a: m×k, b: k×n, out: m×n; caller zeroes out)
// ---------------------------------------------------------------------------

/// Dispatched `out += a · b` with `a: m×k`, `b: k×n`, `out: m×n`
/// (caller zeroes `out`). Each output element is one chain of adds in
/// ascending-`k` order on every backend.
#[inline]
pub fn matmul(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    matmul_with(backend(), Precision::Strict, a, b, out, m, k, n);
}

/// [`matmul`] with an explicit backend and precision (bench/test hook;
/// the dispatched entry points always pass [`backend()`]).
#[allow(clippy::too_many_arguments)]
pub fn matmul_with(
    be: Backend,
    prec: Precision,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert!(a.len() >= m * k && b.len() >= k * n && out.len() >= m * n, "matmul slice bounds");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    match (be, prec) {
        (Backend::Scalar, Precision::Strict) => matmul_scalar::<false>(a, b, out, m, k, n),
        (Backend::Scalar, Precision::Fused) => matmul_scalar::<true>(a, b, out, m, k, n),
        #[cfg(target_arch = "x86_64")]
        (Backend::Avx2, Precision::Strict) => unsafe { avx2::matmul::<false>(a, b, out, m, k, n) },
        #[cfg(target_arch = "x86_64")]
        (Backend::Avx2, Precision::Fused) => unsafe { avx2::matmul::<true>(a, b, out, m, k, n) },
        #[cfg(not(target_arch = "x86_64"))]
        (Backend::Avx2, _) => unreachable!("Avx2 backend is never selected off x86_64"),
    }
}

/// The cache-blocked, register-tiled ikj scalar core (the reference the
/// SIMD variants are bit-equal to). `FUSED` switches each `acc + c·b`
/// between separate rounding and one fused rounding.
fn matmul_scalar<const FUSED: bool>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    #[inline(always)]
    fn madd<const FUSED: bool>(acc: f32, c: f32, x: f32) -> f32 {
        if FUSED {
            c.mul_add(x, acc)
        } else {
            acc + c * x
        }
    }
    for k0 in (0..k).step_by(K_PANEL) {
        let k1 = (k0 + K_PANEL).min(k);
        let mut i = 0;
        while i + MR <= m {
            let a0 = &a[i * k..(i + 1) * k];
            let a1 = &a[(i + 1) * k..(i + 2) * k];
            let a2 = &a[(i + 2) * k..(i + 3) * k];
            let a3 = &a[(i + 3) * k..(i + 4) * k];
            let block = &mut out[i * n..(i + MR) * n];
            let (o0, rest) = block.split_at_mut(n);
            let (o1, rest) = rest.split_at_mut(n);
            let (o2, o3) = rest.split_at_mut(n);
            for kk in k0..k1 {
                let b_row = &b[kk * n..kk * n + n];
                let (c0, c1, c2, c3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
                for ((((&bv, v0), v1), v2), v3) in
                    b_row.iter().zip(&mut *o0).zip(&mut *o1).zip(&mut *o2).zip(&mut *o3)
                {
                    *v0 = madd::<FUSED>(*v0, c0, bv);
                    *v1 = madd::<FUSED>(*v1, c1, bv);
                    *v2 = madd::<FUSED>(*v2, c2, bv);
                    *v3 = madd::<FUSED>(*v3, c3, bv);
                }
            }
            i += MR;
        }
        while i < m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (kk, &c) in a_row.iter().enumerate().take(k1).skip(k0) {
                let b_row = &b[kk * n..kk * n + n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o = madd::<FUSED>(*o, c, bv);
                }
            }
            i += 1;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! The AVX2 kernel bodies. Every function here carries
    //! `#[target_feature(enable = "avx2,fma")]` so the whole loop body
    //! compiles with 256-bit vectors; callers go through the checked
    //! dispatch in the parent module.
    use super::{K_PANEL, MR};
    use std::arch::x86_64::*;

    /// `acc + c·x`, one rounding (`FUSED`) or two (`!FUSED`).
    #[inline(always)]
    unsafe fn madd<const FUSED: bool>(acc: __m256, c: __m256, x: __m256) -> __m256 {
        if FUSED {
            _mm256_fmadd_ps(c, x, acc)
        } else {
            _mm256_add_ps(acc, _mm256_mul_ps(c, x))
        }
    }

    #[inline(always)]
    fn smadd<const FUSED: bool>(acc: f32, c: f32, x: f32) -> f32 {
        if FUSED {
            c.mul_add(x, acc)
        } else {
            acc + c * x
        }
    }

    /// Lane mask enabling the low `t` (1..=7) of 8 f32 lanes, for
    /// maskload/maskstore column tails. Disabled lanes are never read
    /// or written, so tails at the end of a buffer stay in bounds.
    #[inline(always)]
    unsafe fn tail_mask(t: usize) -> __m256i {
        let idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        _mm256_cmpgt_epi32(_mm256_set1_epi32(t as i32), idx)
    }

    /// Register-accumulated blocked matmul: output tiles of `MR`
    /// rows × 16 columns stay in ymm registers across each k-panel
    /// (loaded once, stored once), instead of a load+store per `kk`.
    /// The 16-wide strip runs 8 FMAs per 6 loads, past the load-port
    /// bound of an 8-wide tile; leftover columns take one 8-wide strip
    /// and then a masked strip, so no column runs scalar. Per output
    /// element this is still the same ascending-`k` chain of
    /// individually rounded ops as the scalar core.
    ///
    /// # Safety
    /// Caller must verify AVX2(+FMA) support and slice bounds
    /// (`a ≥ m·k`, `b ≥ k·n`, `out ≥ m·n`).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn matmul<const FUSED: bool>(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        let n8 = n - n % 8;
        for k0 in (0..k).step_by(K_PANEL) {
            let k1 = (k0 + K_PANEL).min(k);
            let mut i = 0;
            while i + MR <= m {
                // Full 16-wide column strips: 4 rows × 2 vectors of
                // accumulators (8 FMAs per 4 broadcasts + 2 `b` loads).
                let mut j = 0;
                while j + 16 <= n {
                    let mut acc00 = _mm256_loadu_ps(op.add(i * n + j));
                    let mut acc01 = _mm256_loadu_ps(op.add(i * n + j + 8));
                    let mut acc10 = _mm256_loadu_ps(op.add((i + 1) * n + j));
                    let mut acc11 = _mm256_loadu_ps(op.add((i + 1) * n + j + 8));
                    let mut acc20 = _mm256_loadu_ps(op.add((i + 2) * n + j));
                    let mut acc21 = _mm256_loadu_ps(op.add((i + 2) * n + j + 8));
                    let mut acc30 = _mm256_loadu_ps(op.add((i + 3) * n + j));
                    let mut acc31 = _mm256_loadu_ps(op.add((i + 3) * n + j + 8));
                    for kk in k0..k1 {
                        let bv0 = _mm256_loadu_ps(bp.add(kk * n + j));
                        let bv1 = _mm256_loadu_ps(bp.add(kk * n + j + 8));
                        let c0 = _mm256_set1_ps(*ap.add(i * k + kk));
                        acc00 = madd::<FUSED>(acc00, c0, bv0);
                        acc01 = madd::<FUSED>(acc01, c0, bv1);
                        let c1 = _mm256_set1_ps(*ap.add((i + 1) * k + kk));
                        acc10 = madd::<FUSED>(acc10, c1, bv0);
                        acc11 = madd::<FUSED>(acc11, c1, bv1);
                        let c2 = _mm256_set1_ps(*ap.add((i + 2) * k + kk));
                        acc20 = madd::<FUSED>(acc20, c2, bv0);
                        acc21 = madd::<FUSED>(acc21, c2, bv1);
                        let c3 = _mm256_set1_ps(*ap.add((i + 3) * k + kk));
                        acc30 = madd::<FUSED>(acc30, c3, bv0);
                        acc31 = madd::<FUSED>(acc31, c3, bv1);
                    }
                    _mm256_storeu_ps(op.add(i * n + j), acc00);
                    _mm256_storeu_ps(op.add(i * n + j + 8), acc01);
                    _mm256_storeu_ps(op.add((i + 1) * n + j), acc10);
                    _mm256_storeu_ps(op.add((i + 1) * n + j + 8), acc11);
                    _mm256_storeu_ps(op.add((i + 2) * n + j), acc20);
                    _mm256_storeu_ps(op.add((i + 2) * n + j + 8), acc21);
                    _mm256_storeu_ps(op.add((i + 3) * n + j), acc30);
                    _mm256_storeu_ps(op.add((i + 3) * n + j + 8), acc31);
                    j += 16;
                }
                // At most one leftover full 8-wide strip.
                if j < n8 {
                    let mut acc0 = _mm256_loadu_ps(op.add(i * n + j));
                    let mut acc1 = _mm256_loadu_ps(op.add((i + 1) * n + j));
                    let mut acc2 = _mm256_loadu_ps(op.add((i + 2) * n + j));
                    let mut acc3 = _mm256_loadu_ps(op.add((i + 3) * n + j));
                    for kk in k0..k1 {
                        let bv = _mm256_loadu_ps(bp.add(kk * n + j));
                        let c0 = _mm256_set1_ps(*ap.add(i * k + kk));
                        let c1 = _mm256_set1_ps(*ap.add((i + 1) * k + kk));
                        let c2 = _mm256_set1_ps(*ap.add((i + 2) * k + kk));
                        let c3 = _mm256_set1_ps(*ap.add((i + 3) * k + kk));
                        acc0 = madd::<FUSED>(acc0, c0, bv);
                        acc1 = madd::<FUSED>(acc1, c1, bv);
                        acc2 = madd::<FUSED>(acc2, c2, bv);
                        acc3 = madd::<FUSED>(acc3, c3, bv);
                    }
                    _mm256_storeu_ps(op.add(i * n + j), acc0);
                    _mm256_storeu_ps(op.add((i + 1) * n + j), acc1);
                    _mm256_storeu_ps(op.add((i + 2) * n + j), acc2);
                    _mm256_storeu_ps(op.add((i + 3) * n + j), acc3);
                    j += 8;
                }
                // Masked column tail: disabled lanes load as 0.0 and are
                // never stored, so the enabled lanes run the exact
                // scalar chain order.
                if j < n {
                    let mask = tail_mask(n - j);
                    let mut acc0 = _mm256_maskload_ps(op.add(i * n + j), mask);
                    let mut acc1 = _mm256_maskload_ps(op.add((i + 1) * n + j), mask);
                    let mut acc2 = _mm256_maskload_ps(op.add((i + 2) * n + j), mask);
                    let mut acc3 = _mm256_maskload_ps(op.add((i + 3) * n + j), mask);
                    for kk in k0..k1 {
                        let bv = _mm256_maskload_ps(bp.add(kk * n + j), mask);
                        let c0 = _mm256_set1_ps(*ap.add(i * k + kk));
                        let c1 = _mm256_set1_ps(*ap.add((i + 1) * k + kk));
                        let c2 = _mm256_set1_ps(*ap.add((i + 2) * k + kk));
                        let c3 = _mm256_set1_ps(*ap.add((i + 3) * k + kk));
                        acc0 = madd::<FUSED>(acc0, c0, bv);
                        acc1 = madd::<FUSED>(acc1, c1, bv);
                        acc2 = madd::<FUSED>(acc2, c2, bv);
                        acc3 = madd::<FUSED>(acc3, c3, bv);
                    }
                    _mm256_maskstore_ps(op.add(i * n + j), mask, acc0);
                    _mm256_maskstore_ps(op.add((i + 1) * n + j), mask, acc1);
                    _mm256_maskstore_ps(op.add((i + 2) * n + j), mask, acc2);
                    _mm256_maskstore_ps(op.add((i + 3) * n + j), mask, acc3);
                }
                i += MR;
            }
            // Row tail: one accumulator row at a time.
            while i < m {
                let mut j = 0;
                while j < n8 {
                    let mut acc = _mm256_loadu_ps(op.add(i * n + j));
                    for kk in k0..k1 {
                        let bv = _mm256_loadu_ps(bp.add(kk * n + j));
                        let c = _mm256_set1_ps(*ap.add(i * k + kk));
                        acc = madd::<FUSED>(acc, c, bv);
                    }
                    _mm256_storeu_ps(op.add(i * n + j), acc);
                    j += 8;
                }
                while j < n {
                    let mut s = *op.add(i * n + j);
                    for kk in k0..k1 {
                        s = smadd::<FUSED>(s, *ap.add(i * k + kk), *bp.add(kk * n + j));
                    }
                    *op.add(i * n + j) = s;
                    j += 1;
                }
                i += 1;
            }
        }
    }

    /// Register-accumulated `out += aᵀ · b` with `a: k×m` stored
    /// untransposed, `b: k×n`, `out: m×n`. The ascending-`kk` chain per
    /// output element matches the scalar streaming core bit for bit.
    ///
    /// # Safety
    /// Caller must verify AVX2(+FMA) support and slice bounds.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn matmul_tn<const FUSED: bool>(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        k: usize,
        m: usize,
        n: usize,
    ) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        let n8 = n - n % 8;
        let mut i = 0;
        while i + MR <= m {
            let mut j = 0;
            while j < n8 {
                let mut acc0 = _mm256_loadu_ps(op.add(i * n + j));
                let mut acc1 = _mm256_loadu_ps(op.add((i + 1) * n + j));
                let mut acc2 = _mm256_loadu_ps(op.add((i + 2) * n + j));
                let mut acc3 = _mm256_loadu_ps(op.add((i + 3) * n + j));
                for kk in 0..k {
                    let bv = _mm256_loadu_ps(bp.add(kk * n + j));
                    let c0 = _mm256_set1_ps(*ap.add(kk * m + i));
                    let c1 = _mm256_set1_ps(*ap.add(kk * m + i + 1));
                    let c2 = _mm256_set1_ps(*ap.add(kk * m + i + 2));
                    let c3 = _mm256_set1_ps(*ap.add(kk * m + i + 3));
                    acc0 = madd::<FUSED>(acc0, c0, bv);
                    acc1 = madd::<FUSED>(acc1, c1, bv);
                    acc2 = madd::<FUSED>(acc2, c2, bv);
                    acc3 = madd::<FUSED>(acc3, c3, bv);
                }
                _mm256_storeu_ps(op.add(i * n + j), acc0);
                _mm256_storeu_ps(op.add((i + 1) * n + j), acc1);
                _mm256_storeu_ps(op.add((i + 2) * n + j), acc2);
                _mm256_storeu_ps(op.add((i + 3) * n + j), acc3);
                j += 8;
            }
            while j < n {
                let mut s0 = *op.add(i * n + j);
                let mut s1 = *op.add((i + 1) * n + j);
                let mut s2 = *op.add((i + 2) * n + j);
                let mut s3 = *op.add((i + 3) * n + j);
                for kk in 0..k {
                    let bv = *bp.add(kk * n + j);
                    s0 = smadd::<FUSED>(s0, *ap.add(kk * m + i), bv);
                    s1 = smadd::<FUSED>(s1, *ap.add(kk * m + i + 1), bv);
                    s2 = smadd::<FUSED>(s2, *ap.add(kk * m + i + 2), bv);
                    s3 = smadd::<FUSED>(s3, *ap.add(kk * m + i + 3), bv);
                }
                *op.add(i * n + j) = s0;
                *op.add((i + 1) * n + j) = s1;
                *op.add((i + 2) * n + j) = s2;
                *op.add((i + 3) * n + j) = s3;
                j += 1;
            }
            i += MR;
        }
        while i < m {
            let mut j = 0;
            while j < n8 {
                let mut acc = _mm256_loadu_ps(op.add(i * n + j));
                for kk in 0..k {
                    let bv = _mm256_loadu_ps(bp.add(kk * n + j));
                    let c = _mm256_set1_ps(*ap.add(kk * m + i));
                    acc = madd::<FUSED>(acc, c, bv);
                }
                _mm256_storeu_ps(op.add(i * n + j), acc);
                j += 8;
            }
            while j < n {
                let mut s = *op.add(i * n + j);
                for kk in 0..k {
                    s = smadd::<FUSED>(s, *ap.add(kk * m + i), *bp.add(kk * n + j));
                }
                *op.add(i * n + j) = s;
                j += 1;
            }
            i += 1;
        }
    }

    /// `y[i] += α·x[i]`, separately rounded (bit-equal to scalar).
    ///
    /// # Safety
    /// Caller must verify AVX2 support; `y.len() == x.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
        let len = y.len();
        let yp = y.as_mut_ptr();
        let xp = x.as_ptr();
        let a = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i + 8 <= len {
            let yv = _mm256_loadu_ps(yp.add(i));
            let xv = _mm256_loadu_ps(xp.add(i));
            _mm256_storeu_ps(yp.add(i), _mm256_add_ps(yv, _mm256_mul_ps(a, xv)));
            i += 8;
        }
        while i < len {
            *yp.add(i) += alpha * *xp.add(i);
            i += 1;
        }
    }

    /// LeakyReLU sweep `x = if x ≥ 0 { x } else { slope·x }` (the
    /// compare admits `-0.0`, matching the scalar branch).
    ///
    /// # Safety
    /// Caller must verify AVX2 support.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn leaky_relu(xs: &mut [f32], slope: f32) {
        let len = xs.len();
        let p = xs.as_mut_ptr();
        let s = _mm256_set1_ps(slope);
        let zero = _mm256_setzero_ps();
        let mut i = 0;
        while i + 8 <= len {
            let x = _mm256_loadu_ps(p.add(i));
            let neg = _mm256_mul_ps(s, x);
            let keep = _mm256_cmp_ps::<_CMP_GE_OQ>(x, zero);
            _mm256_storeu_ps(p.add(i), _mm256_blendv_ps(neg, x, keep));
            i += 8;
        }
        while i < len {
            let x = *p.add(i);
            *p.add(i) = if x >= 0.0 { x } else { slope * x };
            i += 1;
        }
    }

    /// Jacobi row rotation: `(p, q) ← (c·p − s·q, s·p + c·q)`
    /// element-wise over two equal-length f64 rows, each output from
    /// the scalar op sequence (two muls, one sub/add).
    ///
    /// # Safety
    /// Caller must verify AVX2 support; `p.len() == q.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn rotate_rows_f64(p: &mut [f64], q: &mut [f64], c: f64, s: f64) {
        let len = p.len();
        let pp = p.as_mut_ptr();
        let qp = q.as_mut_ptr();
        let cv = _mm256_set1_pd(c);
        let sv = _mm256_set1_pd(s);
        let mut i = 0;
        while i + 4 <= len {
            let x = _mm256_loadu_pd(pp.add(i));
            let y = _mm256_loadu_pd(qp.add(i));
            let np = _mm256_sub_pd(_mm256_mul_pd(cv, x), _mm256_mul_pd(sv, y));
            let nq = _mm256_add_pd(_mm256_mul_pd(sv, x), _mm256_mul_pd(cv, y));
            _mm256_storeu_pd(pp.add(i), np);
            _mm256_storeu_pd(qp.add(i), nq);
            i += 4;
        }
        while i < len {
            let (x, y) = (*pp.add(i), *qp.add(i));
            *pp.add(i) = c * x - s * y;
            *qp.add(i) = s * x + c * y;
            i += 1;
        }
    }

    /// Dequantizing accumulate `y[i] += a·q[i] + b` over int8 codes
    /// (`a = w·scale`, `b = w·zero_point` folded by the caller). Scalar
    /// op order per element: widen, `a·qf`, `+ b`, `+ y`.
    ///
    /// # Safety
    /// Caller must verify AVX2 support; `y.len() == q.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn axpy_dequant_i8(y: &mut [f32], a: f32, b: f32, q: &[i8]) {
        let len = y.len();
        let yp = y.as_mut_ptr();
        let qp = q.as_ptr();
        let av = _mm256_set1_ps(a);
        let bv = _mm256_set1_ps(b);
        let mut i = 0;
        while i + 8 <= len {
            let codes = _mm_loadl_epi64(qp.add(i) as *const __m128i);
            let wide = _mm256_cvtepi8_epi32(codes);
            let qf = _mm256_cvtepi32_ps(wide);
            let t = _mm256_add_ps(_mm256_mul_ps(av, qf), bv);
            _mm256_storeu_ps(yp.add(i), _mm256_add_ps(_mm256_loadu_ps(yp.add(i)), t));
            i += 8;
        }
        while i < len {
            *yp.add(i) += a * (*qp.add(i) as f32) + b;
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// matmul_tn: out += aᵀ · b  (a: k×m stored untransposed, b: k×n, out: m×n)
// ---------------------------------------------------------------------------

/// Dispatched `out += aᵀ · b` without materializing the transpose
/// (`a: k×m` as stored, `b: k×n`, `out: m×n`; caller zeroes `out`).
#[inline]
pub fn matmul_tn(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    matmul_tn_with(backend(), Precision::Strict, a, b, out, k, m, n);
}

/// [`matmul_tn`] with an explicit backend and precision.
#[allow(clippy::too_many_arguments)]
pub fn matmul_tn_with(
    be: Backend,
    prec: Precision,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    k: usize,
    m: usize,
    n: usize,
) {
    assert!(a.len() >= k * m && b.len() >= k * n && out.len() >= m * n, "matmul_tn slice bounds");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    match (be, prec) {
        (Backend::Scalar, Precision::Strict) => matmul_tn_scalar::<false>(a, b, out, k, m, n),
        (Backend::Scalar, Precision::Fused) => matmul_tn_scalar::<true>(a, b, out, k, m, n),
        #[cfg(target_arch = "x86_64")]
        (Backend::Avx2, Precision::Strict) => unsafe {
            avx2::matmul_tn::<false>(a, b, out, k, m, n)
        },
        #[cfg(target_arch = "x86_64")]
        (Backend::Avx2, Precision::Fused) => unsafe { avx2::matmul_tn::<true>(a, b, out, k, m, n) },
        #[cfg(not(target_arch = "x86_64"))]
        (Backend::Avx2, _) => unreachable!("Avx2 backend is never selected off x86_64"),
    }
}

/// Streaming scalar `out += aᵀ·b` core: both inputs row-contiguous, four
/// output rows updated per `b` row read (the reference the AVX2 variant
/// is bit-equal to).
fn matmul_tn_scalar<const FUSED: bool>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    k: usize,
    m: usize,
    n: usize,
) {
    #[inline(always)]
    fn madd<const FUSED: bool>(acc: f32, c: f32, x: f32) -> f32 {
        if FUSED {
            c.mul_add(x, acc)
        } else {
            acc + c * x
        }
    }
    for kk in 0..k {
        let a_row = &a[kk * m..(kk + 1) * m];
        let b_row = &b[kk * n..(kk + 1) * n];
        let mut i = 0;
        while i + MR <= m {
            let block = &mut out[i * n..(i + MR) * n];
            let (o0, rest) = block.split_at_mut(n);
            let (o1, rest) = rest.split_at_mut(n);
            let (o2, o3) = rest.split_at_mut(n);
            let (c0, c1, c2, c3) = (a_row[i], a_row[i + 1], a_row[i + 2], a_row[i + 3]);
            for ((((&bv, v0), v1), v2), v3) in
                b_row.iter().zip(&mut *o0).zip(&mut *o1).zip(&mut *o2).zip(&mut *o3)
            {
                *v0 = madd::<FUSED>(*v0, c0, bv);
                *v1 = madd::<FUSED>(*v1, c1, bv);
                *v2 = madd::<FUSED>(*v2, c2, bv);
                *v3 = madd::<FUSED>(*v3, c3, bv);
            }
            i += MR;
        }
        while i < m {
            let c = a_row[i];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o = madd::<FUSED>(*o, c, bv);
            }
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Element-independent helpers
// ---------------------------------------------------------------------------

/// Dispatched `y[i] += α·x[i]` (separately rounded on every backend;
/// this is the accumulate inside neighborhood aggregation, gradient
/// scatter, and the segment-weighted sums).
#[inline]
pub fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    axpy_with(backend(), y, alpha, x);
}

/// [`axpy`] with an explicit backend.
pub fn axpy_with(be: Backend, y: &mut [f32], alpha: f32, x: &[f32]) {
    assert_eq!(y.len(), x.len(), "axpy length mismatch");
    match be {
        Backend::Scalar => {
            for (o, &v) in y.iter_mut().zip(x) {
                *o += alpha * v;
            }
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::axpy(y, alpha, x) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => unreachable!("Avx2 backend is never selected off x86_64"),
    }
}

/// Dispatched in-place LeakyReLU sweep `x ← if x ≥ 0 { x } else
/// { slope·x }`.
#[inline]
pub fn leaky_relu(xs: &mut [f32], slope: f32) {
    leaky_relu_with(backend(), xs, slope);
}

/// [`leaky_relu`] with an explicit backend.
pub fn leaky_relu_with(be: Backend, xs: &mut [f32], slope: f32) {
    match be {
        Backend::Scalar => {
            for x in xs {
                if *x < 0.0 {
                    *x *= slope;
                }
            }
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::leaky_relu(xs, slope) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => unreachable!("Avx2 backend is never selected off x86_64"),
    }
}

/// Dispatched Jacobi row rotation `(p, q) ← (c·p − s·q, s·p + c·q)`
/// over two equal-length f64 rows (the eigensolver's hot pass).
#[inline]
pub fn rotate_rows_f64(p: &mut [f64], q: &mut [f64], c: f64, s: f64) {
    rotate_rows_f64_with(backend(), p, q, c, s);
}

/// [`rotate_rows_f64`] with an explicit backend.
pub fn rotate_rows_f64_with(be: Backend, p: &mut [f64], q: &mut [f64], c: f64, s: f64) {
    assert_eq!(p.len(), q.len(), "rotate_rows_f64 length mismatch");
    match be {
        Backend::Scalar => {
            for (apk, aqk) in p.iter_mut().zip(q.iter_mut()) {
                let (x, y) = (*apk, *aqk);
                *apk = c * x - s * y;
                *aqk = s * x + c * y;
            }
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::rotate_rows_f64(p, q, c, s) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => unreachable!("Avx2 backend is never selected off x86_64"),
    }
}

/// Dispatched dequantizing accumulate `y[i] += a·q[i] + b` over int8
/// codes — the quantized inference cache's aggregation step, with
/// `a = w·scale` and `b = w·zero_point` folded by the caller.
#[inline]
pub fn axpy_dequant_i8(y: &mut [f32], a: f32, b: f32, q: &[i8]) {
    axpy_dequant_i8_with(backend(), y, a, b, q);
}

/// [`axpy_dequant_i8`] with an explicit backend.
pub fn axpy_dequant_i8_with(be: Backend, y: &mut [f32], a: f32, b: f32, q: &[i8]) {
    assert_eq!(y.len(), q.len(), "axpy_dequant_i8 length mismatch");
    match be {
        Backend::Scalar => {
            for (o, &code) in y.iter_mut().zip(q) {
                *o += a * (code as f32) + b;
            }
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { avx2::axpy_dequant_i8(y, a, b, q) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => unreachable!("Avx2 backend is never selected off x86_64"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill exercising varied magnitudes.
    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
            })
            .collect()
    }

    fn both_backends() -> Vec<Backend> {
        let mut v = vec![Backend::Scalar];
        if backend() == Backend::Avx2 {
            v.push(Backend::Avx2);
        }
        v
    }

    #[test]
    fn backend_name_is_stable() {
        assert!(matches!(backend_name(), "scalar" | "avx2"));
    }

    #[test]
    fn matmul_backends_bitwise_equal() {
        for &(m, k, n) in &[(1usize, 7usize, 1usize), (4, 8, 16), (5, 13, 9), (7, 300, 70)] {
            let a = fill(m as u64 * 31 + k as u64, m * k);
            let b = fill(n as u64 * 17 + 3, k * n);
            for prec in [Precision::Strict, Precision::Fused] {
                let mut reference = vec![0.0f32; m * n];
                matmul_with(Backend::Scalar, prec, &a, &b, &mut reference, m, k, n);
                for be in both_backends() {
                    let mut out = vec![0.0f32; m * n];
                    matmul_with(be, prec, &a, &b, &mut out, m, k, n);
                    assert_eq!(out, reference, "{be:?}/{prec:?} {m}x{k}x{n}");
                }
            }
        }
    }

    #[test]
    fn matmul_tn_backends_bitwise_equal() {
        for &(k, m, n) in &[(7usize, 1usize, 9usize), (8, 4, 8), (13, 6, 11)] {
            let a = fill(k as u64 + 5, k * m);
            let b = fill(n as u64 + 7, k * n);
            for prec in [Precision::Strict, Precision::Fused] {
                let mut reference = vec![0.0f32; m * n];
                matmul_tn_with(Backend::Scalar, prec, &a, &b, &mut reference, k, m, n);
                for be in both_backends() {
                    let mut out = vec![0.0f32; m * n];
                    matmul_tn_with(be, prec, &a, &b, &mut out, k, m, n);
                    assert_eq!(out, reference, "{be:?}/{prec:?} {k}x{m}x{n}");
                }
            }
        }
    }

    #[test]
    fn helper_backends_bitwise_equal() {
        for len in [0usize, 1, 7, 8, 9, 31, 64] {
            let x = fill(len as u64 + 11, len);
            let codes: Vec<i8> = (0..len).map(|i| ((i * 37) % 255) as i8).collect();
            let mut ys: Vec<Vec<f32>> = Vec::new();
            let mut acts: Vec<Vec<f32>> = Vec::new();
            let mut deqs: Vec<Vec<f32>> = Vec::new();
            let mut rots: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();
            for be in both_backends() {
                let mut y = fill(len as u64 + 23, len);
                axpy_with(be, &mut y, 0.37, &x);
                ys.push(y);
                let mut act = fill(len as u64 + 29, len);
                leaky_relu_with(be, &mut act, 0.01);
                acts.push(act);
                let mut d = fill(len as u64 + 31, len);
                axpy_dequant_i8_with(be, &mut d, 0.011, -0.4, &codes);
                deqs.push(d);
                let mut p: Vec<f64> =
                    fill(len as u64 + 41, len).iter().map(|&v| v as f64).collect();
                let mut q: Vec<f64> =
                    fill(len as u64 + 43, len).iter().map(|&v| v as f64).collect();
                rotate_rows_f64_with(be, &mut p, &mut q, 0.8, 0.6);
                rots.push((p, q));
            }
            for w in ys.windows(2) {
                assert_eq!(w[0], w[1]);
            }
            for w in acts.windows(2) {
                assert_eq!(w[0], w[1]);
            }
            for w in deqs.windows(2) {
                assert_eq!(w[0], w[1]);
            }
            for w in rots.windows(2) {
                assert_eq!(w[0], w[1]);
            }
        }
    }
}
