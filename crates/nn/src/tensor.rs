//! Dense row-major `f32` matrices.

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32` values.
///
/// Vectors are `1 × n` or `n × 1` tensors. This is deliberately a plain
/// struct with plain kernels: every shape is known at runtime and checked
/// with assertions.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Matrix filled with one value.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor { rows, cols, data: vec![value; rows * cols] }
    }

    /// Wraps an existing buffer; panics if the length doesn't match.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Tensor { rows, cols, data }
    }

    /// Builds a matrix element-wise.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Tensor { rows, cols, data }
    }

    /// A `1 × n` row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Tensor { rows: 1, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw data, row-major.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data, row-major.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies `src` into row `i`.
    pub fn set_row(&mut self, i: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols);
        self.row_mut(i).copy_from_slice(src);
    }

    /// Matrix product `self · rhs`.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.rows, "matmul shape mismatch {:?}x{:?}", self.shape(), rhs.shape());
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Tensor::zeros(m, n);
        // ikj loop order: stream through rhs rows for cache friendliness.
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (kk, &a) in a_row.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[kk * n..(kk + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `selfᵀ · rhs` without materializing the transpose.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rows, rhs.rows, "matmul_tn shape mismatch");
        let (k, m, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Tensor::zeros(m, n);
        for kk in 0..k {
            let a_row = self.row(kk);
            let b_row = rhs.row(kk);
            for (i, &a) in a_row.iter().enumerate().take(m) {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `self · rhsᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.cols, "matmul_nt shape mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        let mut out = Tensor::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            for j in 0..n {
                let b_row = rhs.row(j);
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a_row[kk] * b_row[kk];
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// `self += alpha * other` (same shape).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scales every element in place.
    pub fn scale_in_place(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius-norm squared.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Euclidean distance between two rows of (possibly different) tensors.
    pub fn row_distance(a: &Tensor, i: usize, b: &Tensor, j: usize) -> f32 {
        assert_eq!(a.cols, b.cols);
        a.row(i)
            .iter()
            .zip(b.row(j))
            .map(|(&x, &y)| (x - y) * (x - y))
            .sum::<f32>()
            .sqrt()
    }

    /// Dot product between two rows.
    pub fn row_dot(a: &Tensor, i: usize, b: &Tensor, j: usize) -> f32 {
        assert_eq!(a.cols, b.cols);
        a.row(i).iter().zip(b.row(j)).map(|(&x, &y)| x * y).sum()
    }
}

impl Index<(usize, usize)> for Tensor {
    type Output = f32;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Tensor {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = t(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, &[1.0, 0.5, -1.0, 2.0, 0.0, 3.0]);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(4, 3, &[1.0; 12]);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        assert_eq!(fast, slow);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn indexing_and_rows() {
        let mut a = Tensor::zeros(2, 2);
        a[(0, 1)] = 5.0;
        a.set_row(1, &[7.0, 8.0]);
        assert_eq!(a[(0, 1)], 5.0);
        assert_eq!(a.row(1), &[7.0, 8.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = t(1, 3, &[1.0, 2.0, 3.0]);
        let b = t(1, 3, &[1.0, 1.0, 1.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[3.0, 4.0, 5.0]);
        a.scale_in_place(0.5);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn row_helpers() {
        let a = t(2, 2, &[3.0, 4.0, 0.0, 0.0]);
        assert_eq!(Tensor::row_distance(&a, 0, &a, 1), 5.0);
        assert_eq!(Tensor::row_dot(&a, 0, &a, 0), 25.0);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn from_fn_layout() {
        let a = Tensor::from_fn(2, 3, |i, j| (i * 10 + j) as f32);
        assert_eq!(a.row(1), &[10.0, 11.0, 12.0]);
    }
}
