//! Dense row-major `f32` matrices.

use std::cell::RefCell;
use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

use crate::kernels::{self, Precision};

/// A dense row-major matrix of `f32` values.
///
/// Vectors are `1 × n` or `n × 1` tensors. This is deliberately a plain
/// struct with plain kernels: every shape is known at runtime and checked
/// with assertions.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Matrix filled with one value.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor { rows, cols, data: vec![value; rows * cols] }
    }

    /// Wraps an existing buffer; panics if the length doesn't match.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Tensor { rows, cols, data }
    }

    /// Builds a matrix element-wise.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Tensor { rows, cols, data }
    }

    /// A `1 × n` row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Tensor { rows: 1, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw data, row-major.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Consumes the tensor, returning its backing buffer (capacity
    /// preserved — this is how the arena recycles tensor storage).
    #[inline]
    pub fn into_raw(self) -> Vec<f32> {
        self.data
    }

    /// Mutable raw data, row-major.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies `src` into row `i`.
    pub fn set_row(&mut self, i: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols);
        self.row_mut(i).copy_from_slice(src);
    }

    /// Reshapes the tensor in place to `rows × cols`, zero-filling the
    /// contents. The backing buffer's capacity is kept, so a tensor that
    /// cycles through bounded shapes stops allocating once it has seen
    /// its largest one — the reuse primitive of the inference engine's
    /// persistent scratch.
    pub fn reset_to(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Matrix product `self · rhs`.
    ///
    /// Runs the runtime-dispatched cache-blocked kernel from
    /// [`crate::kernels`] (scalar reference or AVX2, chosen once at
    /// startup). Each output element is accumulated by a single chain
    /// of adds in ascending-`k` order on every backend, so results are
    /// bit-identical to the textbook ikj kernel — the exact-equality
    /// transpose tests and the training determinism contract both rely
    /// on that.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// [`Tensor::matmul`] writing into a caller-provided output tensor
    /// (arena-allocated on the tape path). `out` must be `m × n`; its
    /// contents are overwritten.
    pub fn matmul_into(&self, rhs: &Tensor, out: &mut Tensor) {
        self.matmul_into_prec(rhs, out, Precision::Strict);
    }

    /// [`Tensor::matmul_into`] with an explicit [`Precision`] (the
    /// opt-in fused-FMA training path; `Strict` everywhere else).
    pub fn matmul_into_prec(&self, rhs: &Tensor, out: &mut Tensor, prec: Precision) {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul shape mismatch {:?}x{:?}",
            self.shape(),
            rhs.shape()
        );
        assert_eq!(out.shape(), (self.rows, rhs.cols), "matmul output shape mismatch");
        out.fill_zero();
        kernels::matmul_with(
            kernels::backend(),
            prec,
            &self.data,
            &rhs.data,
            &mut out.data,
            self.rows,
            self.cols,
            rhs.cols,
        );
    }

    /// Matrix product `selfᵀ · rhs` without materializing the transpose.
    ///
    /// Streams both inputs row-contiguously (one pass over `self` and
    /// `rhs` each) while the small `m × n` output stays resident; four
    /// output rows are updated per `b` row read. Ascending-`k`
    /// single-accumulator order is preserved, keeping results bit-equal
    /// to `self.transpose().matmul(rhs)`.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.cols, rhs.cols);
        self.matmul_tn_into(rhs, &mut out);
        out
    }

    /// [`Tensor::matmul_tn`] writing into a caller-provided `m × n`
    /// output tensor; its contents are overwritten.
    pub fn matmul_tn_into(&self, rhs: &Tensor, out: &mut Tensor) {
        self.matmul_tn_into_prec(rhs, out, Precision::Strict);
    }

    /// [`Tensor::matmul_tn_into`] with an explicit [`Precision`].
    pub fn matmul_tn_into_prec(&self, rhs: &Tensor, out: &mut Tensor, prec: Precision) {
        assert_eq!(self.rows, rhs.rows, "matmul_tn shape mismatch");
        let (k, m, n) = (self.rows, self.cols, rhs.cols);
        assert_eq!(out.shape(), (m, n), "matmul_tn output shape mismatch");
        out.fill_zero();
        kernels::matmul_tn_with(
            kernels::backend(),
            prec,
            &self.data,
            &rhs.data,
            &mut out.data,
            k,
            m,
            n,
        );
    }

    /// Matrix product `self · rhsᵀ` without materializing the transpose.
    ///
    /// Packs `rhsᵀ` into a thread-local reusable buffer, then runs the
    /// same cache-blocked ikj kernel as [`Tensor::matmul`]. The pack is
    /// `O(k·n)` against the kernel's `O(m·k·n)` and the buffer's capacity
    /// persists across calls, so steady-state calls allocate nothing.
    /// Every output element is still one ascending-`k` accumulation
    /// chain, so results stay bit-equal to
    /// `self.matmul(&rhs.transpose())` (and to the previous dot-product
    /// kernel this replaces).
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, rhs.rows);
        self.matmul_nt_into(rhs, &mut out);
        out
    }

    /// [`Tensor::matmul_nt`] writing into a caller-provided `m × n`
    /// output tensor; its contents are overwritten.
    pub fn matmul_nt_into(&self, rhs: &Tensor, out: &mut Tensor) {
        self.matmul_nt_into_prec(rhs, out, Precision::Strict);
    }

    /// [`Tensor::matmul_nt_into`] with an explicit [`Precision`].
    pub fn matmul_nt_into_prec(&self, rhs: &Tensor, out: &mut Tensor, prec: Precision) {
        assert_eq!(self.cols, rhs.cols, "matmul_nt shape mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        assert_eq!(out.shape(), (m, n), "matmul_nt output shape mismatch");
        out.fill_zero();
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        NT_PACK.with(|p| {
            let mut pack = p.borrow_mut();
            if pack.len() < k * n {
                pack.resize(k * n, 0.0);
            }
            let packed = &mut pack[..k * n];
            for (j, b_row) in rhs.data.chunks_exact(k).enumerate() {
                for (kk, &v) in b_row.iter().enumerate() {
                    packed[kk * n + j] = v;
                }
            }
            kernels::matmul_with(
                kernels::backend(),
                prec,
                &self.data,
                packed,
                &mut out.data,
                m,
                k,
                n,
            );
        });
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// `self += alpha * other` (same shape), through the dispatched
    /// [`kernels::axpy`].
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        kernels::axpy(&mut self.data, alpha, &other.data);
    }

    /// Scales every element in place.
    pub fn scale_in_place(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius-norm squared.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Euclidean distance between two rows of (possibly different) tensors.
    pub fn row_distance(a: &Tensor, i: usize, b: &Tensor, j: usize) -> f32 {
        assert_eq!(a.cols, b.cols);
        a.row(i).iter().zip(b.row(j)).map(|(&x, &y)| (x - y) * (x - y)).sum::<f32>().sqrt()
    }

    /// Dot product between two rows.
    pub fn row_dot(a: &Tensor, i: usize, b: &Tensor, j: usize) -> f32 {
        assert_eq!(a.cols, b.cols);
        a.row(i).iter().zip(b.row(j)).map(|(&x, &y)| x * y).sum()
    }
}

thread_local! {
    /// Reusable `rhsᵀ` packing buffer for [`Tensor::matmul_nt`].
    static NT_PACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

impl Index<(usize, usize)> for Tensor {
    type Output = f32;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Tensor {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = t(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, &[1.0, 0.5, -1.0, 2.0, 0.0, 3.0]);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(4, 3, &[1.0; 12]);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        assert_eq!(fast, slow);
    }

    #[test]
    fn blocked_kernels_match_naive_reference() {
        // Shapes exercise both the 4-wide register tiles and the
        // remainder paths (dimensions not multiples of the tile).
        let a = Tensor::from_fn(7, 9, |i, j| ((i * 31 + j * 17) % 13) as f32 - 6.0);
        let b = Tensor::from_fn(9, 6, |i, j| ((i * 7 + j * 3) % 11) as f32 - 5.0);
        let naive = Tensor::from_fn(7, 6, |i, j| (0..9).map(|kk| a[(i, kk)] * b[(kk, j)]).sum());
        assert_eq!(a.matmul(&b), naive);
        assert_eq!(a.transpose().matmul_tn(&b), naive);
        assert_eq!(a.matmul_nt(&b.transpose()), naive);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn indexing_and_rows() {
        let mut a = Tensor::zeros(2, 2);
        a[(0, 1)] = 5.0;
        a.set_row(1, &[7.0, 8.0]);
        assert_eq!(a[(0, 1)], 5.0);
        assert_eq!(a.row(1), &[7.0, 8.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = t(1, 3, &[1.0, 2.0, 3.0]);
        let b = t(1, 3, &[1.0, 1.0, 1.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[3.0, 4.0, 5.0]);
        a.scale_in_place(0.5);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn row_helpers() {
        let a = t(2, 2, &[3.0, 4.0, 0.0, 0.0]);
        assert_eq!(Tensor::row_distance(&a, 0, &a, 1), 5.0);
        assert_eq!(Tensor::row_dot(&a, 0, &a, 0), 25.0);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn from_fn_layout() {
        let a = Tensor::from_fn(2, 3, |i, j| (i * 10 + j) as f32);
        assert_eq!(a.row(1), &[10.0, 11.0, 12.0]);
    }
}
