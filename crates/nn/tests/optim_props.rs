//! Property-based tests for the sparse (lazy) Adam path.
//!
//! The contract under test is exact, not approximate: with the same
//! gradient stream, the sparse embedding-table update must be
//! **bit-identical** to the dense one on every row it ever touches, and
//! rows it never touches must keep their exact initial bytes. Proptest
//! drives random table shapes, random touched-row subsets per step
//! (including empty steps, duplicate rows within a step, and rows that
//! go cold for many steps before being revisited), and random
//! hyperparameters.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::RngExt;

use gem_nn::tape::{Graph, ParamStore};
use gem_nn::{Adam, Optimizer, Tensor};

/// One training schedule: per-step gathered rows plus matching targets.
#[derive(Debug, Clone)]
struct Schedule {
    rows: usize,
    cols: usize,
    init: Vec<f32>,
    lr: f32,
    /// Per step, the rows gathered (may repeat, may be empty).
    batches: Vec<Vec<u32>>,
    /// Per step, one target value per gathered row (broadcast over cols).
    targets: Vec<Vec<f32>>,
}

/// Hand-rolled strategy: the vendored proptest has no `prop_flat_map`,
/// so dependent shapes (batch indices bounded by the sampled row count)
/// are drawn directly from the case RNG.
struct ScheduleStrategy;

impl Strategy for ScheduleStrategy {
    type Value = Schedule;

    fn sample(&self, rng: &mut StdRng) -> Schedule {
        let rows = rng.random_range(2..12usize);
        let cols = rng.random_range(1..5usize);
        let steps = rng.random_range(1..10usize);
        let init = (0..rows * cols).map(|_| rng.random_range(-2.0..2.0f32)).collect();
        let batches = (0..steps)
            .map(|_| {
                let b = rng.random_range(0..6usize);
                (0..b).map(|_| rng.random_range(0..rows as u32)).collect()
            })
            .collect();
        let targets =
            (0..steps).map(|_| (0..6).map(|_| rng.random_range(-1.0..1.0f32)).collect()).collect();
        let lr = [0.001f32, 0.01, 0.1][rng.random_range(0..3usize)];
        Schedule { rows, cols, init, lr, batches, targets }
    }
}

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    ScheduleStrategy
}

/// Run the schedule with dense or sparse updates; return final weights
/// and Adam moments.
fn run(s: &Schedule, sparse: bool) -> (Tensor, Tensor, Tensor) {
    let mut store = ParamStore::new();
    let init = Tensor::from_vec(s.rows, s.cols, s.init.clone());
    let table = store.add("table", init);
    if sparse {
        store.mark_sparse(table);
    }
    let mut opt = Adam::new(s.lr);
    for (batch, tvals) in s.batches.iter().zip(&s.targets) {
        if sparse {
            // Mirrors the training loop: rows are caught up to the dense
            // schedule before the forward pass reads them.
            opt.catch_up_rows(&mut store, table, batch);
        }
        store.zero_grads();
        let mut g = Graph::new();
        if batch.is_empty() {
            // An empty step still advances Adam's clock on the dense
            // path (zero gradients decay the moments); the sparse path
            // must reproduce that via lazy catch-up alone.
            let b = s.batches.iter().map(Vec::len).max().unwrap().max(1);
            let dummy = g.constant(Tensor::zeros(b, s.cols));
            let loss = g.mse_mean(dummy, Tensor::zeros(b, s.cols));
            g.backward(loss, &mut store);
        } else {
            let gathered = g.gather(&store, table, batch.as_slice());
            let target = Tensor::from_fn(batch.len(), s.cols, |i, _| tvals[i % tvals.len()]);
            let loss = g.mse_mean(gathered, target);
            g.backward(loss, &mut store);
        }
        opt.step(&mut store);
    }
    if sparse {
        opt.finalize(&mut store);
    }
    let (m, v) = opt.moments(table).expect("Adam state exists");
    (store.value(table).clone(), m.clone(), v.clone())
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After finalize, sparse and dense Adam agree bit-for-bit on the
    /// whole table — weights and both moment tensors.
    #[test]
    fn sparse_adam_is_bitwise_dense(s in schedule_strategy()) {
        let (dw, dm, dv) = run(&s, false);
        let (sw, sm, sv) = run(&s, true);
        prop_assert_eq!(bits(&dw), bits(&sw), "weights diverged");
        prop_assert_eq!(bits(&dm), bits(&sm), "first moments diverged");
        prop_assert_eq!(bits(&dv), bits(&sv), "second moments diverged");
    }

    /// Before finalize, rows never gathered keep their exact initial
    /// bytes and all-zero moments — the sparse path provably never
    /// visits them.
    #[test]
    fn untouched_rows_are_byte_frozen(s in schedule_strategy()) {
        let mut store = ParamStore::new();
        let init = Tensor::from_vec(s.rows, s.cols, s.init.clone());
        let table = store.add("table", init.clone());
        store.mark_sparse(table);
        let mut opt = Adam::new(s.lr);
        for batch in &s.batches {
            if batch.is_empty() {
                continue;
            }
            opt.catch_up_rows(&mut store, table, batch);
            store.zero_grads();
            let mut g = Graph::new();
            let gathered = g.gather(&store, table, batch.as_slice());
            let loss = g.mse_mean(gathered, Tensor::zeros(batch.len(), s.cols));
            g.backward(loss, &mut store);
            opt.step(&mut store);
        }
        let touched: std::collections::HashSet<u32> =
            s.batches.iter().flatten().copied().collect();
        let value = store.value(table);
        let (m, v) = opt.moments(table).expect("Adam state exists");
        for row in 0..s.rows {
            if touched.contains(&(row as u32)) {
                continue;
            }
            let same: Vec<u32> = value.row(row).iter().map(|x| x.to_bits()).collect();
            let want: Vec<u32> = init.row(row).iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(same, want, "row {} moved", row);
            prop_assert!(m.row(row).iter().all(|x| x.to_bits() == 0));
            prop_assert!(v.row(row).iter().all(|x| x.to_bits() == 0));
        }
    }
}
