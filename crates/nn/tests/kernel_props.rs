//! Property-based tests for the runtime-dispatched SIMD kernels.
//!
//! The kernels' determinism contract says the AVX2 variants are
//! **bit-identical** to the scalar reference for both precision modes,
//! across every ragged shape the register tiling has to tail-handle:
//! single rows (1×K), single columns (K×1), odd K, and widths that are
//! not a multiple of the 8-lane block. These proptests pin that
//! contract, plus the documented ≤-one-ULP-per-step bound between
//! `Strict` and `Fused`.
//!
//! On hardware without AVX2+FMA (or with `GEM_FORCE_SCALAR=1`) the
//! backend list collapses to `[Scalar]` and the parity assertions are
//! trivially scalar-vs-scalar; CI runs the suite in both modes.

use proptest::prelude::*;

use gem_nn::kernels::{
    axpy_dequant_i8_with, axpy_with, backend, leaky_relu_with, matmul_tn_with, matmul_with,
    rotate_rows_f64_with,
};
use gem_nn::{Backend, Precision};

fn backends() -> Vec<Backend> {
    let mut v = vec![Backend::Scalar];
    if backend() == Backend::Avx2 {
        v.push(Backend::Avx2);
    }
    v
}

/// Ragged matmul shapes: a family selector biases toward the tail cases
/// (m below the MR=4 row tile, n below/around the 8-lane block, odd K,
/// K straddling the 256-wide k-panel) while still covering general
/// multi-tile shapes.
fn shape_strategy() -> impl Strategy<Value = (usize, usize, usize)> {
    (0usize..5, 1usize..10, 1usize..300, 1usize..20).prop_map(|(family, m, k, n)| match family {
        0 => (m, 1 + k % 40, n),                 // general small shapes
        1 => (1, k, n),                          // single row (1×K)
        2 => (m, k, 1),                          // single column (K×1)
        3 => (1 + m % 5, 255 + k % 5, n),        // K straddles the k-panel
        _ => (1 + m % 5, 1 + k % 20, 7 + n % 3), // n at/just off the 8-lane block
    })
}

/// `Strict`-vs-`Fused` tolerance for one output element: each of the
/// `k` accumulation steps may differ by at most one ULP of the running
/// magnitude, bounded by the f64 sum of absolute products.
fn fused_tolerance(a_row: impl Iterator<Item = f32>, b_col: impl Iterator<Item = f32>) -> f32 {
    let abs_sum: f64 =
        a_row.zip(b_col).map(|(x, y)| (x as f64 * y as f64).abs()).sum::<f64>().max(1.0);
    2.0 * f32::EPSILON * abs_sum as f32
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_simd_matches_scalar_bitwise_on_ragged_shapes(
        (m, k, n) in shape_strategy(),
        seed in 0u64..1_000,
    ) {
        let a = seeded(seed, m * k);
        let b = seeded(seed ^ 0xABCD, k * n);
        for prec in [Precision::Strict, Precision::Fused] {
            let mut reference = vec![0.0f32; m * n];
            matmul_with(Backend::Scalar, prec, &a, &b, &mut reference, m, k, n);
            for be in backends() {
                let mut out = vec![0.0f32; m * n];
                matmul_with(be, prec, &a, &b, &mut out, m, k, n);
                prop_assert_eq!(&out, &reference, "{:?}/{:?} {}x{}x{}", be, prec, m, k, n);
            }
        }
    }

    #[test]
    fn matmul_tn_simd_matches_scalar_bitwise_on_ragged_shapes(
        (m, k, n) in shape_strategy(),
        seed in 0u64..1_000,
    ) {
        // a is k×m as stored (transposed product), same tail coverage.
        let a = seeded(seed, k * m);
        let b = seeded(seed ^ 0x1234, k * n);
        for prec in [Precision::Strict, Precision::Fused] {
            let mut reference = vec![0.0f32; m * n];
            matmul_tn_with(Backend::Scalar, prec, &a, &b, &mut reference, k, m, n);
            for be in backends() {
                let mut out = vec![0.0f32; m * n];
                matmul_tn_with(be, prec, &a, &b, &mut out, k, m, n);
                prop_assert_eq!(&out, &reference, "{:?}/{:?} {}x{}x{}", be, prec, k, m, n);
            }
        }
    }

    #[test]
    fn fused_stays_within_ulp_bound_of_strict(
        (m, k, n) in shape_strategy(),
        seed in 0u64..1_000,
    ) {
        let a = seeded(seed, m * k);
        let b = seeded(seed ^ 0x77, k * n);
        let mut strict = vec![0.0f32; m * n];
        let mut fused = vec![0.0f32; m * n];
        matmul_with(Backend::Scalar, Precision::Strict, &a, &b, &mut strict, m, k, n);
        matmul_with(Backend::Scalar, Precision::Fused, &a, &b, &mut fused, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let tol = fused_tolerance(
                    a[i * k..(i + 1) * k].iter().copied(),
                    (0..k).map(|kk| b[kk * n + j]),
                );
                let (s, f) = (strict[i * n + j], fused[i * n + j]);
                prop_assert!(
                    (s - f).abs() <= tol,
                    "[{},{}] strict {} vs fused {} exceeds ulp bound {}", i, j, s, f, tol
                );
            }
        }
    }

    #[test]
    fn elementwise_kernels_match_scalar_bitwise_on_ragged_lengths(
        len in 0usize..70,
        alpha in -4.0f32..4.0,
        xs in prop::collection::vec(-8.0f32..8.0, 0..70),
    ) {
        let len = len.min(xs.len());
        let x = &xs[..len];
        let codes: Vec<i8> = x.iter().map(|v| (v * 15.0) as i8).collect();
        let mut axpys = Vec::new();
        let mut acts = Vec::new();
        let mut deqs = Vec::new();
        let mut rots = Vec::new();
        for be in backends() {
            let mut y: Vec<f32> = x.iter().map(|v| v * 0.5 - 1.0).collect();
            axpy_with(be, &mut y, alpha, x);
            axpys.push(y);
            let mut act = x.to_vec();
            leaky_relu_with(be, &mut act, 0.01);
            acts.push(act);
            let mut d: Vec<f32> = x.iter().map(|v| v * 0.25).collect();
            axpy_dequant_i8_with(be, &mut d, alpha * 0.01, -0.3, &codes);
            deqs.push(d);
            let mut p: Vec<f64> = x.iter().map(|&v| v as f64).collect();
            let mut q: Vec<f64> = x.iter().map(|&v| v as f64 * 1.5 + 0.1).collect();
            rotate_rows_f64_with(be, &mut p, &mut q, 0.8, 0.6);
            rots.push((p, q));
        }
        for w in axpys.windows(2) {
            prop_assert_eq!(&w[0], &w[1], "axpy len {}", len);
        }
        for w in acts.windows(2) {
            prop_assert_eq!(&w[0], &w[1], "leaky_relu len {}", len);
        }
        for w in deqs.windows(2) {
            prop_assert_eq!(&w[0], &w[1], "axpy_dequant_i8 len {}", len);
        }
        for w in rots.windows(2) {
            prop_assert_eq!(&w[0], &w[1], "rotate_rows_f64 len {}", len);
        }
    }
}

/// Deterministic xorshift fill so shape cases stay reproducible across
/// proptest reruns (the shape is the interesting input, not the data).
fn seeded(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
        })
        .collect()
}

/// Degenerate shapes the proptest ranges cannot hit: empty dims are a
/// no-op on every backend, and special values flow through unchanged.
#[test]
fn zero_sized_dims_are_noops() {
    for be in backends() {
        for prec in [Precision::Strict, Precision::Fused] {
            let mut out = [1.0f32; 4];
            matmul_with(be, prec, &[], &[], &mut out, 0, 3, 0);
            matmul_with(be, prec, &[1.0; 4], &[], &mut out, 2, 2, 0);
            matmul_with(be, prec, &[], &[1.0; 4], &mut out, 0, 2, 2);
            matmul_with(be, prec, &[1.0; 2], &[1.0; 2], &mut out, 2, 0, 2);
            matmul_tn_with(be, prec, &[], &[], &mut out, 0, 2, 2);
            assert_eq!(out, [1.0; 4], "{be:?}/{prec:?} zero-dim matmul must not touch out");
        }
        axpy_with(be, &mut [], 2.0, &[]);
        leaky_relu_with(be, &mut [], 0.01);
        axpy_dequant_i8_with(be, &mut [], 1.0, 0.0, &[]);
        rotate_rows_f64_with(be, &mut [], &mut [], 0.8, 0.6);
    }
}

#[test]
fn leaky_relu_special_values_agree_across_backends() {
    // 9 elements: one full 8-lane block plus a scalar tail, covering
    // ±0.0 (sign-sensitive in the `x >= 0` compare) and NaN.
    let template = [0.0f32, -0.0, 1.5, -1.5, f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 2.0, -2.0];
    let mut outs: Vec<Vec<f32>> = Vec::new();
    for be in backends() {
        let mut xs = template.to_vec();
        leaky_relu_with(be, &mut xs, 0.01);
        outs.push(xs);
    }
    for w in outs.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "leaky_relu special-value divergence");
        }
    }
    // And pin the semantics both paths share: -0.0 is kept as-is
    // (`-0.0 < 0.0` and `-0.0 >= 0.0` agree it is non-negative), and a
    // quiet NaN stays the same quiet NaN (untouched on the scalar
    // branch, propagated unchanged through `slope·NaN` on the SIMD
    // blend).
    let s = &outs[0];
    assert_eq!(s[0].to_bits(), 0.0f32.to_bits());
    assert_eq!(s[1].to_bits(), (-0.0f32).to_bits());
    assert!(s[4].is_nan());
}
