//! Property-based tests for the tensor and linalg kernels.

use proptest::prelude::*;

use gem_nn::linalg::{jacobi_eigen, SymMatrix};
use gem_nn::Tensor;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involutive(t in tensor_strategy(4, 7)) {
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn matmul_identity_is_noop(t in tensor_strategy(5, 5)) {
        let eye = Tensor::from_fn(5, 5, |i, j| if i == j { 1.0 } else { 0.0 });
        let prod = t.matmul(&eye);
        for (a, b) in prod.data().iter().zip(t.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_tn_and_nt_agree_with_explicit_transpose(
        a in tensor_strategy(4, 3),
        b in tensor_strategy(4, 5),
    ) {
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        let c = Tensor::from_vec(5, 3, b.data()[..15].to_vec());
        let fast = a.matmul_nt(&c);
        let slow = a.matmul(&c.transpose());
        for (x, y) in fast.data().iter().zip(slow.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
        c in tensor_strategy(4, 2),
    ) {
        // a·(b + c) == a·b + a·c
        let mut bc = b.clone();
        bc.axpy(1.0, &c);
        let lhs = a.matmul(&bc);
        let mut rhs = a.matmul(&b);
        rhs.axpy(1.0, &a.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn axpy_then_inverse_axpy_roundtrips(
        a in tensor_strategy(3, 3),
        b in tensor_strategy(3, 3),
    ) {
        let mut m = a.clone();
        m.axpy(2.5, &b);
        m.axpy(-2.5, &b);
        for (x, y) in m.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Jacobi invariants: eigenvalue sum = trace, descending order,
    /// orthonormal eigenvectors.
    #[test]
    fn jacobi_preserves_trace_and_orthonormality(
        entries in prop::collection::vec(-5.0f64..5.0, 16),
    ) {
        let a = SymMatrix::from_dense(4, entries.clone());
        let trace: f64 = (0..4).map(|i| a.get(i, i)).sum();
        let e = jacobi_eigen(a, 1e-12, 100);
        let sum: f64 = e.values.iter().sum();
        prop_assert!((sum - trace).abs() < 1e-6, "trace {trace} vs Σλ {sum}");
        for w in e.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9, "eigenvalues must be sorted");
        }
        for k in 0..4 {
            let norm: f64 = (0..4).map(|i| e.vector_component(k, i).powi(2)).sum();
            prop_assert!((norm - 1.0).abs() < 1e-6);
        }
    }
}
