//! Exact t-SNE (van der Maaten & Hinton, 2008) for visualizing learned
//! embeddings (paper Fig. 6). O(n²) per iteration — intended for the few
//! hundred nodes of a GEM graph, not for large corpora.

use rand::RngExt;

use gem_signal::rng::normal;

/// t-SNE hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct TsneConfig {
    /// Target perplexity of the conditional distributions.
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Factor applied to `P` during the first quarter of iterations
    /// (early exaggeration).
    pub exaggeration: f64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            perplexity: 20.0,
            iterations: 400,
            learning_rate: 100.0,
            momentum: 0.8,
            exaggeration: 8.0,
        }
    }
}

fn pairwise_sq_dists(data: &[Vec<f32>]) -> Vec<f64> {
    let n = data.len();
    let mut d2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let dist: f64 =
                data[i].iter().zip(&data[j]).map(|(&a, &b)| ((a - b) as f64).powi(2)).sum();
            d2[i * n + j] = dist;
            d2[j * n + i] = dist;
        }
    }
    d2
}

/// Binary-searches the Gaussian bandwidth of row `i` to match the target
/// perplexity; returns the conditional probabilities `p_{j|i}`.
fn conditional_probs(d2_row: &[f64], i: usize, perplexity: f64) -> Vec<f64> {
    let n = d2_row.len();
    let target_entropy = perplexity.ln();
    let mut beta = 1.0f64; // 1 / (2σ²)
    let (mut beta_min, mut beta_max) = (0.0f64, f64::INFINITY);
    let mut probs = vec![0.0f64; n];
    for _ in 0..50 {
        let mut sum = 0.0f64;
        for j in 0..n {
            probs[j] = if j == i { 0.0 } else { (-beta * d2_row[j]).exp() };
            sum += probs[j];
        }
        if sum <= 0.0 {
            // All mass collapsed; relax beta.
            beta /= 2.0;
            continue;
        }
        let mut entropy = 0.0f64;
        for p in probs.iter_mut() {
            *p /= sum;
            if *p > 1e-12 {
                entropy -= *p * p.ln();
            }
        }
        let diff = entropy - target_entropy;
        if diff.abs() < 1e-5 {
            break;
        }
        if diff > 0.0 {
            beta_min = beta;
            beta = if beta_max.is_finite() { (beta + beta_max) / 2.0 } else { beta * 2.0 };
        } else {
            beta_max = beta;
            beta = (beta + beta_min) / 2.0;
        }
    }
    probs
}

/// Runs exact t-SNE, returning one 2-D point per input row.
pub fn tsne(data: &[Vec<f32>], cfg: TsneConfig, rng: &mut impl RngExt) -> Vec<[f64; 2]> {
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![[0.0, 0.0]];
    }
    let d2 = pairwise_sq_dists(data);
    // Symmetrized joint probabilities.
    let mut p = vec![0.0f64; n * n];
    for i in 0..n {
        let row = conditional_probs(&d2[i * n..(i + 1) * n], i, cfg.perplexity.min((n - 1) as f64));
        for (j, &pj) in row.iter().enumerate() {
            p[i * n + j] = pj;
        }
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let avg = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f64)).max(1e-12);
            p[i * n + j] = avg;
            p[j * n + i] = avg;
        }
        p[i * n + i] = 0.0;
    }

    let mut y: Vec<[f64; 2]> =
        (0..n).map(|_| [normal(rng, 0.0, 1e-2), normal(rng, 0.0, 1e-2)]).collect();
    let mut velocity = vec![[0.0f64; 2]; n];
    let exaggerate_until = cfg.iterations / 4;

    let mut q = vec![0.0f64; n * n];
    for iter in 0..cfg.iterations {
        // Student-t affinities in the embedding.
        let mut q_sum = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                let dy0 = y[i][0] - y[j][0];
                let dy1 = y[i][1] - y[j][1];
                let w = 1.0 / (1.0 + dy0 * dy0 + dy1 * dy1);
                q[i * n + j] = w;
                q[j * n + i] = w;
                q_sum += 2.0 * w;
            }
        }
        let exag = if iter < exaggerate_until { cfg.exaggeration } else { 1.0 };
        for i in 0..n {
            let mut grad = [0.0f64; 2];
            for j in 0..n {
                if i == j {
                    continue;
                }
                let w = q[i * n + j];
                let q_ij = (w / q_sum).max(1e-12);
                let coeff = 4.0 * (exag * p[i * n + j] - q_ij) * w;
                grad[0] += coeff * (y[i][0] - y[j][0]);
                grad[1] += coeff * (y[i][1] - y[j][1]);
            }
            velocity[i][0] = cfg.momentum * velocity[i][0] - cfg.learning_rate * grad[0];
            velocity[i][1] = cfg.momentum * velocity[i][1] - cfg.learning_rate * grad[1];
        }
        for i in 0..n {
            y[i][0] += velocity[i][0];
            y[i][1] += velocity[i][1];
        }
        // Re-center to keep coordinates bounded.
        let (cx, cy) = y.iter().fold((0.0, 0.0), |(a, b), p| (a + p[0], b + p[1]));
        let (cx, cy) = (cx / n as f64, cy / n as f64);
        for point in &mut y {
            point[0] -= cx;
            point[1] -= cy;
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two well-separated 8-D clusters must map to separated 2-D clusters.
    #[test]
    fn separates_two_clusters() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut data = Vec::new();
        for i in 0..30 {
            let center = if i < 15 { 0.0f32 } else { 5.0f32 };
            data.push((0..8).map(|j| center + ((i * 7 + j) % 5) as f32 * 0.02).collect());
        }
        let cfg = TsneConfig {
            iterations: 400,
            perplexity: 8.0,
            learning_rate: 30.0,
            ..TsneConfig::default()
        };
        let y = tsne(&data, cfg, &mut rng);
        let mean = |range: std::ops::Range<usize>| -> [f64; 2] {
            let mut m = [0.0; 2];
            for i in range.clone() {
                m[0] += y[i][0];
                m[1] += y[i][1];
            }
            [m[0] / range.len() as f64, m[1] / range.len() as f64]
        };
        let ma = mean(0..15);
        let mb = mean(15..30);
        let between = ((ma[0] - mb[0]).powi(2) + (ma[1] - mb[1]).powi(2)).sqrt();
        let spread = |range: std::ops::Range<usize>, c: [f64; 2]| -> f64 {
            range
                .clone()
                .map(|i| ((y[i][0] - c[0]).powi(2) + (y[i][1] - c[1]).powi(2)).sqrt())
                .sum::<f64>()
                / range.len() as f64
        };
        let within = (spread(0..15, ma) + spread(15..30, mb)) / 2.0;
        assert!(between > 2.0 * within, "between {between:.3} within {within:.3}");
    }

    #[test]
    fn handles_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(tsne(&[], TsneConfig::default(), &mut rng).is_empty());
        let one = tsne(&[vec![1.0, 2.0]], TsneConfig::default(), &mut rng);
        assert_eq!(one, vec![[0.0, 0.0]]);
    }

    #[test]
    fn output_is_centered_and_finite() {
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<Vec<f32>> =
            (0..20).map(|i| vec![(i % 4) as f32, (i % 5) as f32, i as f32 * 0.1]).collect();
        let y = tsne(&data, TsneConfig { iterations: 100, ..TsneConfig::default() }, &mut rng);
        let cx: f64 = y.iter().map(|p| p[0]).sum::<f64>() / y.len() as f64;
        assert!(cx.abs() < 1e-6);
        assert!(y.iter().all(|p| p[0].is_finite() && p[1].is_finite()));
    }
}
