//! Result tables: build once, emit as aligned Markdown and CSV.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple rectangular result table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders GitHub-flavored Markdown with aligned columns.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}\n", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> =
                cells.iter().zip(widths).map(|(c, w)| format!("{c:<w$}")).collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", fmt_row(&dashes, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ =
                writeln!(out, "{}", row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Writes `<stem>.md` and `<stem>.csv` under `dir`, creating it if
    /// needed, and prints the Markdown to stdout.
    pub fn emit(&self, dir: impl AsRef<Path>, stem: &str) -> io::Result<()> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{stem}.md")), self.to_markdown())?;
        fs::write(dir.join(format!("{stem}.csv")), self.to_csv())?;
        println!("{}", self.to_markdown());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["algo", "F"]);
        t.row(vec!["GEM".into(), "0.98".into()]);
        t.row(vec!["a,b".into(), "0.50".into()]);
        t
    }

    #[test]
    fn markdown_contains_all_cells() {
        let md = sample().to_markdown();
        assert!(md.contains("## Demo"));
        assert!(md.contains("| algo"));
        assert!(md.contains("GEM"));
        assert!(md.contains("0.98"));
        // Header separator present.
        assert!(md.lines().nth(3).unwrap().contains("----"));
    }

    #[test]
    fn csv_escapes_commas() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("algo,F\n"));
        assert!(csv.contains("\"a,b\",0.50"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_enforced() {
        Table::new("t", &["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn emit_writes_files() {
        let dir = std::env::temp_dir().join("gem_eval_table_test");
        let _ = std::fs::remove_dir_all(&dir);
        sample().emit(&dir, "demo").unwrap();
        assert!(dir.join("demo.md").exists());
        assert!(dir.join("demo.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
