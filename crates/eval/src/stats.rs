//! Small descriptive-statistics helpers for result aggregation.

use serde::Serialize;

/// Mean / min / max / sd summary of a sample, matching the paper's
/// "mean (min, max)" table entries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample standard deviation.
    pub sd: f64,
    /// Sample size.
    pub n: usize,
}

impl Summary {
    /// Summarizes a slice (empty input → all zeros).
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary::default();
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let sd = if n < 2 {
            0.0
        } else {
            (values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n as f64 - 1.0)).sqrt()
        };
        Summary { mean, min, max, sd, n }
    }

    /// The paper's table format: `mean (min, max)`.
    pub fn paper_format(&self) -> String {
        format!("{:.2} ({:.2}, {:.2})", self.mean, self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_hand_computation() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.n, 4);
        assert!((s.sd - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(Summary::of(&[]), Summary::default());
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.sd, 0.0);
    }

    #[test]
    fn paper_format_shape() {
        let s = Summary::of(&[0.97, 0.99, 1.0]);
        assert_eq!(s.paper_format(), "0.99 (0.97, 1.00)");
    }
}
