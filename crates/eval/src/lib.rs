//! Evaluation tooling: classification metrics, ROC/AUC, t-SNE, and
//! result-table emission for the reproduction harness.

pub mod metrics;
pub mod pr;
pub mod roc;
pub mod stats;
pub mod table;
pub mod tsne;

pub use metrics::{ClassMetrics, Confusion};
pub use pr::{average_precision, pr_curve, PrPoint};
pub use roc::{auc, roc_curve, RocPoint};
pub use stats::Summary;
pub use table::Table;
pub use tsne::{tsne, TsneConfig};
