//! ROC curves and area under the curve (paper Fig. 8).

use serde::Serialize;

/// One point of an ROC curve.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct RocPoint {
    /// False-positive rate at this threshold.
    pub fpr: f64,
    /// True-positive rate at this threshold.
    pub tpr: f64,
    /// The score threshold producing this point.
    pub threshold: f64,
}

/// Computes the ROC curve for `(score, is_positive)` samples where higher
/// scores indicate the positive class. Points are ordered from `(0,0)` to
/// `(1,1)`; ties on score collapse into single points.
pub fn roc_curve(samples: &[(f64, bool)]) -> Vec<RocPoint> {
    let n_pos = samples.iter().filter(|(_, p)| *p).count();
    let n_neg = samples.len() - n_pos;
    let mut sorted: Vec<(f64, bool)> = samples.to_vec();
    sorted.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut points = vec![RocPoint { fpr: 0.0, tpr: 0.0, threshold: f64::INFINITY }];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0usize;
    while i < sorted.len() {
        let threshold = sorted[i].0;
        // Consume the whole tie group.
        while i < sorted.len() && sorted[i].0 == threshold {
            if sorted[i].1 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(RocPoint {
            fpr: if n_neg == 0 { 0.0 } else { fp as f64 / n_neg as f64 },
            tpr: if n_pos == 0 { 0.0 } else { tp as f64 / n_pos as f64 },
            threshold,
        });
    }
    points
}

/// Trapezoidal area under an ROC curve.
pub fn auc(curve: &[RocPoint]) -> f64 {
    let mut area = 0.0;
    for w in curve.windows(2) {
        area += (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0;
    }
    area
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_has_auc_one() {
        let samples: Vec<(f64, bool)> = (0..10).map(|i| (i as f64, i >= 5)).collect();
        let curve = roc_curve(&samples);
        assert!((auc(&curve) - 1.0).abs() < 1e-12);
        assert_eq!(curve.first().unwrap().tpr, 0.0);
        assert_eq!(curve.last().unwrap().tpr, 1.0);
        assert_eq!(curve.last().unwrap().fpr, 1.0);
    }

    #[test]
    fn inverted_scores_have_auc_zero() {
        let samples: Vec<(f64, bool)> = (0..10).map(|i| (i as f64, i < 5)).collect();
        assert!(auc(&roc_curve(&samples)) < 1e-12);
    }

    #[test]
    fn random_scores_have_auc_half() {
        // Alternating labels over strictly increasing scores.
        let samples: Vec<(f64, bool)> = (0..1000).map(|i| (i as f64, i % 2 == 0)).collect();
        let a = auc(&roc_curve(&samples));
        assert!((a - 0.5).abs() < 0.01, "auc {a}");
    }

    #[test]
    fn ties_collapse_into_one_point() {
        let samples = vec![(1.0, true), (1.0, false), (0.0, true), (0.0, false)];
        let curve = roc_curve(&samples);
        // (0,0), tie group at 1.0, tie group at 0.0.
        assert_eq!(curve.len(), 3);
        assert!((auc(&curve) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone() {
        let samples: Vec<(f64, bool)> =
            (0..200).map(|i| (((i * 37) % 101) as f64, i % 3 == 0)).collect();
        let curve = roc_curve(&samples);
        for w in curve.windows(2) {
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].tpr >= w[0].tpr);
        }
    }
}
