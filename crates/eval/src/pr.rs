//! Precision–recall curves and average precision.
//!
//! For geofencing, the outside class is rare in normal operation, so the
//! PR view (which ignores true negatives) is often more informative than
//! ROC for the alerting trade-off.

use serde::Serialize;

/// One point of a precision-recall curve.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct PrPoint {
    /// Recall at this threshold.
    pub recall: f64,
    /// Precision at this threshold.
    pub precision: f64,
    /// The score threshold producing this point.
    pub threshold: f64,
}

/// Computes the PR curve for `(score, is_positive)` samples where higher
/// scores indicate the positive class. Points run from low recall to
/// full recall; ties on score collapse.
pub fn pr_curve(samples: &[(f64, bool)]) -> Vec<PrPoint> {
    let n_pos = samples.iter().filter(|(_, p)| *p).count();
    if n_pos == 0 {
        return Vec::new();
    }
    let mut sorted: Vec<(f64, bool)> = samples.to_vec();
    sorted.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut points = Vec::new();
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0usize;
    while i < sorted.len() {
        let threshold = sorted[i].0;
        while i < sorted.len() && sorted[i].0 == threshold {
            if sorted[i].1 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(PrPoint {
            recall: tp as f64 / n_pos as f64,
            precision: tp as f64 / (tp + fp) as f64,
            threshold,
        });
    }
    points
}

/// Average precision: the step-wise integral of precision over recall.
pub fn average_precision(curve: &[PrPoint]) -> f64 {
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for p in curve {
        ap += (p.recall - prev_recall) * p.precision;
        prev_recall = p.recall;
    }
    ap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_has_ap_one() {
        let samples: Vec<(f64, bool)> = (0..10).map(|i| (i as f64, i >= 5)).collect();
        let curve = pr_curve(&samples);
        assert!((average_precision(&curve) - 1.0).abs() < 1e-12);
        assert_eq!(curve.last().unwrap().recall, 1.0);
    }

    #[test]
    fn inverted_ranking_has_low_ap() {
        let samples: Vec<(f64, bool)> = (0..10).map(|i| (i as f64, i < 5)).collect();
        let ap = average_precision(&pr_curve(&samples));
        assert!(ap < 0.5, "ap {ap}");
    }

    #[test]
    fn random_ranking_ap_near_prevalence() {
        // Alternating labels: AP ≈ positive prevalence (0.5).
        let samples: Vec<(f64, bool)> = (0..2000).map(|i| (i as f64, i % 2 == 0)).collect();
        let ap = average_precision(&pr_curve(&samples));
        assert!((ap - 0.5).abs() < 0.02, "ap {ap}");
    }

    #[test]
    fn no_positives_yields_empty_curve() {
        let samples = vec![(1.0, false), (2.0, false)];
        assert!(pr_curve(&samples).is_empty());
        assert_eq!(average_precision(&[]), 0.0);
    }

    #[test]
    fn recall_is_monotone() {
        let samples: Vec<(f64, bool)> =
            (0..100).map(|i| (((i * 37) % 101) as f64, i % 3 == 0)).collect();
        let curve = pr_curve(&samples);
        for w in curve.windows(2) {
            assert!(w[1].recall >= w[0].recall);
        }
    }
}
