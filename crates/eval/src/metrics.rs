//! Classification metrics: the paper's `P_in/R_in/F_in` (in-premises
//! detection, in-premises = positive) and `P_out/R_out/F_out` (outside
//! detection, outside = positive).

use serde::Serialize;

use gem_signal::Label;

/// A binary confusion matrix over ground truth × prediction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct Confusion {
    /// Truth In, predicted In.
    pub in_in: usize,
    /// Truth In, predicted Out.
    pub in_out: usize,
    /// Truth Out, predicted In.
    pub out_in: usize,
    /// Truth Out, predicted Out.
    pub out_out: usize,
}

impl Confusion {
    /// Accumulates one decision.
    pub fn record(&mut self, truth: Label, predicted: Label) {
        match (truth, predicted) {
            (Label::In, Label::In) => self.in_in += 1,
            (Label::In, Label::Out) => self.in_out += 1,
            (Label::Out, Label::In) => self.out_in += 1,
            (Label::Out, Label::Out) => self.out_out += 1,
        }
    }

    /// Builds from an iterator of `(truth, predicted)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Label, Label)>) -> Self {
        let mut c = Confusion::default();
        for (t, p) in pairs {
            c.record(t, p);
        }
        c
    }

    /// Total decisions recorded.
    pub fn total(&self) -> usize {
        self.in_in + self.in_out + self.out_in + self.out_out
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.in_in + self.out_out) as f64 / self.total() as f64
    }

    /// Metrics with the given class treated as positive.
    pub fn class_metrics(&self, positive: Label) -> ClassMetrics {
        let (tp, fp, fn_) = match positive {
            Label::In => (self.in_in, self.out_in, self.in_out),
            Label::Out => (self.out_out, self.in_out, self.out_in),
        };
        let precision = if tp + fp == 0 { 0.0 } else { tp as f64 / (tp + fp) as f64 };
        let recall = if tp + fn_ == 0 { 0.0 } else { tp as f64 / (tp + fn_) as f64 };
        let f_score = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        ClassMetrics { precision, recall, f_score }
    }

    /// `(P_in, R_in, F_in)` — in-premises detection.
    pub fn in_metrics(&self) -> ClassMetrics {
        self.class_metrics(Label::In)
    }

    /// `(P_out, R_out, F_out)` — outside detection.
    pub fn out_metrics(&self) -> ClassMetrics {
        self.class_metrics(Label::Out)
    }
}

/// Precision / recall / F-score for one positive class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct ClassMetrics {
    /// TP / (TP + FP).
    pub precision: f64,
    /// TP / (TP + FN).
    pub recall: f64,
    /// Harmonic mean of the two.
    pub f_score: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Confusion {
        // 8 true In (6 correct), 12 true Out (9 correct).
        Confusion { in_in: 6, in_out: 2, out_in: 3, out_out: 9 }
    }

    #[test]
    fn accuracy_counts_diagonal() {
        let c = sample();
        assert_eq!(c.total(), 20);
        assert!((c.accuracy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn in_metrics_match_hand_computation() {
        let m = sample().in_metrics();
        assert!((m.precision - 6.0 / 9.0).abs() < 1e-12);
        assert!((m.recall - 6.0 / 8.0).abs() < 1e-12);
        let f = 2.0 * m.precision * m.recall / (m.precision + m.recall);
        assert!((m.f_score - f).abs() < 1e-12);
    }

    #[test]
    fn out_metrics_match_hand_computation() {
        let m = sample().out_metrics();
        assert!((m.precision - 9.0 / 11.0).abs() < 1e-12);
        assert!((m.recall - 9.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn from_pairs_accumulates() {
        let c = Confusion::from_pairs([
            (Label::In, Label::In),
            (Label::In, Label::Out),
            (Label::Out, Label::Out),
        ]);
        assert_eq!(c.in_in, 1);
        assert_eq!(c.in_out, 1);
        assert_eq!(c.out_out, 1);
        assert_eq!(c.out_in, 0);
    }

    #[test]
    fn degenerate_cases_are_zero_not_nan() {
        let c = Confusion::default();
        let m = c.in_metrics();
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f_score, 0.0);
        assert_eq!(c.accuracy(), 0.0);
    }

    #[test]
    fn perfect_classifier_scores_one() {
        let c = Confusion { in_in: 10, in_out: 0, out_in: 0, out_out: 10 };
        assert_eq!(c.in_metrics().f_score, 1.0);
        assert_eq!(c.out_metrics().f_score, 1.0);
    }
}
