//! `gem trace` — per-stage tail-latency attribution from span dumps.
//!
//! Ingests the JSONL emitted by a live fleet's `/trace.jsonl` endpoint
//! (or `gem fleet --trace-dir`): every retained record produces one
//! `span` event carrying its stage durations (ingress → queue →
//! hydrate → journal → infer), and — when the record arrived over the
//! network — a `span_ack` event for the reply write, joined here by
//! trace id. The report answers the question metrics alone cannot:
//! *which stage* made the slow requests slow.
//!
//! Output: per-stage p50/p99 plus each stage's share of total time
//! across all spans, then the critical path of the N slowest records
//! (`--slowest`, default 5) with their individual stage breakdowns.
//! `--min-coverage F` turns the report into a gate: if the named
//! stages explain less than fraction `F` of the mean end-to-end time,
//! the process exits nonzero — CI uses this to prove the attribution
//! stays honest as stages are added or reshaped.

use std::collections::HashMap;

use serde_json::Value;

use crate::args::Args;

/// The pipeline stages a span attributes, in pipeline order. `ack` is
/// joined from the separate `span_ack` event and sits outside the
/// span's own end-to-end window (the reply write happens after the
/// decision is measured), so coverage is computed over the first six.
const STAGES: [&str; 6] = ["ingress", "queue", "hydrate", "journal", "infer", "emit"];

/// One record's reconstructed trace.
#[derive(Debug)]
struct Span {
    trace: String,
    premises: u64,
    shard: u64,
    sampled: String,
    /// Stage durations, `STAGES` order, nanoseconds.
    stages: [u64; 6],
    e2e_ns: u64,
    /// Reply-write duration from the joined `span_ack`, if any.
    ack_ns: Option<u64>,
}

impl Span {
    /// Fraction of the end-to-end time the named stages explain.
    fn coverage(&self) -> f64 {
        if self.e2e_ns == 0 {
            return 1.0;
        }
        let sum: u64 = self.stages.iter().sum();
        (sum as f64 / self.e2e_ns as f64).min(1.0)
    }
}

pub fn run(args: &Args) -> Result<(), String> {
    let inputs = args.values_list("input").ok_or("missing required option --input")?;
    if inputs.is_empty() {
        return Err("--input lists no files".into());
    }
    let slowest = args.get_parsed::<usize>("slowest")?.unwrap_or(5);
    let min_coverage = args.get_parsed::<f64>("min-coverage")?;
    if let Some(f) = min_coverage {
        if !(0.0..=1.0).contains(&f) {
            return Err("--min-coverage must be within 0..1".into());
        }
    }

    let mut lines = 0usize;
    let mut spans: Vec<Span> = Vec::new();
    let mut acks: HashMap<String, u64> = HashMap::new();
    for path in &inputs {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            lines += 1;
            let value: Value = serde_json::from_str(line)
                .map_err(|e| format!("{path}:{}: not JSON: {e}", lineno + 1))?;
            match field(&value, "kind").and_then(Value::as_str) {
                Some("span") => spans.push(parse_span(&value).map_err(|e| {
                    format!("{path}:{}: malformed span event: {e}", lineno + 1)
                })?),
                Some("span_ack") => {
                    let (trace, ns) = parse_ack(&value).map_err(|e| {
                        format!("{path}:{}: malformed span_ack event: {e}", lineno + 1)
                    })?;
                    acks.insert(trace, ns);
                }
                // Rings carry operational events too (epoch, hydrate,
                // journal_append, ...); attribution only needs spans.
                _ => {}
            }
        }
    }
    if spans.is_empty() {
        return Err(format!(
            "no span events in {} lines across {} file(s) — was the fleet run with \
             --trace-sample > 0 (or slow enough to trip the tail threshold)?",
            lines,
            inputs.len()
        ));
    }
    let mut joined = 0usize;
    for span in &mut spans {
        if let Some(ns) = acks.get(&span.trace) {
            span.ack_ns = Some(*ns);
            joined += 1;
        }
    }
    say!(
        "{} span(s) from {} file(s) ({} lines), {} joined with a reply write",
        spans.len(),
        inputs.len(),
        lines,
        joined
    );

    // Per-stage distribution and share of the fleet's total time.
    let total_e2e: u64 = spans.iter().map(|s| s.e2e_ns).sum();
    say!("");
    say!("stage        p50          p99          total share");
    for (i, stage) in STAGES.iter().enumerate() {
        let mut ns: Vec<u64> = spans.iter().map(|s| s.stages[i]).collect();
        ns.sort_unstable();
        let total: u64 = ns.iter().sum();
        let share = if total_e2e > 0 { total as f64 / total_e2e as f64 * 100.0 } else { 0.0 };
        say!(
            "{:<10} {:>12} {:>12} {:>11.1}%",
            stage,
            fmt_ns(percentile(&ns, 0.50)),
            fmt_ns(percentile(&ns, 0.99)),
            share
        );
    }
    {
        let mut ack: Vec<u64> = spans.iter().filter_map(|s| s.ack_ns).collect();
        ack.sort_unstable();
        if !ack.is_empty() {
            say!(
                "{:<10} {:>12} {:>12}   (outside e2e)",
                "ack",
                fmt_ns(percentile(&ack, 0.50)),
                fmt_ns(percentile(&ack, 0.99))
            );
        }
    }

    let mean_coverage = spans.iter().map(Span::coverage).sum::<f64>() / spans.len() as f64;
    let min_seen = spans.iter().map(Span::coverage).fold(f64::INFINITY, f64::min);
    say!("");
    say!(
        "stage coverage of end-to-end time: mean {:.1}%, min {:.1}%",
        mean_coverage * 100.0,
        min_seen * 100.0
    );

    // The critical path: the slowest records, each decomposed.
    spans.sort_by(|a, b| b.e2e_ns.cmp(&a.e2e_ns));
    let n = slowest.min(spans.len());
    if n > 0 {
        say!("");
        say!("critical path — {n} slowest record(s):");
        for span in &spans[..n] {
            let breakdown: Vec<String> = {
                // Dominant stage first: the reader's eye lands on the
                // answer, not on pipeline order.
                let mut idx: Vec<usize> = (0..STAGES.len()).collect();
                idx.sort_by(|&a, &b| span.stages[b].cmp(&span.stages[a]));
                idx.iter()
                    .filter(|&&i| span.stages[i] > 0)
                    .map(|&i| {
                        let pct = span.stages[i] as f64 / span.e2e_ns.max(1) as f64 * 100.0;
                        format!("{} {} ({:.0}%)", STAGES[i], fmt_ns(span.stages[i]), pct)
                    })
                    .collect()
            };
            let ack = match span.ack_ns {
                Some(ns) => format!(", +ack {}", fmt_ns(ns)),
                None => String::new(),
            };
            say!(
                "  trace {}  premises {} shard {} [{}]  e2e {}: {}{}",
                span.trace,
                span.premises,
                span.shard,
                span.sampled,
                fmt_ns(span.e2e_ns),
                if breakdown.is_empty() { "all stages < 1ns".to_string() } else { breakdown.join(", ") },
                ack
            );
        }
    }

    if let Some(min) = min_coverage {
        if mean_coverage < min {
            return Err(format!(
                "stage attribution covers {:.1}% of mean end-to-end time, below the \
                 --min-coverage gate of {:.1}%",
                mean_coverage * 100.0,
                min * 100.0
            ));
        }
        say!("coverage gate PASS ({:.1}% >= {:.1}%)", mean_coverage * 100.0, min * 100.0);
    }
    Ok(())
}

/// Object-field lookup on a parsed JSON value.
fn field<'a>(value: &'a Value, key: &str) -> Option<&'a Value> {
    value.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn u64_field(value: &Value, key: &str) -> Result<u64, String> {
    field(value, key).and_then(Value::as_u64).ok_or_else(|| format!("missing field {key:?}"))
}

fn str_field(value: &Value, key: &str) -> Result<String, String> {
    Ok(field(value, key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing field {key:?}"))?
        .to_string())
}

fn parse_span(value: &Value) -> Result<Span, String> {
    let mut stages = [0u64; 6];
    for (i, stage) in STAGES.iter().enumerate() {
        // Field names are `<stage>_ns`.
        stages[i] = match *stage {
            "ingress" => u64_field(value, "ingress_ns")?,
            "queue" => u64_field(value, "queue_ns")?,
            "hydrate" => u64_field(value, "hydrate_ns")?,
            "journal" => u64_field(value, "journal_ns")?,
            "infer" => u64_field(value, "infer_ns")?,
            _ => u64_field(value, "emit_ns")?,
        };
    }
    Ok(Span {
        trace: str_field(value, "trace")?,
        premises: u64_field(value, "premises")?,
        shard: u64_field(value, "shard")?,
        sampled: str_field(value, "sampled")?,
        stages,
        e2e_ns: u64_field(value, "e2e_ns")?,
        ack_ns: None,
    })
}

fn parse_ack(value: &Value) -> Result<(String, u64), String> {
    Ok((str_field(value, "trace")?, u64_field(value, "ack_ns")?))
}

/// Rank-based percentile over an ascending-sorted slice.
fn percentile(sorted_ns: &[u64], q: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = ((sorted_ns.len() as f64 * q).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1]
}

/// Human-scaled nanoseconds: `842 ns`, `13.4 µs`, `2.31 ms`, `1.07 s`.
fn fmt_ns(ns: u64) -> String {
    let f = ns as f64;
    if f < 1e3 {
        format!("{ns} ns")
    } else if f < 1e6 {
        format!("{:.1} µs", f / 1e3)
    } else if f < 1e9 {
        format!("{:.2} ms", f / 1e6)
    } else {
        format!("{:.2} s", f / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_line(trace: &str, e2e: u64, stages: [u64; 6]) -> String {
        format!(
            "{{\"seq\":1,\"ts_ms\":0,\"kind\":\"span\",\"trace\":\"{trace}\",\"premises\":3,\
             \"shard\":1,\"epoch\":2,\"sampled\":\"head\",\"ingress_ns\":{},\"queue_ns\":{},\
             \"hydrate_ns\":{},\"journal_ns\":{},\"infer_ns\":{},\"emit_ns\":{},\"e2e_ns\":{e2e}}}",
            stages[0], stages[1], stages[2], stages[3], stages[4], stages[5]
        )
    }

    #[test]
    fn spans_parse_with_full_attribution() {
        let value: Value = serde_json::from_str(&span_line(
            "00000000000000ab",
            1000,
            [100, 200, 0, 400, 200, 50],
        ))
        .unwrap();
        let span = parse_span(&value).unwrap();
        assert_eq!(span.trace, "00000000000000ab");
        assert_eq!(span.stages, [100, 200, 0, 400, 200, 50]);
        assert_eq!(span.e2e_ns, 1000);
        assert!((span.coverage() - 0.95).abs() < 1e-9);
    }

    #[test]
    fn acks_join_by_trace_id() {
        let value: Value = serde_json::from_str(
            "{\"seq\":2,\"ts_ms\":0,\"kind\":\"span_ack\",\"trace\":\"00000000000000ab\",\
             \"premises\":3,\"ack_ns\":77}",
        )
        .unwrap();
        assert_eq!(parse_ack(&value).unwrap(), ("00000000000000ab".to_string(), 77));
    }

    #[test]
    fn malformed_spans_are_rejected_with_the_missing_field() {
        let value: Value =
            serde_json::from_str("{\"kind\":\"span\",\"trace\":\"ab\",\"premises\":1}").unwrap();
        let err = parse_span(&value).unwrap_err();
        assert!(err.contains("ingress_ns"), "{err}");
    }

    #[test]
    fn coverage_saturates_and_tolerates_zero_e2e() {
        let full = Span {
            trace: String::new(),
            premises: 0,
            shard: 0,
            sampled: "head".into(),
            stages: [10, 10, 10, 10, 10, 10],
            e2e_ns: 40, // stage sum exceeds e2e (clock skew): clamp to 1
            ack_ns: None,
        };
        assert_eq!(full.coverage(), 1.0);
        let empty = Span { e2e_ns: 0, stages: [0; 6], ..full };
        assert_eq!(empty.coverage(), 1.0);
    }

    #[test]
    fn percentiles_and_formatting() {
        let ns: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&ns, 0.50), 50);
        assert_eq!(percentile(&ns, 0.99), 99);
        assert_eq!(percentile(&[], 0.99), 0);
        assert_eq!(fmt_ns(842), "842 ns");
        assert_eq!(fmt_ns(13_400), "13.4 µs");
        assert_eq!(fmt_ns(2_310_000), "2.31 ms");
        assert_eq!(fmt_ns(1_070_000_000), "1.07 s");
    }
}
