//! `gem loadgen` — closed-loop device-fleet load generator.
//!
//! Drives N simulated devices against a running `gem serve` instance
//! over real TCP sockets. Each device is one thread speaking the
//! [`gem_service::wire`] protocol: it reads the server's HELLO credit
//! window, streams its diurnal scan day (from
//! [`gem_rfsim::workload::device_stream`]), and keeps at most one
//! window of records unresolved — exactly the flow-control contract a
//! well-behaved device honors, which is why a healthy run sees zero
//! sheds. Every ACK and DECISION is matched back to the record that
//! caused it, so the client measures true end-to-end decision latency
//! and scores the server's answers against ground-truth labels.
//!
//! After the run, `--metrics HOST:PORT` scrapes the server's
//! Prometheus endpoint and cross-checks the client's books against the
//! server's (accepted counts must agree, nothing dropped or rejected).
//! The aggregate — latency percentiles, throughput, shed counts, both
//! sides' ledgers — is appended as one JSON line to `--bench-out`
//! (default `BENCH_ingress.json`), and the SLO gate fails the process
//! if any shed occurred, any ledger disagrees, or p99 end-to-end
//! latency exceeds the budget (`--p99-ms` / `GEM_LOADGEN_P99_MS`).

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use gem_obs::SpanIdGen;
use gem_rfsim::{workload, Scenario, ScenarioConfig};
use gem_service::wire::{self, Frame, WireShedReason, WireTrace, WireVerdict};
use gem_signal::LabeledRecord;

use crate::args::Args;

/// Everything one device learned from its day of traffic.
struct DeviceReport {
    /// Credit window the server advertised in HELLO.
    credits: u16,
    /// End-to-end record→DECISION latencies, nanoseconds.
    latencies_ns: Vec<u64>,
    accept_acks: u64,
    queued_acks: u64,
    sheds: u64,
    decisions: u64,
    /// Decisions matching the record's ground-truth label.
    correct: u64,
    alerts: u64,
}

/// Server-side ledger scraped from the Prometheus endpoint.
struct ServerLedger {
    admitted: f64,
    shed: f64,
    ingress_records: f64,
    dropped_events: f64,
    rejects: f64,
    orphan_events: f64,
}

/// One appended line of `BENCH_ingress.json`.
#[derive(serde::Serialize)]
struct IngressBenchLine {
    bench: &'static str,
    quick: bool,
    devices: usize,
    scans_per_device: usize,
    total_records: usize,
    credit_window: u16,
    elapsed_seconds: f64,
    records_per_sec: f64,
    accept_acks: u64,
    queued_acks: u64,
    client_sheds: u64,
    client_decisions: u64,
    client_alerts: u64,
    decision_accuracy: f64,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    p99_budget_ms: f64,
    scraped: bool,
    server_admitted: f64,
    server_sheds: f64,
    server_ingress_records: f64,
    server_dropped_events: f64,
    server_rejects: f64,
    server_orphan_events: f64,
}

pub fn run(args: &Args) -> Result<(), String> {
    let quick = std::env::var("GEM_LOADGEN_QUICK").map(|v| v == "1").unwrap_or(false);
    let connect = args.require("connect")?;
    let devices = args.get_parsed::<usize>("devices")?.unwrap_or(if quick { 12 } else { 64 });
    if devices == 0 {
        return Err(
            "--devices must be at least 1 (a zero-device load generator measures nothing)".into()
        );
    }
    let scans =
        args.get_parsed::<usize>("scans-per-device")?.unwrap_or(if quick { 40 } else { 400 });
    if scans == 0 {
        return Err("--scans-per-device must be at least 1".into());
    }
    let user: u32 = args.get_parsed("user")?.unwrap_or(1);
    if !(1..=10).contains(&user) {
        return Err("--user must be 1..10".into());
    }
    let churn = args.get_parsed::<f64>("churn")?.unwrap_or(0.15);
    if !(0.0..=1.0).contains(&churn) {
        return Err("--churn must be within 0..1".into());
    }
    let pace_ms = args.get_parsed::<f64>("pace-ms")?.unwrap_or(0.0);
    if !pace_ms.is_finite() || pace_ms < 0.0 {
        return Err("--pace-ms must be non-negative".into());
    }
    let pace = Duration::from_secs_f64(pace_ms / 1000.0);
    let connect_timeout =
        Duration::from_secs_f64(args.get_parsed::<f64>("connect-timeout-secs")?.unwrap_or(10.0));
    let p99_budget_ms = match args.get_parsed::<f64>("p99-ms")? {
        Some(ms) => ms,
        None => match std::env::var("GEM_LOADGEN_P99_MS") {
            Ok(raw) => raw
                .parse::<f64>()
                .map_err(|e| format!("invalid GEM_LOADGEN_P99_MS {raw:?}: {e}"))?,
            Err(_) => 500.0,
        },
    };
    let metrics_addr = args.get_parsed::<String>("metrics")?;
    let bench_out =
        args.get_parsed::<String>("bench-out")?.unwrap_or_else(|| "BENCH_ingress.json".into());
    // --trace stamps every RECORD with client-minted trace context, so
    // server-side spans join back to the device that sent the record.
    let trace = args.flag("trace");

    // Build the same world the server trained on: the scenario is
    // deterministic in (user, seed), so the devices' scans look like
    // the radio environment the model knows.
    let mut cfg = ScenarioConfig::user(user);
    if let Some(seed) = args.get_parsed::<u64>("seed")? {
        cfg.seed = seed;
    }
    let scenario = Scenario::build(cfg);
    say!(
        "loadgen: {} devices x {} scans → {} (scenario {:?}, seed {}{})",
        devices,
        scans,
        connect,
        scenario.cfg.name,
        scenario.cfg.seed,
        if quick { ", quick" } else { "" }
    );

    let started = Instant::now();
    let handles = (1..=devices as u64)
        .map(|premises_id| {
            let connect = connect.clone();
            let stream = workload::device_stream(&scenario, premises_id, scans, churn);
            std::thread::Builder::new()
                .name(format!("gem-loadgen-{premises_id}"))
                .spawn(move || {
                    run_device(&connect, premises_id, &stream, connect_timeout, pace, trace)
                })
                .map_err(|e| format!("spawning device thread: {e}"))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let mut reports = Vec::with_capacity(devices);
    let mut failures = Vec::new();
    for handle in handles {
        match handle.join() {
            Ok(Ok(report)) => reports.push(report),
            Ok(Err(e)) => failures.push(e),
            Err(_) => failures.push("device thread panicked".into()),
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    if !failures.is_empty() {
        return Err(format!("{} device(s) failed; first: {}", failures.len(), failures[0]));
    }

    // Aggregate the fleet's books.
    let total_records = devices * scans;
    let mut latencies: Vec<u64> =
        reports.iter().flat_map(|r| r.latencies_ns.iter().copied()).collect();
    latencies.sort_unstable();
    let credit_window = reports.iter().map(|r| r.credits).min().unwrap_or(0);
    let accept_acks: u64 = reports.iter().map(|r| r.accept_acks).sum();
    let queued_acks: u64 = reports.iter().map(|r| r.queued_acks).sum();
    let client_sheds: u64 = reports.iter().map(|r| r.sheds).sum();
    let client_decisions: u64 = reports.iter().map(|r| r.decisions).sum();
    let client_alerts: u64 = reports.iter().map(|r| r.alerts).sum();
    let correct: u64 = reports.iter().map(|r| r.correct).sum();
    let decision_accuracy =
        if client_decisions > 0 { correct as f64 / client_decisions as f64 } else { 0.0 };
    let p50_ms = percentile_ms(&latencies, 0.50);
    let p99_ms = percentile_ms(&latencies, 0.99);
    let max_ms = latencies.last().map(|&ns| ns as f64 / 1e6).unwrap_or(0.0);

    say!(
        "{} records in {:.2}s ({:.0} rec/s): {} accepted + {} queued, {} shed, \
         {} decisions ({:.1}% correct), {} alerts",
        total_records,
        elapsed,
        total_records as f64 / elapsed.max(1e-9),
        accept_acks,
        queued_acks,
        client_sheds,
        client_decisions,
        decision_accuracy * 100.0,
        client_alerts
    );
    say!(
        "e2e decision latency: p50 {:.2} ms, p99 {:.2} ms, max {:.2} ms (budget {:.0} ms)",
        p50_ms,
        p99_ms,
        max_ms,
        p99_budget_ms
    );

    // Cross-check against the server's own ledger.
    let server = match &metrics_addr {
        Some(addr) => Some(scrape_ledger(addr)?),
        None => None,
    };
    if let Some(s) = &server {
        say!(
            "server ledger: {} admitted, {} shed, {} ingress records, {} dropped events, \
             {} rejects, {} orphan events",
            s.admitted,
            s.shed,
            s.ingress_records,
            s.dropped_events,
            s.rejects,
            s.orphan_events
        );
    }

    // Persist the line before gating: a failed gate still leaves the
    // evidence on disk.
    let line = IngressBenchLine {
        bench: "ingress",
        quick,
        devices,
        scans_per_device: scans,
        total_records,
        credit_window,
        elapsed_seconds: elapsed,
        records_per_sec: total_records as f64 / elapsed.max(1e-9),
        accept_acks,
        queued_acks,
        client_sheds,
        client_decisions,
        client_alerts,
        decision_accuracy,
        p50_ms,
        p99_ms,
        max_ms,
        p99_budget_ms,
        scraped: server.is_some(),
        server_admitted: server.as_ref().map(|s| s.admitted).unwrap_or(0.0),
        server_sheds: server.as_ref().map(|s| s.shed).unwrap_or(0.0),
        server_ingress_records: server.as_ref().map(|s| s.ingress_records).unwrap_or(0.0),
        server_dropped_events: server.as_ref().map(|s| s.dropped_events).unwrap_or(0.0),
        server_rejects: server.as_ref().map(|s| s.rejects).unwrap_or(0.0),
        server_orphan_events: server.as_ref().map(|s| s.orphan_events).unwrap_or(0.0),
    };
    let json = serde_json::to_string(&line).map_err(|e| e.to_string())?;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&bench_out)
        .map_err(|e| format!("opening {bench_out}: {e}"))?;
    writeln!(file, "{json}").map_err(|e| format!("writing {bench_out}: {e}"))?;
    say!("appended bench line to {bench_out}");

    // The SLO gate. A credit-honoring client must see zero sheds, one
    // decision per record, and books that agree with the server's.
    let mut violations: Vec<String> = Vec::new();
    if client_sheds > 0 {
        violations.push(format!("{client_sheds} records shed (flow control must prevent sheds)"));
    }
    if client_decisions != (total_records as u64).saturating_sub(client_sheds) {
        violations.push(format!(
            "{client_decisions} decisions for {total_records} records ({client_sheds} shed)"
        ));
    }
    if p99_ms > p99_budget_ms {
        violations.push(format!("p99 {p99_ms:.2} ms exceeds budget {p99_budget_ms:.0} ms"));
    }
    if let Some(s) = &server {
        if s.admitted != client_decisions as f64 {
            violations.push(format!(
                "server admitted {} but client saw {} decisions",
                s.admitted, client_decisions
            ));
        }
        if s.ingress_records != total_records as f64 {
            violations.push(format!(
                "server ingress saw {} records but client sent {}",
                s.ingress_records, total_records
            ));
        }
        if s.dropped_events != 0.0 {
            violations.push(format!("server dropped {} events", s.dropped_events));
        }
        if s.rejects != 0.0 {
            violations.push(format!("server rejected {} connections", s.rejects));
        }
    }
    if !violations.is_empty() {
        return Err(format!("SLO gate failed: {}", violations.join("; ")));
    }
    say!("SLO gate PASS");
    Ok(())
}

/// One device's closed loop: stream the day's scans, never more than
/// one credit window unresolved, matching ACKs and DECISIONs back to
/// records by the protocol's per-premises FIFO order.
fn run_device(
    connect: &str,
    premises_id: u64,
    day: &[LabeledRecord],
    connect_timeout: Duration,
    pace: Duration,
    trace: bool,
) -> Result<DeviceReport, String> {
    // Deterministic per-device trace ids: re-running the same workload
    // mints the same ids, so captures from two runs line up.
    let span_ids = trace.then(|| SpanIdGen::with_seed(premises_id));
    let ctx = |what: &str, e: &dyn std::fmt::Display| format!("device {premises_id}: {what}: {e}");
    let sock = connect_retry(connect, connect_timeout)
        .map_err(|e| ctx(&format!("connecting to {connect}"), &e))?;
    let _ = sock.set_nodelay(true);
    let _ = sock.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = sock.set_write_timeout(Some(Duration::from_secs(10)));
    let mut writer = sock.try_clone().map_err(|e| ctx("cloning socket", &e))?;
    let mut reader = BufReader::new(sock);
    let mut rbuf = Vec::new();
    let mut wbuf = Vec::new();

    let credits = match wire::read_frame(&mut reader, wire::MAX_FRAME_LEN, &mut rbuf) {
        Ok(Some(Frame::Hello { version, credits })) => {
            if version != wire::WIRE_VERSION {
                return Err(format!(
                    "device {premises_id}: server speaks wire v{version}, client v{}",
                    wire::WIRE_VERSION
                ));
            }
            credits
        }
        Ok(other) => return Err(format!("device {premises_id}: expected HELLO, got {other:?}")),
        Err(e) => return Err(ctx("reading HELLO", &e)),
    };
    let window = credits.max(1) as usize;

    let total = day.len();
    let mut report = DeviceReport {
        credits,
        latencies_ns: Vec::with_capacity(total),
        accept_acks: 0,
        queued_acks: 0,
        sheds: 0,
        decisions: 0,
        correct: 0,
        alerts: 0,
    };
    let mut sent_at: Vec<Instant> = Vec::with_capacity(total);
    let mut was_shed = vec![false; total];
    let mut sent = 0usize; // records written to the socket
    let mut acked = 0usize; // admission verdicts received (FIFO)
    let mut decided = 0usize; // decisions received
    let mut shed = 0usize; // records resolved by a shed ACK
    let mut next_decision = 0usize; // next record still owed a DECISION

    while decided + shed < total {
        // Refill the window: keep at most `window` records unresolved
        // (sent but neither decided nor shed).
        while sent < total && sent - decided - shed < window {
            let trace = span_ids.as_ref().map(|gen| WireTrace {
                trace_id: gen.next_id(),
                parent_span: gen.next_id(),
            });
            let frame = Frame::Record { premises_id, record: day[sent].record.clone(), trace };
            wire::write_frame(&mut writer, &frame, &mut wbuf)
                .map_err(|e| ctx(&format!("sending record {sent}"), &e))?;
            sent_at.push(Instant::now());
            sent += 1;
            if !pace.is_zero() {
                std::thread::sleep(pace);
            }
        }
        match wire::read_frame(&mut reader, wire::MAX_FRAME_LEN, &mut rbuf) {
            Ok(Some(Frame::Ack { verdict, .. })) => {
                if acked >= sent {
                    return Err(format!("device {premises_id}: ACK for a record never sent"));
                }
                match verdict {
                    WireVerdict::Accept => report.accept_acks += 1,
                    WireVerdict::Queued { .. } => report.queued_acks += 1,
                    WireVerdict::Shed(reason) => {
                        // Permanent refusals would just repeat forever.
                        if matches!(reason, WireShedReason::UnknownPremises | WireShedReason::Busy)
                        {
                            return Err(format!(
                                "device {premises_id}: permanently refused ({reason:?}) — \
                                 does the server host premises {premises_id}?"
                            ));
                        }
                        report.sheds += 1;
                        was_shed[acked] = true;
                        shed += 1;
                    }
                }
                acked += 1;
            }
            Ok(Some(Frame::Decision { inside, .. })) => {
                // Decisions arrive in per-premises FIFO order, skipping
                // shed records (they never reach a shard).
                while next_decision < total && was_shed[next_decision] {
                    next_decision += 1;
                }
                if next_decision >= sent {
                    return Err(format!("device {premises_id}: DECISION for a record never sent"));
                }
                let elapsed = sent_at[next_decision].elapsed();
                report.latencies_ns.push(elapsed.as_nanos().min(u64::MAX as u128) as u64);
                if inside == day[next_decision].label.is_in() {
                    report.correct += 1;
                }
                next_decision += 1;
                decided += 1;
                report.decisions += 1;
            }
            Ok(Some(Frame::Alert { .. })) => report.alerts += 1,
            Ok(Some(other)) => {
                return Err(format!("device {premises_id}: unexpected frame {other:?}"))
            }
            Ok(None) => {
                return Err(format!(
                    "device {premises_id}: server closed with {} records unresolved",
                    total - decided - shed
                ))
            }
            Err(e) => return Err(ctx("reading reply", &e)),
        }
    }
    Ok(report)
}

/// Connects with retry until `timeout`: in CI the server races the
/// client to the socket, and losing that race shouldn't fail the run.
fn connect_retry(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

fn percentile_ms(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() as f64 * q).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1] as f64 / 1e6
}

/// Scrapes `http://addr/metrics` and sums the counters the gate needs.
fn scrape_ledger(addr: &str) -> Result<ServerLedger, String> {
    let text = http_get(addr, "/metrics").map_err(|e| format!("scraping {addr}: {e}"))?;
    let admitted = prom_sum(&text, "gem_fleet_admission_total", &[("verdict", "accept")])
        + prom_sum(&text, "gem_fleet_admission_total", &[("verdict", "queued")]);
    let shed = prom_sum(&text, "gem_fleet_admission_total", &[("verdict", "shed")])
        + prom_sum(&text, "gem_fleet_admission_total", &[("verdict", "unknown")]);
    Ok(ServerLedger {
        admitted,
        shed,
        ingress_records: prom_sum(&text, "gem_ingress_frames_total", &[("kind", "record")]),
        dropped_events: prom_sum(&text, "gem_shard_dropped_events_total", &[]),
        rejects: prom_sum(&text, "gem_ingress_rejects_total", &[]),
        orphan_events: prom_sum(&text, "gem_ingress_orphan_events_total", &[]),
    })
}

/// One-shot HTTP GET against the metrics server (no HTTP client in the
/// allowed crate set; the server speaks one-request-per-connection).
fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let Some((head, body)) = response.split_once("\r\n\r\n") else {
        return Err(std::io::Error::other("malformed HTTP response"));
    };
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(std::io::Error::other(format!("unexpected status {status:?}")));
    }
    Ok(body.to_string())
}

/// Sums every sample of `name` whose label set contains all `filters`
/// pairs, over Prometheus text-format `text`.
fn prom_sum(text: &str, name: &str, filters: &[(&str, &str)]) -> f64 {
    let mut sum = 0.0;
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let Some(rest) = line.strip_prefix(name) else { continue };
        let (labels, value) = match rest.strip_prefix('{') {
            Some(tail) => {
                let Some((labels, value)) = tail.split_once('}') else { continue };
                (labels, value)
            }
            None => {
                // Bare `name value` — only a match with no label part.
                if !rest.starts_with(' ') {
                    continue;
                }
                ("", rest)
            }
        };
        if !filters.iter().all(|(k, v)| labels.contains(&format!("{k}=\"{v}\""))) {
            continue;
        }
        if let Ok(v) = value.trim().parse::<f64>() {
            sum += v;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEXT: &str = "\
# HELP gem_fleet_admission_total admissions\n\
# TYPE gem_fleet_admission_total counter\n\
gem_fleet_admission_total{shard=\"0\",verdict=\"accept\"} 10\n\
gem_fleet_admission_total{shard=\"1\",verdict=\"accept\"} 5\n\
gem_fleet_admission_total{shard=\"0\",verdict=\"shed\"} 2\n\
gem_fleet_admission_totals{shard=\"0\",verdict=\"accept\"} 99\n\
gem_ingress_orphan_events_total 3\n";

    #[test]
    fn prom_sum_filters_and_sums() {
        assert_eq!(prom_sum(TEXT, "gem_fleet_admission_total", &[("verdict", "accept")]), 15.0);
        assert_eq!(prom_sum(TEXT, "gem_fleet_admission_total", &[("verdict", "shed")]), 2.0);
        assert_eq!(prom_sum(TEXT, "gem_fleet_admission_total", &[("verdict", "queued")]), 0.0);
    }

    #[test]
    fn prom_sum_handles_bare_and_prefix_names() {
        assert_eq!(prom_sum(TEXT, "gem_ingress_orphan_events_total", &[]), 3.0);
        // A name that is a prefix of another must not absorb its lines.
        assert_eq!(prom_sum(TEXT, "gem_fleet_admission_total", &[]), 17.0);
    }

    #[test]
    fn percentile_is_rank_based() {
        let ns: Vec<u64> = (1..=100).map(|i| i * 1_000_000).collect();
        assert_eq!(percentile_ms(&ns, 0.50), 50.0);
        assert_eq!(percentile_ms(&ns, 0.99), 99.0);
        assert_eq!(percentile_ms(&[], 0.99), 0.0);
        assert_eq!(percentile_ms(&[5_000_000], 0.99), 5.0);
    }
}
