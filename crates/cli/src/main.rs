//! `gem` — command-line interface for the GEM geofencing system.
//!
//! ```text
//! gem simulate --user 3 --out dataset.json        # synthesize a dataset
//! gem train    --dataset dataset.json --model model.json
//! gem eval     --dataset dataset.json --model model.json
//! gem stream   --dataset dataset.json --model model.json --alert-after 3
//! gem fleet    --models a.json,b.json --datasets a-ds.json,b-ds.json --shards 4
//! gem serve    --listen 127.0.0.1:7979 --model model.json --premises 12
//! gem loadgen  --connect 127.0.0.1:7979 --devices 12
//! gem info     --model model.json
//! ```
//!
//! Datasets are JSON (`gem_signal::Dataset`); models are GEM snapshots
//! (`gem_core::persist::GemSnapshot`).

use std::process::ExitCode;

/// `println!` that ignores broken pipes (e.g. `gem info | head`), so the
/// CLI exits quietly instead of panicking when the reader goes away.
macro_rules! say {
    ($($t:tt)*) => {{
        use std::io::Write;
        let _ = writeln!(std::io::stdout(), $($t)*);
    }};
}

mod args;
mod loadgen;
mod trace;

use args::Args;
use gem_core::{Gem, GemConfig};
use gem_eval::Confusion;
use gem_rfsim::{Scenario, ScenarioConfig};
use gem_service::{Event, Monitor, MonitorConfig};
use gem_signal::Dataset;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}

fn run(argv: Vec<String>) -> Result<(), String> {
    let Some((command, rest)) = argv.split_first() else {
        return Err(usage());
    };
    let args = Args::parse(rest)?;
    match command.as_str() {
        "simulate" => simulate(&args),
        "train" => train(&args),
        "eval" => eval(&args),
        "stream" => stream(&args),
        "fleet" => fleet(&args),
        "serve" => serve(&args),
        "loadgen" => loadgen::run(&args),
        "trace" => trace::run(&args),
        "info" => info(&args),
        "help" | "--help" | "-h" => {
            say!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: gem <command> [options]\n\
     commands:\n\
     \x20 simulate --out FILE [--user 1..10 | --lab] [--train-secs S] [--test N] [--seed X]\n\
     \x20 train    --dataset FILE --model FILE [--dim D] [--epochs E] [--seed X]\n\
     \x20 eval     --dataset FILE --model FILE\n\
     \x20 stream   --dataset FILE --model FILE [--alert-after K] [--save-back]\n\
     \x20 fleet    --models F1,F2,.. --datasets F1,F2,.. [--shards N] [--max-batch B]\n\
     \x20          [--alert-after K] [--dir DIR] [--snapshot-secs S] [--recover]\n\
     \x20          [--hot-cap N] [--metrics-addr HOST:PORT] [--trace-dir DIR] [--no-metrics]\n\
     \x20          [--trace-sample F] [--trace-tail-ms MS]\n\
     \x20 serve    --listen HOST:PORT (--model FILE [--premises N] | --models F1,F2,..)\n\
     \x20          [--shards N] [--max-batch B] [--queue Q] [--alert-after K] [--dir DIR]\n\
     \x20          [--snapshot-secs S] [--hot-cap N] [--credit W] [--read-timeout-secs S]\n\
     \x20          [--duration-secs S] [--metrics-addr HOST:PORT] [--no-metrics]\n\
     \x20          [--trace-sample F] [--trace-tail-ms MS]\n\
     \x20 loadgen  --connect HOST:PORT [--devices N] [--scans-per-device N] [--user 1..10]\n\
     \x20          [--seed X] [--churn F] [--pace-ms MS] [--metrics HOST:PORT]\n\
     \x20          [--bench-out FILE] [--p99-ms MS] [--connect-timeout-secs S] [--trace]\n\
     \x20 trace    --input F1,F2,.. [--slowest N] [--min-coverage F]\n\
     \x20 info     --model FILE"
        .to_string()
}

fn load_dataset(args: &Args) -> Result<Dataset, String> {
    let path = args.require("dataset")?;
    let json = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("parsing {path}: {e}"))
}

fn simulate(args: &Args) -> Result<(), String> {
    let out = args.require("out")?;
    let mut cfg = if args.flag("lab") {
        ScenarioConfig::lab()
    } else {
        let user: u32 = args.get_parsed("user")?.unwrap_or(1);
        if !(1..=10).contains(&user) {
            return Err("--user must be 1..10".into());
        }
        ScenarioConfig::user(user)
    };
    if let Some(secs) = args.get_parsed::<f64>("train-secs")? {
        cfg.train_duration_s = secs;
    }
    if let Some(n) = args.get_parsed::<usize>("test")? {
        cfg.n_test_in = n;
        cfg.n_test_out = n;
    }
    if let Some(seed) = args.get_parsed::<u64>("seed")? {
        cfg.seed = seed;
    }
    let scenario = Scenario::build(cfg);
    let dataset = scenario.generate();
    let json = serde_json::to_string(&dataset).map_err(|e| e.to_string())?;
    std::fs::write(&out, json).map_err(|e| format!("writing {out}: {e}"))?;
    say!(
        "wrote {}: {} training scans, {} test scans, {:.0} m² premises",
        out,
        dataset.train.len(),
        dataset.test.len(),
        scenario.world.plan.area_m2()
    );
    Ok(())
}

fn train(args: &Args) -> Result<(), String> {
    let dataset = load_dataset(args)?;
    let model_path = args.require("model")?;
    let mut cfg = GemConfig::default();
    if let Some(d) = args.get_parsed::<usize>("dim")? {
        cfg.embedding_dim = d;
    }
    if let Some(e) = args.get_parsed::<usize>("epochs")? {
        cfg.epochs = e;
    }
    if let Some(seed) = args.get_parsed::<u64>("seed")? {
        cfg.seed = seed;
    }
    let start = std::time::Instant::now();
    let gem = Gem::fit(cfg, &dataset.train);
    gem.save(&model_path).map_err(|e| e.to_string())?;
    say!(
        "trained on {} scans in {:.1}s ({} graph nodes, {} edges); model → {}",
        dataset.train.len(),
        start.elapsed().as_secs_f64(),
        gem.graph().n_nodes(),
        gem.graph().n_edges(),
        model_path
    );
    Ok(())
}

fn eval(args: &Args) -> Result<(), String> {
    let dataset = load_dataset(args)?;
    let mut gem = Gem::load(args.require("model")?).map_err(|e| e.to_string())?;
    let mut confusion = Confusion::default();
    for t in &dataset.test {
        confusion.record(t.label, gem.infer(&t.record).label);
    }
    let i = confusion.in_metrics();
    let o = confusion.out_metrics();
    say!("scans: {}", confusion.total());
    say!("accuracy: {:.3}", confusion.accuracy());
    say!("in-premises  P {:.3}  R {:.3}  F {:.3}", i.precision, i.recall, i.f_score);
    say!("outside      P {:.3}  R {:.3}  F {:.3}", o.precision, o.recall, o.f_score);
    say!("online updates: {}", gem.detector().n_updates);
    Ok(())
}

fn stream(args: &Args) -> Result<(), String> {
    let dataset = load_dataset(args)?;
    let model_path = args.require("model")?;
    let gem = Gem::load(&model_path).map_err(|e| e.to_string())?;
    let alert_after = args.get_parsed::<usize>("alert-after")?.unwrap_or(3);
    let mut monitor = Monitor::new(gem, MonitorConfig { alert_after, ..MonitorConfig::default() });
    for t in &dataset.test {
        for event in monitor.process(&t.record) {
            match event {
                Event::AlertRaised { timestamp_s, consecutive_out } => {
                    say!("t={timestamp_s:8.1}s  ALERT raised ({consecutive_out} consecutive outside scans)");
                }
                Event::AlertCleared { timestamp_s } => {
                    say!("t={timestamp_s:8.1}s  alert cleared");
                }
                Event::Decision { .. } => {}
            }
        }
    }
    let stats = monitor.stats();
    say!(
        "processed {} scans: {} in / {} out, {} alerts, {} model updates",
        stats.scans,
        stats.in_decisions,
        stats.out_decisions,
        stats.alerts,
        stats.model_updates
    );
    if args.flag("save-back") {
        monitor.gem().save(&model_path).map_err(|e| e.to_string())?;
        say!("updated model saved back to {model_path}");
    }
    Ok(())
}

/// Fleet tuning shared by `gem fleet` and `gem serve`:
/// `--shards`/`--max-batch`/`--queue` size the worker pool, `--dir`
/// enables the write-ahead journal plus snapshots (`--snapshot-secs`
/// and at shutdown), `--hot-cap` bounds resident premises per shard
/// (idle tenants spill to their snapshot files and hydrate back on
/// their next record; requires `--dir`, and must be at least 1 — omit
/// the flag for an unbounded hot tier), `--no-metrics` turns
/// histograms and tracing off (counters stay on).
fn fleet_config_from_args(args: &Args) -> Result<gem_service::FleetConfig, String> {
    use std::time::Duration;

    let mut cfg = gem_service::FleetConfig::default();
    cfg.obs.enabled = !args.flag("no-metrics");
    if let Some(shards) = args.get_parsed::<usize>("shards")? {
        if shards == 0 {
            return Err("--shards must be at least 1".into());
        }
        cfg.shards = shards;
    }
    if let Some(b) = args.get_parsed::<usize>("max-batch")? {
        if b == 0 {
            return Err("--max-batch must be at least 1".into());
        }
        cfg.max_batch = b;
    }
    if let Some(q) = args.get_parsed::<usize>("queue")? {
        if q == 0 {
            return Err("--queue must be at least 1".into());
        }
        cfg.queue_per_shard = q;
    }
    cfg.dir = args.get_parsed::<std::path::PathBuf>("dir")?;
    if let Some(secs) = args.get_parsed::<f64>("snapshot-secs")? {
        if cfg.dir.is_none() {
            return Err("--snapshot-secs requires --dir".into());
        }
        cfg.snapshot_interval = Some(Duration::from_secs_f64(secs));
    }
    if let Some(cap) = args.get_parsed::<usize>("hot-cap")? {
        if cap == 0 {
            return Err(
                "--hot-cap must be at least 1 (omit the flag for an unbounded hot tier)".into()
            );
        }
        if cfg.dir.is_none() {
            return Err("--hot-cap requires --dir (cold premises spill to snapshots)".into());
        }
        cfg.hot_premises_per_shard = Some(cap);
    }
    if let Some(rate) = args.get_parsed::<f64>("trace-sample")? {
        if !(0.0..=1.0).contains(&rate) {
            return Err("--trace-sample must be within 0..1".into());
        }
        cfg.obs.trace_sample = rate;
    }
    if let Some(ms) = args.get_parsed::<f64>("trace-tail-ms")? {
        if !ms.is_finite() || ms < 0.0 {
            return Err("--trace-tail-ms must be non-negative (0 disables tail capture)".into());
        }
        cfg.obs.trace_tail_ms = ms;
    }
    Ok(cfg)
}

/// Multi-tenant streaming: one premises per `--models`/`--datasets`
/// pair, sharded across worker threads, with optional durability and
/// crash recovery (`--recover` replays the journal before streaming) —
/// see [`fleet_config_from_args`] for the shared tuning flags.
/// `--metrics-addr` serves the
/// fleet's registry as Prometheus text (`/metrics`) and JSON
/// (`/metrics.json`) for the run's duration; `--trace-dir` dumps the
/// per-shard decision-trace rings as JSONL at the end.
fn fleet(args: &Args) -> Result<(), String> {
    use gem_service::{Fleet, FleetEvent};
    use std::time::Duration;

    let cfg = fleet_config_from_args(args)?;
    let alert_after = args.get_parsed::<usize>("alert-after")?.unwrap_or(3);

    let datasets: Vec<Dataset> = match args.values_list("datasets") {
        Some(paths) => paths
            .iter()
            .map(|p| {
                let json = std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"))?;
                serde_json::from_str(&json).map_err(|e| format!("parsing {p}: {e}"))
            })
            .collect::<Result<_, String>>()?,
        None => Vec::new(),
    };

    let fleet = if args.flag("recover") {
        if cfg.dir.is_none() {
            return Err("--recover requires --dir".into());
        }
        let recovery = Fleet::recover(cfg).map_err(|e| e.to_string())?;
        say!(
            "recovered: {} journal epochs replayed, {} events regenerated",
            recovery.replayed_epochs,
            recovery.replayed.len()
        );
        recovery.fleet
    } else {
        let model_paths = args.values_list("models").ok_or("missing required option --models")?;
        if model_paths.len() != datasets.len() {
            return Err(format!(
                "--models lists {} files but --datasets lists {}",
                model_paths.len(),
                datasets.len()
            ));
        }
        let monitors = model_paths
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let gem = Gem::load(p).map_err(|e| format!("loading {p}: {e}"))?;
                let monitor =
                    Monitor::new(gem, MonitorConfig { alert_after, ..MonitorConfig::default() });
                Ok((i as u64 + 1, monitor))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Fleet::spawn(monitors, cfg).map_err(|e| e.to_string())?
    };

    // The server lives until the end of this function: the final scrape
    // a supervisor makes still sees the complete run. Shard trace rings
    // ride along so `/trace.jsonl` serves retained spans.
    let _metrics_server = match args.get_parsed::<String>("metrics-addr")? {
        Some(addr) => {
            let server =
                gem_obs::MetricsServer::bind_with_traces(&addr, fleet.registry(), fleet.trace_rings())
                    .map_err(|e| format!("binding metrics server on {addr}: {e}"))?;
            say!("serving metrics on http://{}/metrics", server.local_addr());
            Some(server)
        }
        None => None,
    };

    // Interleave the streams round-robin, as concurrent devices would,
    // backing off briefly when admission sheds. Events are drained
    // *inside* the submit loop: the fleet's event channel is bounded,
    // and a submitter that never drains would eventually stall the
    // pipeline it is trying to fill.
    use gem_service::{Admission, ShedReason};
    let mut sheds = 0u64;
    let mut events: Vec<FleetEvent> = Vec::new();
    let drain = |events: &mut Vec<FleetEvent>| {
        while let Ok(e) = fleet.events().try_recv() {
            events.push(e);
        }
    };
    let longest = datasets.iter().map(|d| d.test.len()).max().unwrap_or(0);
    for k in 0..longest {
        for (i, dataset) in datasets.iter().enumerate() {
            let Some(t) = dataset.test.get(k) else { continue };
            let premises_id = i as u64 + 1;
            loop {
                match fleet.submit(premises_id, t.record.clone()) {
                    a if a.accepted() => break,
                    Admission::Shed(ShedReason::QueueFull) => {
                        // Transient: the shard is behind. Free the event
                        // channel, give it a moment, retry.
                        sheds += 1;
                        drain(&mut events);
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Admission::Shed(reason) => {
                        // UnknownPremises / Shutdown never clear up;
                        // retrying would spin forever.
                        return Err(format!(
                            "premises {premises_id}: submission refused permanently ({reason:?})"
                        ));
                    }
                    _ => unreachable!("non-shed admissions are accepted"),
                }
            }
            drain(&mut events);
        }
    }
    fleet.flush().map_err(|e| e.to_string())?;
    drain(&mut events);
    for FleetEvent { premises_id, event, .. } in events {
        match event {
            Event::AlertRaised { timestamp_s, consecutive_out } => {
                say!(
                    "premises {premises_id}  t={timestamp_s:8.1}s  ALERT raised \
                     ({consecutive_out} consecutive outside scans)"
                );
            }
            Event::AlertCleared { timestamp_s } => {
                say!("premises {premises_id}  t={timestamp_s:8.1}s  alert cleared");
            }
            Event::Decision { .. } => {}
        }
    }
    for (premises_id, stats) in fleet.stats().map_err(|e| e.to_string())? {
        say!(
            "premises {premises_id} (shard {}): {} scans in {} epochs, {} in / {} out, \
             {} alerts, {} model updates",
            fleet.route(premises_id).unwrap_or(0),
            stats.scans,
            stats.epochs,
            stats.in_decisions,
            stats.out_decisions,
            stats.alerts,
            stats.model_updates
        );
    }
    if sheds > 0 {
        say!("admission shed {sheds} submissions (retried until accepted)");
    }
    if fleet.dropped_events() > 0 {
        say!("{} event notifications dropped (consumer fell behind)", fleet.dropped_events());
    }
    if let Some(trace_dir) = args.get_parsed::<std::path::PathBuf>("trace-dir")? {
        let paths = fleet
            .dump_traces(&trace_dir)
            .map_err(|e| format!("writing traces to {}: {e}", trace_dir.display()))?;
        say!("wrote {} trace files to {}", paths.len(), trace_dir.display());
    }
    let durable = fleet.snapshot_dir().map(|d| d.display().to_string());
    fleet.shutdown().map_err(|e| e.to_string())?;
    if let Some(dir) = durable {
        say!("fleet state snapshotted to {dir}");
    }
    Ok(())
}

/// Network ingress: bind `--listen` and serve the wire protocol in
/// front of a fleet (see DESIGN.md, "Ingress architecture"). Premises
/// come from either `--models F1,F2,..` (premises 1..=N, one model
/// file each) or `--model FILE --premises N` (N monitors hydrated from
/// one snapshot — the loadgen's shape, where every simulated device
/// watches the same world). `--credit` caps the per-connection credit
/// window, `--read-timeout-secs` disconnects silent clients, and
/// `--duration-secs` exits after a fixed time (default: serve until
/// killed). Fleet tuning flags are shared with `gem fleet`
/// ([`fleet_config_from_args`]); `--metrics-addr` exposes the registry
/// — ingress counters included — over HTTP for the run's duration.
fn serve(args: &Args) -> Result<(), String> {
    use gem_service::{Fleet, IngressConfig, IngressServer};
    use std::time::Duration;

    let listen = args.require("listen")?;
    let cfg = fleet_config_from_args(args)?;
    let alert_after = args.get_parsed::<usize>("alert-after")?.unwrap_or(3);
    let mcfg = MonitorConfig { alert_after, ..MonitorConfig::default() };

    // Validate every tuning flag before the (slow) model loads, so a
    // typo'd invocation fails fast.
    let mut icfg = IngressConfig::default();
    if let Some(w) = args.get_parsed::<u16>("credit")? {
        if w == 0 {
            return Err("--credit must be at least 1".into());
        }
        icfg.credit_window = w;
    }
    if let Some(secs) = args.get_parsed::<f64>("read-timeout-secs")? {
        if !secs.is_finite() || secs <= 0.0 {
            return Err("--read-timeout-secs must be positive".into());
        }
        icfg.read_timeout = Duration::from_secs_f64(secs);
    }
    let duration = match args.get_parsed::<f64>("duration-secs")? {
        Some(secs) => {
            if !secs.is_finite() || secs <= 0.0 {
                return Err("--duration-secs must be positive".into());
            }
            Some(Duration::from_secs_f64(secs))
        }
        None => None,
    };

    let monitors: Vec<(u64, Monitor)> = if let Some(model) = args.get_parsed::<String>("model")? {
        let premises: usize = args.get_parsed("premises")?.unwrap_or(1);
        if premises == 0 {
            return Err("--premises must be at least 1".into());
        }
        // One read, N hydrations: every premises starts from the same
        // snapshot but owns its model (online updates diverge).
        let json = std::fs::read_to_string(&model).map_err(|e| format!("reading {model}: {e}"))?;
        (1..=premises as u64)
            .map(|id| {
                let gem = gem_core::GemSnapshot::from_json(&json)
                    .and_then(|s| s.restore())
                    .map_err(|e| format!("restoring {model}: {e}"))?;
                Ok((id, Monitor::new(gem, mcfg)))
            })
            .collect::<Result<_, String>>()?
    } else {
        let model_paths = args
            .values_list("models")
            .ok_or("serve needs --model FILE [--premises N] or --models F1,F2,..")?;
        model_paths
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let gem = Gem::load(p).map_err(|e| format!("loading {p}: {e}"))?;
                Ok((i as u64 + 1, Monitor::new(gem, mcfg)))
            })
            .collect::<Result<_, String>>()?
    };
    let n_premises = monitors.len();
    let mut fleet = Fleet::spawn(monitors, cfg).map_err(|e| e.to_string())?;

    let _metrics_server = match args.get_parsed::<String>("metrics-addr")? {
        Some(addr) => {
            let server =
                gem_obs::MetricsServer::bind_with_traces(&addr, fleet.registry(), fleet.trace_rings())
                    .map_err(|e| format!("binding metrics server on {addr}: {e}"))?;
            say!("serving metrics on http://{}/metrics", server.local_addr());
            Some(server)
        }
        None => None,
    };

    // The window the server will actually advertise in HELLO.
    let advertised = (icfg.credit_window as usize).min(fleet.admission_quota()).max(1);
    let ingress = IngressServer::bind(&listen, &mut fleet, icfg)
        .map_err(|e| format!("binding ingress on {listen}: {e}"))?;
    say!(
        "ingress listening on {} ({} premises, credit window {})",
        ingress.local_addr(),
        n_premises,
        advertised
    );

    match duration {
        Some(d) => std::thread::sleep(d),
        // No duration: serve until the process is killed.
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    drop(ingress);
    fleet.shutdown().map_err(|e| e.to_string())?;
    Ok(())
}

fn info(args: &Args) -> Result<(), String> {
    let path = args.require("model")?;
    let snapshot = gem_core::GemSnapshot::load(&path).map_err(|e| e.to_string())?;
    say!("model: {path}");
    say!("embedding dim: {}", snapshot.cfg.embedding_dim);
    say!(
        "graph: {} records, {} MACs, {} edges",
        snapshot.graph.n_records(),
        snapshot.graph.n_macs(),
        snapshot.graph.n_edges()
    );
    say!(
        "detector samples: {} (+{} online updates)",
        snapshot.detector.n_samples(),
        snapshot.detector.n_updates
    );
    say!(
        "training loss: {:?}",
        snapshot
            .train_report
            .epoch_losses
            .iter()
            .map(|l| (l * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::run;

    fn run_with(argv: &[&str]) -> Result<(), String> {
        run(argv.iter().map(|s| s.to_string()).collect())
    }

    /// A degenerate knob value is a usage error up front, not a
    /// silently different behavior (`--hot-cap 0` used to mean
    /// "unlimited") or a pointless run (`--devices 0`).
    #[test]
    fn degenerate_flag_values_are_usage_errors() {
        let err =
            run_with(&["serve", "--listen", "127.0.0.1:0", "--dir", "/tmp", "--hot-cap", "0"])
                .unwrap_err();
        assert!(err.contains("--hot-cap"), "{err}");
        let err = run_with(&["fleet", "--dir", "/tmp", "--hot-cap", "0"]).unwrap_err();
        assert!(err.contains("--hot-cap"), "{err}");
        let err = run_with(&["loadgen", "--connect", "127.0.0.1:1", "--devices", "0"]).unwrap_err();
        assert!(err.contains("--devices"), "{err}");
        let err = run_with(&["loadgen", "--connect", "127.0.0.1:1", "--scans-per-device", "0"])
            .unwrap_err();
        assert!(err.contains("--scans-per-device"), "{err}");
        let err = run_with(&["serve", "--listen", "127.0.0.1:0", "--shards", "0"]).unwrap_err();
        assert!(err.contains("--shards"), "{err}");
        let err = run_with(&["serve", "--listen", "127.0.0.1:0", "--credit", "0"]).unwrap_err();
        assert!(err.contains("--credit"), "{err}");
    }

    #[test]
    fn serve_requires_a_model_source() {
        let err = run_with(&["serve", "--listen", "127.0.0.1:0"]).unwrap_err();
        assert!(err.contains("--model"), "{err}");
    }
}
