//! `gem` — command-line interface for the GEM geofencing system.
//!
//! ```text
//! gem simulate --user 3 --out dataset.json        # synthesize a dataset
//! gem train    --dataset dataset.json --model model.json
//! gem eval     --dataset dataset.json --model model.json
//! gem stream   --dataset dataset.json --model model.json --alert-after 3
//! gem info     --model model.json
//! ```
//!
//! Datasets are JSON (`gem_signal::Dataset`); models are GEM snapshots
//! (`gem_core::persist::GemSnapshot`).

use std::process::ExitCode;

/// `println!` that ignores broken pipes (e.g. `gem info | head`), so the
/// CLI exits quietly instead of panicking when the reader goes away.
macro_rules! say {
    ($($t:tt)*) => {{
        use std::io::Write;
        let _ = writeln!(std::io::stdout(), $($t)*);
    }};
}

mod args;

use args::Args;
use gem_core::{Gem, GemConfig};
use gem_eval::Confusion;
use gem_rfsim::{Scenario, ScenarioConfig};
use gem_service::{Event, Monitor, MonitorConfig};
use gem_signal::Dataset;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}

fn run(argv: Vec<String>) -> Result<(), String> {
    let Some((command, rest)) = argv.split_first() else {
        return Err(usage());
    };
    let args = Args::parse(rest)?;
    match command.as_str() {
        "simulate" => simulate(&args),
        "train" => train(&args),
        "eval" => eval(&args),
        "stream" => stream(&args),
        "info" => info(&args),
        "help" | "--help" | "-h" => {
            say!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: gem <command> [options]\n\
     commands:\n\
     \x20 simulate --out FILE [--user 1..10 | --lab] [--train-secs S] [--test N] [--seed X]\n\
     \x20 train    --dataset FILE --model FILE [--dim D] [--epochs E] [--seed X]\n\
     \x20 eval     --dataset FILE --model FILE\n\
     \x20 stream   --dataset FILE --model FILE [--alert-after K] [--save-back]\n\
     \x20 info     --model FILE"
        .to_string()
}

fn load_dataset(args: &Args) -> Result<Dataset, String> {
    let path = args.require("dataset")?;
    let json = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("parsing {path}: {e}"))
}

fn simulate(args: &Args) -> Result<(), String> {
    let out = args.require("out")?;
    let mut cfg = if args.flag("lab") {
        ScenarioConfig::lab()
    } else {
        let user: u32 = args.get_parsed("user")?.unwrap_or(1);
        if !(1..=10).contains(&user) {
            return Err("--user must be 1..10".into());
        }
        ScenarioConfig::user(user)
    };
    if let Some(secs) = args.get_parsed::<f64>("train-secs")? {
        cfg.train_duration_s = secs;
    }
    if let Some(n) = args.get_parsed::<usize>("test")? {
        cfg.n_test_in = n;
        cfg.n_test_out = n;
    }
    if let Some(seed) = args.get_parsed::<u64>("seed")? {
        cfg.seed = seed;
    }
    let scenario = Scenario::build(cfg);
    let dataset = scenario.generate();
    let json = serde_json::to_string(&dataset).map_err(|e| e.to_string())?;
    std::fs::write(&out, json).map_err(|e| format!("writing {out}: {e}"))?;
    say!(
        "wrote {}: {} training scans, {} test scans, {:.0} m² premises",
        out,
        dataset.train.len(),
        dataset.test.len(),
        scenario.world.plan.area_m2()
    );
    Ok(())
}

fn train(args: &Args) -> Result<(), String> {
    let dataset = load_dataset(args)?;
    let model_path = args.require("model")?;
    let mut cfg = GemConfig::default();
    if let Some(d) = args.get_parsed::<usize>("dim")? {
        cfg.embedding_dim = d;
    }
    if let Some(e) = args.get_parsed::<usize>("epochs")? {
        cfg.epochs = e;
    }
    if let Some(seed) = args.get_parsed::<u64>("seed")? {
        cfg.seed = seed;
    }
    let start = std::time::Instant::now();
    let gem = Gem::fit(cfg, &dataset.train);
    gem.save(&model_path).map_err(|e| e.to_string())?;
    say!(
        "trained on {} scans in {:.1}s ({} graph nodes, {} edges); model → {}",
        dataset.train.len(),
        start.elapsed().as_secs_f64(),
        gem.graph().n_nodes(),
        gem.graph().n_edges(),
        model_path
    );
    Ok(())
}

fn eval(args: &Args) -> Result<(), String> {
    let dataset = load_dataset(args)?;
    let mut gem = Gem::load(args.require("model")?).map_err(|e| e.to_string())?;
    let mut confusion = Confusion::default();
    for t in &dataset.test {
        confusion.record(t.label, gem.infer(&t.record).label);
    }
    let i = confusion.in_metrics();
    let o = confusion.out_metrics();
    say!("scans: {}", confusion.total());
    say!("accuracy: {:.3}", confusion.accuracy());
    say!("in-premises  P {:.3}  R {:.3}  F {:.3}", i.precision, i.recall, i.f_score);
    say!("outside      P {:.3}  R {:.3}  F {:.3}", o.precision, o.recall, o.f_score);
    say!("online updates: {}", gem.detector().n_updates);
    Ok(())
}

fn stream(args: &Args) -> Result<(), String> {
    let dataset = load_dataset(args)?;
    let model_path = args.require("model")?;
    let gem = Gem::load(&model_path).map_err(|e| e.to_string())?;
    let alert_after = args.get_parsed::<usize>("alert-after")?.unwrap_or(3);
    let mut monitor = Monitor::new(gem, MonitorConfig { alert_after, ..MonitorConfig::default() });
    for t in &dataset.test {
        for event in monitor.process(&t.record) {
            match event {
                Event::AlertRaised { timestamp_s, consecutive_out } => {
                    say!("t={timestamp_s:8.1}s  ALERT raised ({consecutive_out} consecutive outside scans)");
                }
                Event::AlertCleared { timestamp_s } => {
                    say!("t={timestamp_s:8.1}s  alert cleared");
                }
                Event::Decision { .. } => {}
            }
        }
    }
    let stats = monitor.stats();
    say!(
        "processed {} scans: {} in / {} out, {} alerts, {} model updates",
        stats.scans,
        stats.in_decisions,
        stats.out_decisions,
        stats.alerts,
        stats.model_updates
    );
    if args.flag("save-back") {
        monitor.gem().save(&model_path).map_err(|e| e.to_string())?;
        say!("updated model saved back to {model_path}");
    }
    Ok(())
}

fn info(args: &Args) -> Result<(), String> {
    let path = args.require("model")?;
    let snapshot = gem_core::GemSnapshot::load(&path).map_err(|e| e.to_string())?;
    say!("model: {path}");
    say!("embedding dim: {}", snapshot.cfg.embedding_dim);
    say!(
        "graph: {} records, {} MACs, {} edges",
        snapshot.graph.n_records(),
        snapshot.graph.n_macs(),
        snapshot.graph.n_edges()
    );
    say!(
        "detector samples: {} (+{} online updates)",
        snapshot.detector.n_samples(),
        snapshot.detector.n_updates
    );
    say!(
        "training loss: {:?}",
        snapshot
            .train_report
            .epoch_losses
            .iter()
            .map(|l| (l * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    Ok(())
}
