//! Minimal `--key value` / `--flag` argument parsing (the allowed crate
//! set has no CLI parser, and the surface here is small).

use std::collections::HashMap;
use std::str::FromStr;

/// Parsed command-line options.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `--key value` pairs and bare `--flag`s. A `--key` followed
    /// by another `--...` token is treated as a flag.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            let Some(key) = token.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {token:?}"));
            };
            if key.is_empty() {
                return Err("empty option name".to_string());
            }
            match argv.get(i + 1) {
                Some(value) if !value.starts_with("--") => {
                    if args.values.insert(key.to_string(), value.clone()).is_some() {
                        return Err(format!("duplicate option --{key}"));
                    }
                    i += 2;
                }
                _ => {
                    args.flags.push(key.to_string());
                    i += 1;
                }
            }
        }
        Ok(args)
    }

    /// The value of a required option.
    pub fn require(&self, key: &str) -> Result<String, String> {
        self.values.get(key).cloned().ok_or_else(|| format!("missing required option --{key}"))
    }

    /// An optional option parsed into `T`.
    pub fn get_parsed<T: FromStr>(&self, key: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.values.get(key) {
            None => Ok(None),
            Some(raw) => {
                raw.parse::<T>().map(Some).map_err(|e| format!("invalid value for --{key}: {e}"))
            }
        }
    }

    /// A comma-separated list option (`--models a.json,b.json`), split
    /// into its items. Empty items are dropped.
    pub fn values_list(&self, key: &str) -> Option<Vec<String>> {
        self.values
            .get(key)
            .map(|raw| raw.split(',').filter(|s| !s.is_empty()).map(str::to_string).collect())
    }

    /// Whether a bare flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_flags() {
        let a = Args::parse(&argv(&["--user", "3", "--lab", "--out", "x.json"])).unwrap();
        assert_eq!(a.require("user").unwrap(), "3");
        assert_eq!(a.require("out").unwrap(), "x.json");
        assert!(a.flag("lab"));
        assert!(!a.flag("other"));
    }

    #[test]
    fn parses_typed_values() {
        let a = Args::parse(&argv(&["--seed", "42", "--train-secs", "120.5"])).unwrap();
        assert_eq!(a.get_parsed::<u64>("seed").unwrap(), Some(42));
        assert_eq!(a.get_parsed::<f64>("train-secs").unwrap(), Some(120.5));
        assert_eq!(a.get_parsed::<u64>("absent").unwrap(), None);
        assert!(a.get_parsed::<u64>("train-secs").is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Args::parse(&argv(&["positional"])).is_err());
        assert!(Args::parse(&argv(&["--dup", "1", "--dup", "2"])).is_err());
        assert!(Args::parse(&argv(&["--"])).is_err());
    }

    #[test]
    fn missing_required_is_reported() {
        let a = Args::parse(&argv(&[])).unwrap();
        let err = a.require("model").unwrap_err();
        assert!(err.contains("--model"));
    }

    #[test]
    fn splits_comma_lists() {
        let a = Args::parse(&argv(&["--models", "a.json,b.json,"])).unwrap();
        assert_eq!(a.values_list("models").unwrap(), vec!["a.json", "b.json"]);
        assert_eq!(a.values_list("absent"), None);
    }

    #[test]
    fn trailing_key_is_flag() {
        let a = Args::parse(&argv(&["--save-back"])).unwrap();
        assert!(a.flag("save-back"));
    }
}
