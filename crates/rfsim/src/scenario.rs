//! Complete simulated worlds and dataset generation.
//!
//! A [`Scenario`] bundles a floorplan, an ambient AP population, the
//! propagation models and a data-collection protocol, and produces
//! [`Dataset`]s equivalent to what the paper's Android app collected:
//! a perimeter-walk training set (in-premises only) followed by a labeled
//! test stream of inside roams and outside walks.

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

use gem_signal::rng::{child_rng, normal};
use gem_signal::{Dataset, Label, LabeledRecord, MacAddr, RecordSet, SignalRecord};

use crate::device::DeviceModel;
use crate::floorplan::{Floorplan, Material, Position};
use crate::geometry::{Point, Rect, Segment};
use crate::propagation::{BandKind, NoiseField, PathLossModel};
use crate::trajectory::{perimeter_walk, waypoint_roam};

/// One simulated access point (may expose one MAC per band).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AccessPoint {
    /// Stable AP identity (drives MAC derivation and fading streams).
    pub id: u32,
    /// Mounting position.
    pub pos: Position,
    /// Transmit power, dBm (typical home APs: 13–19 dBm).
    pub tx_power_dbm: f64,
    /// Bands this AP transmits on.
    pub bands: Vec<BandKind>,
    /// Transient devices (phone hotspots, portable APs) are only active
    /// during busy time profiles.
    pub transient: bool,
}

impl AccessPoint {
    /// The MAC address of the transceiver on `bands[band_idx]`.
    pub fn mac(&self, band_idx: usize) -> MacAddr {
        MacAddr::simulated(self.id, band_idx as u8)
    }
}

/// A time-of-day radio profile (Table IV / Fig. 15b): crowds attenuate
/// signals and add variance; transient devices appear and disappear.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct TimeProfile {
    /// Human-readable tag ("11AM", "9PM", …).
    pub name: &'static str,
    /// Mean extra crowd/body attenuation, dB.
    pub extra_loss_mean_db: f64,
    /// Standard deviation of the extra attenuation, dB.
    pub extra_loss_sd_db: f64,
    /// Probability that a transient AP is active in a given scan.
    pub transient_active: f64,
}

impl TimeProfile {
    /// Quiet baseline: no crowds, no transient devices.
    pub const QUIET: TimeProfile = TimeProfile {
        name: "quiet",
        extra_loss_mean_db: 0.0,
        extra_loss_sd_db: 0.0,
        transient_active: 0.0,
    };
    /// Late morning: moderate crowd, some hotspots (paper's 11 AM).
    pub const MORNING: TimeProfile = TimeProfile {
        name: "11AM",
        extra_loss_mean_db: 0.5,
        extra_loss_sd_db: 2.0,
        transient_active: 0.6,
    };
    /// Afternoon rush: heavy crowd, most hotspots on (paper's 4 PM).
    pub const AFTERNOON: TimeProfile = TimeProfile {
        name: "4PM",
        extra_loss_mean_db: 15.0,
        extra_loss_sd_db: 8.0,
        transient_active: 0.95,
    };
    /// Evening: quiet building, few devices (paper's 9 PM).
    pub const EVENING: TimeProfile = TimeProfile {
        name: "9PM",
        extra_loss_mean_db: 9.0,
        extra_loss_sd_db: 5.0,
        transient_active: 0.05,
    };
}

/// Housing archetypes used by the paper's user study (Table II).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Layout {
    /// Single-room dorm, ≈10 m².
    Dorm,
    /// Small apartment, ≈50 m².
    SmallApartment,
    /// Large multi-room apartment, ≈100 m².
    LargeApartment,
    /// Detached two-story house, ≈200 m².
    TwoStoryHouse,
    /// Open-plan office/lab, ≈150 m² (the three-day experiments).
    Lab,
}

/// Full description of one data-collection scenario.
#[derive(Clone, Debug, Serialize)]
pub struct ScenarioConfig {
    /// Scenario tag (e.g. "user-3").
    pub name: String,
    /// Base seed; all randomness derives from it.
    pub seed: u64,
    /// Housing archetype.
    pub layout: Layout,
    /// APs installed inside the premises.
    pub n_home_aps: usize,
    /// Ambient APs in neighboring units / buildings.
    pub n_neighbor_aps: usize,
    /// Transient devices (active only in busy profiles).
    pub n_transient_aps: usize,
    /// Probability that an AP is dual-band.
    pub dual_band_prob: f64,
    /// Bands the collecting device listens on (Fig. 15d).
    pub enabled_bands: Vec<BandKind>,
    /// Walking speed for all trajectories, m/s (Fig. 15c).
    pub speed_mps: f64,
    /// Scan period, seconds.
    pub sample_period_s: f64,
    /// Duration of the initial perimeter walk, seconds.
    pub train_duration_s: f64,
    /// In-premises test scans.
    pub n_test_in: usize,
    /// Outside test scans.
    pub n_test_out: usize,
    /// Radio environment profile during collection.
    pub profile: TimeProfile,
    /// Fraction of non-home MACs that churn (disappear and get replaced
    /// by a new MAC) during the test phase.
    pub churn_fraction: f64,
}

impl ScenarioConfig {
    /// The ten user presets of Table II: `(layout, home, neighbor)` tuned
    /// so sensed MAC counts land near the paper's reported values.
    pub fn user(user_id: u32) -> ScenarioConfig {
        assert!((1..=10).contains(&user_id), "users are numbered 1–10");
        let (layout, home, neighbor, dual) = match user_id {
            1 => (Layout::Dorm, 1, 13, 0.55),
            2 => (Layout::Dorm, 1, 17, 0.55),
            3 => (Layout::SmallApartment, 2, 21, 0.55),
            4 => (Layout::SmallApartment, 1, 10, 0.50),
            5 => (Layout::SmallApartment, 1, 13, 0.55),
            6 => (Layout::LargeApartment, 3, 42, 0.55),
            7 => (Layout::LargeApartment, 2, 29, 0.55),
            8 => (Layout::LargeApartment, 3, 47, 0.60),
            9 => (Layout::LargeApartment, 2, 37, 0.60),
            10 => (Layout::TwoStoryHouse, 2, 6, 0.50),
            _ => unreachable!(),
        };
        ScenarioConfig {
            name: format!("user-{user_id}"),
            seed: 0xC0FFEE + user_id as u64,
            layout,
            n_home_aps: home,
            n_neighbor_aps: neighbor,
            n_transient_aps: 0,
            dual_band_prob: dual,
            enabled_bands: vec![BandKind::Ghz24, BandKind::Ghz5],
            speed_mps: 0.8,
            sample_period_s: 1.5,
            train_duration_s: 420.0,
            n_test_in: 250,
            n_test_out: 250,
            profile: TimeProfile::QUIET,
            churn_fraction: 0.3,
        }
    }

    /// The lab used for the environmental-factor experiments (Section VI-D).
    pub fn lab() -> ScenarioConfig {
        ScenarioConfig {
            name: "lab".to_string(),
            seed: 0x1AB,
            layout: Layout::Lab,
            n_home_aps: 4,
            n_neighbor_aps: 38,
            n_transient_aps: 30,
            dual_band_prob: 0.6,
            enabled_bands: vec![BandKind::Ghz24, BandKind::Ghz5],
            speed_mps: 0.8,
            sample_period_s: 1.5,
            train_duration_s: 420.0,
            n_test_in: 250,
            n_test_out: 250,
            profile: TimeProfile::MORNING,
            churn_fraction: 0.3,
        }
    }
}

/// The instantiated world: geometry + AP population + radio models.
#[derive(Clone, Debug)]
pub struct World {
    /// Premises floorplan.
    pub plan: Floorplan,
    /// Regions the user roams while inside (slightly inset rooms).
    pub inside_regions: Vec<(Rect, i32)>,
    /// Regions for outside walks (corridor, neighbor unit, far field).
    pub outside_regions: Vec<(Rect, i32)>,
    /// Ambient AP population.
    pub aps: Vec<AccessPoint>,
    /// Shadow-fading field.
    pub noise: NoiseField,
    /// The sensing device.
    pub device: DeviceModel,
    /// Path-loss model per band (2.4 GHz, 5 GHz).
    pub models: [PathLossModel; 2],
    /// Bands the device listens on.
    pub enabled_bands: Vec<BandKind>,
}

fn hash01(seed: u64, a: u64, b: u64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(a.wrapping_mul(0xD6E8_FEB8_6659_FD93))
        .wrapping_add(b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 12) as f64 / (1u64 << 52) as f64
}

fn model_index(band: BandKind) -> usize {
    match band {
        BandKind::Ghz24 => 0,
        BandKind::Ghz5 => 1,
    }
}

impl World {
    /// True when a position is inside the geofenced premises.
    pub fn is_inside(&self, pos: Position) -> bool {
        self.plan.contains(pos)
    }

    /// Whether a transient AP exists during a session under a profile
    /// (deterministic per world seed, AP and profile).
    fn transient_exists(&self, ap_id: u32, profile: &TimeProfile) -> bool {
        let tag =
            profile.name.bytes().fold(0u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64));
        hash01(self.noise.seed, ap_id as u64, tag) < profile.transient_active
    }

    /// Simulates one scan at `pos` and time `t` under `profile`.
    pub fn sense_at(
        &self,
        pos: Position,
        t: f64,
        profile: &TimeProfile,
        rng: &mut impl RngExt,
    ) -> SignalRecord {
        let mut record = SignalRecord::new(t);
        for ap in &self.aps {
            if ap.transient {
                // Transient devices exist (or not) for the whole session
                // under a given profile, with a little per-scan flicker.
                if !self.transient_exists(ap.id, profile) || rng.random::<f64>() >= 0.75 {
                    continue;
                }
            }
            for (band_idx, &band) in ap.bands.iter().enumerate() {
                if !self.enabled_bands.contains(&band) {
                    continue;
                }
                let model = &self.models[model_index(band)];
                let d = pos.distance(ap.pos, self.plan.floor_height_m);
                let walls = self.plan.attenuation_db(ap.pos, pos, band.wall_factor());
                let stream = (ap.id as u64) * 4 + band_idx as u64;
                let shadow = self.noise.value(stream, pos) * model.shadow_sd_db;
                let temporal = normal(rng, 0.0, model.noise_sd_db);
                let crowd = if profile.extra_loss_mean_db > 0.0 || profile.extra_loss_sd_db > 0.0 {
                    normal(rng, profile.extra_loss_mean_db, profile.extra_loss_sd_db).max(0.0)
                } else {
                    0.0
                };
                let rss =
                    ap.tx_power_dbm - model.path_loss_db(d) - walls - shadow - temporal - crowd;
                if let Some(reported) = self.device.sense(rng, rss) {
                    record.push(ap.mac(band_idx), reported);
                }
            }
        }
        record
    }
}

/// A buildable, generatable scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The configuration it was built from.
    pub cfg: ScenarioConfig,
    /// The instantiated world.
    pub world: World,
}

impl Scenario {
    /// Instantiates the world (geometry, AP placement) from a config.
    pub fn build(cfg: ScenarioConfig) -> Self {
        let mut rng = child_rng(cfg.seed, 0xB01D);
        let (plan, inside, outside) = build_geometry(cfg.layout);
        let aps = place_aps(&cfg, &plan, &outside);
        let _ = &mut rng;
        let world = World {
            plan,
            inside_regions: inside,
            outside_regions: outside,
            aps,
            noise: NoiseField::new(cfg.seed ^ 0x5EED, 2.5),
            device: DeviceModel::default(),
            models: [PathLossModel::indoor(BandKind::Ghz24), PathLossModel::indoor(BandKind::Ghz5)],
            enabled_bands: cfg.enabled_bands.clone(),
        };
        Scenario { cfg, world }
    }

    /// The perimeter-walk training positions (per floor, laps derived from
    /// the configured duration and speed).
    pub fn training_positions(&self) -> Vec<Position> {
        let floors: Vec<i32> = {
            let mut f: Vec<i32> = self.world.plan.rooms.iter().map(|r| r.floor).collect();
            f.sort_unstable();
            f.dedup();
            f
        };
        let per_floor_duration = self.cfg.train_duration_s / floors.len() as f64;
        let mut out = Vec::new();
        for floor in floors {
            let mut bb: Option<Rect> = None;
            for room in self.world.plan.rooms_on(floor) {
                bb = Some(match bb {
                    None => room.rect,
                    Some(acc) => Rect::new(
                        acc.min.x.min(room.rect.min.x),
                        acc.min.y.min(room.rect.min.y),
                        acc.max.x.max(room.rect.max.x),
                        acc.max.y.max(room.rect.max.y),
                    ),
                });
            }
            let Some(bb) = bb else { continue };
            let inner = bb.shrink(0.4);
            let perimeter = 2.0 * (inner.width() + inner.height());
            let laps = (per_floor_duration * self.cfg.speed_mps / perimeter).max(1.0);
            out.extend(perimeter_walk(
                bb,
                floor,
                0.4,
                self.cfg.speed_mps,
                laps,
                self.cfg.sample_period_s,
            ));
        }
        out
    }

    /// Senses a record at every position under a profile, starting at
    /// `start_t` and advancing by the scan period.
    pub fn sense_positions(
        &self,
        positions: &[Position],
        profile: &TimeProfile,
        start_t: f64,
        rng: &mut impl RngExt,
    ) -> RecordSet {
        positions
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                self.world.sense_at(p, start_t + i as f64 * self.cfg.sample_period_s, profile, rng)
            })
            .collect()
    }

    /// Generates the complete dataset: perimeter-walk training set plus a
    /// randomly interleaved labeled test stream.
    pub fn generate(&self) -> Dataset {
        self.generate_with(self.cfg.profile, self.cfg.profile)
    }

    /// Like [`Scenario::generate`], but with distinct radio profiles for
    /// the training and testing phases (Fig. 15b).
    pub fn generate_with(&self, train_profile: TimeProfile, test_profile: TimeProfile) -> Dataset {
        let mut rng = child_rng(self.cfg.seed, 0xDA7A);
        let train_pos = self.training_positions();
        let train = self.sense_positions(&train_pos, &train_profile, 0.0, &mut rng);
        let t0 = train_pos.len() as f64 * self.cfg.sample_period_s;

        // Roam slightly inside the rooms for positives.
        let inside: Vec<(Rect, i32)> =
            self.world.inside_regions.iter().map(|&(r, f)| (r.shrink(0.2), f)).collect();
        let in_pos = waypoint_roam(
            &inside,
            self.cfg.speed_mps,
            self.cfg.sample_period_s,
            self.cfg.n_test_in,
            &mut rng,
        );
        let out_pos = waypoint_roam(
            &self.world.outside_regions,
            self.cfg.speed_mps,
            self.cfg.sample_period_s,
            self.cfg.n_test_out,
            &mut rng,
        );
        let in_recs = self.sense_positions(&in_pos, &test_profile, t0, &mut rng);
        let out_recs = self.sense_positions(&out_pos, &test_profile, t0, &mut rng);

        // Random interleave preserving within-class order, like a user who
        // alternates between staying home and going out.
        let mut test: Vec<LabeledRecord> = Vec::with_capacity(in_recs.len() + out_recs.len());
        let mut in_iter = in_recs.into_records().into_iter().peekable();
        let mut out_iter = out_recs.into_records().into_iter().peekable();
        while in_iter.peek().is_some() || out_iter.peek().is_some() {
            let take_in = match (in_iter.peek(), out_iter.peek()) {
                (Some(_), Some(_)) => rng.random_bool(0.5),
                (Some(_), None) => true,
                _ => false,
            };
            if take_in {
                test.push(LabeledRecord {
                    record: in_iter.next().expect("peeked"),
                    label: Label::In,
                });
            } else {
                test.push(LabeledRecord {
                    record: out_iter.next().expect("peeked"),
                    label: Label::Out,
                });
            }
        }
        // Live radio environments churn: some ambient (non-home) MACs
        // disappear mid-stream and new ones take their place.
        if self.cfg.churn_fraction > 0.0 {
            let home: std::collections::HashSet<MacAddr> = self
                .world
                .aps
                .iter()
                .filter(|ap| self.world.plan.contains(ap.pos))
                .flat_map(|ap| (0..ap.bands.len()).map(|b| ap.mac(b)))
                .collect();
            crate::dynamics::churn_macs(&mut test, &home, self.cfg.churn_fraction, &mut rng);
        }
        Dataset::new(train, test)
    }

    /// A fresh RNG stream derived from this scenario's seed.
    pub fn rng(&self, stream: u64) -> StdRng {
        child_rng(self.cfg.seed, stream)
    }
}

/// Region list: rectangles with their floor index.
type Regions = Vec<(Rect, i32)>;

/// Builds geometry for a layout: `(plan, inside regions, outside regions)`.
fn build_geometry(layout: Layout) -> (Floorplan, Regions, Regions) {
    let mut plan = Floorplan::new();
    let mut inside = Vec::new();
    let mut outside = Vec::new();
    match layout {
        Layout::Dorm => {
            let room = Rect::new(0.0, 0.0, 3.4, 3.0);
            plan.add_room(room, 0, Material::Concrete);
            inside.push((room, 0));
            // Corridor along the south wall; neighbor dorms east and west.
            outside.push((Rect::new(-4.0, -2.2, 7.4, -0.1), 0));
            outside.push((Rect::new(3.5, 0.0, 6.9, 3.0), 0));
            outside.push((Rect::new(-3.5, 0.0, -0.1, 3.0), 0));
            // Far field: elsewhere in the building.
            outside.push((Rect::new(12.0, -6.0, 20.0, 2.0), 0));
        }
        Layout::SmallApartment => {
            let unit = Rect::new(0.0, 0.0, 8.2, 6.1);
            plan.add_room(unit, 0, Material::Concrete);
            // One interior partition (bedroom | living room).
            plan.add_wall(
                Segment::new(Point::new(4.1, 0.0), Point::new(4.1, 4.5)),
                0,
                Material::Drywall,
            );
            inside.push((unit, 0));
            outside.push((Rect::new(-3.0, 6.2, 11.2, 8.2), 0)); // corridor north
            outside.push((Rect::new(8.3, 0.0, 16.5, 6.1), 0)); // neighbor east
            outside.push((Rect::new(-8.3, 0.0, -0.1, 6.1), 0)); // neighbor west
            outside.push((Rect::new(20.0, -8.0, 30.0, 2.0), 0)); // far
        }
        Layout::LargeApartment => {
            let unit = Rect::new(0.0, 0.0, 12.0, 8.3);
            plan.add_room(unit, 0, Material::Concrete);
            plan.add_wall(
                Segment::new(Point::new(4.0, 0.0), Point::new(4.0, 6.0)),
                0,
                Material::Drywall,
            );
            plan.add_wall(
                Segment::new(Point::new(8.0, 2.3), Point::new(8.0, 8.3)),
                0,
                Material::Drywall,
            );
            plan.add_wall(
                Segment::new(Point::new(4.0, 4.2), Point::new(12.0, 4.2)),
                0,
                Material::Drywall,
            );
            inside.push((unit, 0));
            outside.push((Rect::new(-3.0, 8.4, 15.0, 10.4), 0)); // corridor
            outside.push((Rect::new(12.1, 0.0, 24.1, 8.3), 0)); // neighbor east
            outside.push((Rect::new(-12.1, 0.0, -0.1, 8.3), 0)); // neighbor west
            outside.push((Rect::new(28.0, -10.0, 38.0, 0.0), 0)); // far
        }
        Layout::TwoStoryHouse => {
            let footprint = Rect::new(0.0, 0.0, 10.0, 10.0);
            plan.add_room(footprint, 0, Material::Brick);
            plan.add_room(footprint, 1, Material::Brick);
            plan.add_wall(
                Segment::new(Point::new(5.0, 0.0), Point::new(5.0, 7.0)),
                0,
                Material::Drywall,
            );
            plan.add_wall(
                Segment::new(Point::new(0.0, 5.0), Point::new(7.0, 5.0)),
                1,
                Material::Drywall,
            );
            inside.push((footprint, 0));
            inside.push((footprint, 1));
            // Detached: garden ring and the street.
            outside.push((Rect::new(-4.0, -4.0, 14.0, -0.3), 0)); // front yard
            outside.push((Rect::new(-4.0, 10.3, 14.0, 14.0), 0)); // back yard
            outside.push((Rect::new(-4.0, -0.3, -0.3, 10.3), 0)); // side
            outside.push((Rect::new(18.0, -6.0, 30.0, 6.0), 0)); // street / neighbor lot
        }
        Layout::Lab => {
            let lab = Rect::new(0.0, 0.0, 15.0, 10.0);
            plan.add_room(lab, 0, Material::Concrete);
            plan.add_wall(
                Segment::new(Point::new(9.0, 3.0), Point::new(9.0, 10.0)),
                0,
                Material::Glass,
            );
            inside.push((lab, 0));
            outside.push((Rect::new(-5.0, 10.2, 20.0, 12.4), 0)); // corridor
            outside.push((Rect::new(15.2, 0.0, 25.0, 10.0), 0)); // adjacent lab
            outside.push((Rect::new(-14.0, 0.0, -0.2, 10.0), 0)); // offices
            outside.push((Rect::new(30.0, -12.0, 42.0, 0.0), 0)); // far wing
        }
    }
    (plan, inside, outside)
}

/// Places home, neighbor and transient APs.
fn place_aps(cfg: &ScenarioConfig, plan: &Floorplan, outside: &[(Rect, i32)]) -> Vec<AccessPoint> {
    let mut aps = Vec::new();
    let mut next_id = 0u32;
    let mut push_ap =
        |aps: &mut Vec<AccessPoint>, pos: Position, transient: bool, rng: &mut StdRng| {
            let dual = rng.random::<f64>() < cfg.dual_band_prob;
            let bands = if dual {
                vec![BandKind::Ghz24, BandKind::Ghz5]
            } else if rng.random::<f64>() < 0.25 {
                vec![BandKind::Ghz5]
            } else {
                vec![BandKind::Ghz24]
            };
            // Phone hotspots and portable devices transmit well below fixed
            // infrastructure APs.
            let base_power = if transient { 8.0 } else { 16.0 };
            aps.push(AccessPoint {
                id: next_id,
                pos,
                tx_power_dbm: base_power + normal(rng, 0.0, 1.5),
                bands,
                transient,
            });
            next_id += 1;
        };

    // Home APs: uniform inside rooms.
    let rooms: Vec<_> = plan.rooms.clone();
    let mut rng_local = child_rng(cfg.seed, 0xAAAA);
    for _ in 0..cfg.n_home_aps {
        let room = &rooms[rng_local.random_range(0..rooms.len())];
        let r = room.rect.shrink(0.3);
        let pos = Position::new(
            r.min.x + rng_local.random::<f64>() * r.width(),
            r.min.y + rng_local.random::<f64>() * r.height(),
            room.floor,
        );
        push_ap(&mut aps, pos, false, &mut rng_local);
    }
    // Neighbor APs: in outside regions and on adjacent floors.
    for _ in 0..cfg.n_neighbor_aps {
        let (rect, floor) = outside[rng_local.random_range(0..outside.len())];
        let df: i32 = match cfg.layout {
            // Apartment buildings have neighbors above and below.
            Layout::Dorm | Layout::SmallApartment | Layout::LargeApartment | Layout::Lab => {
                rng_local.random_range(-1..=1)
            }
            Layout::TwoStoryHouse => 0,
        };
        let pos = Position::new(
            rect.min.x + rng_local.random::<f64>() * rect.width(),
            rect.min.y + rng_local.random::<f64>() * rect.height(),
            floor + df,
        );
        push_ap(&mut aps, pos, false, &mut rng_local);
    }
    // Transient devices: scattered through inside and nearby outside.
    for i in 0..cfg.n_transient_aps {
        let pos = if i % 3 == 0 && !rooms.is_empty() {
            let room = &rooms[rng_local.random_range(0..rooms.len())];
            let r = room.rect;
            Position::new(
                r.min.x + rng_local.random::<f64>() * r.width(),
                r.min.y + rng_local.random::<f64>() * r.height(),
                room.floor,
            )
        } else {
            let (rect, floor) = outside[rng_local.random_range(0..outside.len())];
            Position::new(
                rect.min.x + rng_local.random::<f64>() * rect.width(),
                rect.min.y + rng_local.random::<f64>() * rect.height(),
                floor,
            )
        };
        push_ap(&mut aps, pos, true, &mut rng_local);
    }
    aps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_and_generate() {
        let sc = Scenario::build(ScenarioConfig::user(1));
        let ds = sc.generate();
        assert!(ds.train.len() > 100, "train {}", ds.train.len());
        assert_eq!(ds.test.len(), 500);
        assert_eq!(ds.count(Label::In), 250);
        assert_eq!(ds.count(Label::Out), 250);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Scenario::build(ScenarioConfig::user(2)).generate();
        let b = Scenario::build(ScenarioConfig::user(2)).generate();
        assert_eq!(a.train, b.train);
        assert_eq!(a.test.len(), b.test.len());
        assert_eq!(a.test[17].record, b.test[17].record);
    }

    #[test]
    fn training_positions_are_inside() {
        for uid in [1, 4, 10] {
            let sc = Scenario::build(ScenarioConfig::user(uid));
            for p in sc.training_positions() {
                assert!(sc.world.is_inside(p), "user {uid}: {p:?} not inside");
            }
        }
    }

    #[test]
    fn records_are_variable_length_and_nonempty_inside() {
        let sc = Scenario::build(ScenarioConfig::user(3));
        let ds = sc.generate();
        let lens: Vec<usize> = ds.train.iter().map(|r| r.len()).collect();
        assert!(lens.iter().all(|&l| l > 0), "inside scans hear something");
        let min = lens.iter().min().unwrap();
        let max = lens.iter().max().unwrap();
        assert!(min < max, "scan lengths must vary (min={min}, max={max})");
    }

    #[test]
    fn mac_counts_are_in_table2_ballpark() {
        // (user, expected #MACs) from Table II, tolerance ±40%.
        for (uid, expect) in [(1u32, 20usize), (6, 65), (10, 12)] {
            let sc = Scenario::build(ScenarioConfig::user(uid));
            let ds = sc.generate();
            let mut macs = ds.train.mac_universe();
            for t in &ds.test {
                macs.extend(t.record.macs());
            }
            macs.sort_unstable();
            macs.dedup();
            let n = macs.len();
            let lo = expect * 6 / 10;
            let hi = expect * 15 / 10;
            assert!((lo..=hi).contains(&n), "user {uid}: {n} MACs, expected ≈{expect}");
        }
    }

    #[test]
    fn inside_scans_hear_home_aps_stronger() {
        let sc = Scenario::build(ScenarioConfig::user(6));
        let ds = sc.generate();
        let home_macs: Vec<MacAddr> = sc
            .world
            .aps
            .iter()
            .filter(|ap| sc.world.plan.contains(ap.pos))
            .flat_map(|ap| (0..ap.bands.len()).map(|b| ap.mac(b)))
            .collect();
        let mean_rssi = |recs: &[&SignalRecord]| -> f64 {
            let mut s = 0.0;
            let mut n = 0usize;
            for r in recs {
                for reading in &r.readings {
                    if home_macs.contains(&reading.mac) {
                        s += reading.rssi as f64;
                        n += 1;
                    }
                }
            }
            s / n.max(1) as f64
        };
        let in_recs: Vec<&SignalRecord> =
            ds.test.iter().filter(|t| t.label == Label::In).map(|t| &t.record).collect();
        let out_recs: Vec<&SignalRecord> =
            ds.test.iter().filter(|t| t.label == Label::Out).map(|t| &t.record).collect();
        let gap = mean_rssi(&in_recs) - mean_rssi(&out_recs);
        assert!(gap > 8.0, "home APs must be markedly stronger inside (gap {gap:.1} dB)");
    }

    #[test]
    fn busy_profile_attenuates_and_adds_transients() {
        let sc = Scenario::build(ScenarioConfig::lab());
        let pos = vec![Position::new(7.0, 5.0, 0); 60];
        let mut rng = sc.rng(1);
        let quiet = sc.sense_positions(&pos, &TimeProfile::QUIET, 0.0, &mut rng);
        let mut rng = sc.rng(1);
        let busy = sc.sense_positions(&pos, &TimeProfile::AFTERNOON, 0.0, &mut rng);
        assert!(
            busy.rss_stats().n_macs > quiet.rss_stats().n_macs,
            "transients add MACs ({} vs {})",
            busy.rss_stats().n_macs,
            quiet.rss_stats().n_macs
        );
        // Crowd attenuation must show on the persistent (non-transient)
        // APs; transient hotspots would otherwise confound the mean.
        let persistent: std::collections::HashSet<MacAddr> = sc
            .world
            .aps
            .iter()
            .filter(|ap| !ap.transient)
            .flat_map(|ap| (0..ap.bands.len()).map(|b| ap.mac(b)))
            .collect();
        let mean_of = |rs: &RecordSet| {
            let mut s = 0.0;
            let mut n = 0usize;
            for r in rs.iter() {
                for reading in &r.readings {
                    if persistent.contains(&reading.mac) {
                        s += reading.rssi as f64;
                        n += 1;
                    }
                }
            }
            s / n.max(1) as f64
        };
        let (q, b) = (mean_of(&quiet), mean_of(&busy));
        assert!(b < q, "crowds attenuate persistent APs ({b:.1} vs {q:.1})");
    }

    #[test]
    fn band_filter_reduces_macs() {
        let mut cfg = ScenarioConfig::user(6);
        cfg.enabled_bands = vec![BandKind::Ghz24];
        let only24 = Scenario::build(cfg).generate();
        let both = Scenario::build(ScenarioConfig::user(6)).generate();
        assert!(only24.train.mac_universe().len() < both.train.mac_universe().len());
    }

    #[test]
    fn two_story_house_uses_both_floors() {
        let sc = Scenario::build(ScenarioConfig::user(10));
        let pos = sc.training_positions();
        assert!(pos.iter().any(|p| p.floor == 0));
        assert!(pos.iter().any(|p| p.floor == 1));
    }
}
