//! Environment perturbations used by the micro-benchmarks: MAC pruning
//! (Figs. 10–11) and the two-state ON-OFF Markov model over APs/MACs
//! (Figs. 12–13).

use std::collections::{HashMap, HashSet};

use rand::RngExt;

use gem_signal::{Dataset, LabeledRecord, MacAddr, RecordSet};

/// Removes a uniformly random `fraction` of the MAC universe from a record
/// set (all readings of the selected MACs disappear). Returns the pruned
/// MACs. This is the protocol of the paper's "adaptation to changes in
/// APs" experiment.
pub fn prune_macs(records: &mut RecordSet, fraction: f64, rng: &mut impl RngExt) -> Vec<MacAddr> {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let mut universe = records.mac_universe();
    // Fisher–Yates prefix shuffle to pick the victims.
    let n_remove = (universe.len() as f64 * fraction).round() as usize;
    for i in 0..n_remove.min(universe.len().saturating_sub(1)) {
        let j = rng.random_range(i..universe.len());
        universe.swap(i, j);
    }
    let removed: Vec<MacAddr> = universe[..n_remove].to_vec();
    let removed_set: std::collections::HashSet<MacAddr> = removed.iter().copied().collect();
    for rec in records.records_mut() {
        rec.retain_macs(|m| !removed_set.contains(&m));
    }
    removed
}

/// Simulates the MAC churn of a live radio environment over a test
/// stream: each unprotected MAC independently "churns" with the given
/// probability — at a uniformly random point of the stream its
/// transceiver disappears and a brand-new MAC (a rebooted AP, a BSSID
/// rotation, a replacement unit) takes over its readings. Returns the
/// number of churned MACs.
///
/// This is the paper's "APs could also be added or removed" reality:
/// methods with a fixed-length MAC universe cannot see the replacement
/// MACs, while graph-based methods grow new nodes for them.
pub fn churn_macs(
    test: &mut [LabeledRecord],
    protect: &HashSet<MacAddr>,
    fraction: f64,
    rng: &mut impl RngExt,
) -> usize {
    assert!((0.0..=1.0).contains(&fraction));
    let mut universe: Vec<MacAddr> =
        test.iter().flat_map(|t| t.record.macs()).filter(|m| !protect.contains(m)).collect();
    universe.sort_unstable();
    universe.dedup();
    let n = test.len();
    let mut churned = 0usize;
    for mac in universe {
        if rng.random::<f64>() >= fraction {
            continue;
        }
        // Switch somewhere in the middle 60% of the stream.
        let switch = (n as f64 * rng.random_range(0.2..0.8)) as usize;
        let replacement = MacAddr::simulated(0x00C0_0000 + churned as u32, 0)
            .raw()
            .wrapping_add(rng.random_range(0..1u64 << 20));
        let replacement = MacAddr::from_raw(replacement);
        for t in test.iter_mut().skip(switch) {
            for reading in &mut t.record.readings {
                if reading.mac == mac {
                    reading.mac = replacement;
                }
            }
        }
        churned += 1;
    }
    churned
}

/// Removes the given MACs from a labeled test stream.
pub fn prune_macs_from_test(test: &mut [gem_signal::LabeledRecord], macs: &[MacAddr]) {
    let set: std::collections::HashSet<MacAddr> = macs.iter().copied().collect();
    for t in test.iter_mut() {
        t.record.retain_macs(|m| !set.contains(&m));
    }
}

/// The paper's Fig. 12 two-state Markov model: each MAC independently
/// toggles between ON and OFF. A state transition (including
/// self-transition) is evaluated every `period` samples; from ON the MAC
/// moves to OFF with probability `p`, from OFF back to ON with
/// probability `q`. While OFF, the MAC's readings are deleted from the
/// affected samples.
#[derive(Clone, Debug)]
pub struct MarkovOnOff {
    /// ON → OFF transition probability.
    pub p: f64,
    /// OFF → ON transition probability.
    pub q: f64,
    /// Samples between transition epochs (the paper uses 30).
    pub period: usize,
}

impl MarkovOnOff {
    /// Standard paper protocol: transition every 30 samples.
    pub fn new(p: f64, q: f64) -> Self {
        MarkovOnOff { p, q, period: 30 }
    }

    /// Applies the chain over a whole dataset *in sample order*: the
    /// training set first, then the test stream, exactly like the paper's
    /// "throughout the training and testing sets". All MACs start ON.
    pub fn apply(&self, dataset: &mut Dataset, rng: &mut impl RngExt) {
        let mut universe: Vec<MacAddr> = dataset.train.mac_universe();
        for t in &dataset.test {
            universe.extend(t.record.macs());
        }
        universe.sort_unstable();
        universe.dedup();
        let mut state: HashMap<MacAddr, bool> = universe.iter().map(|&m| (m, true)).collect();

        let mut sample_idx = 0usize;
        let mut step = |rec: &mut gem_signal::SignalRecord,
                        state: &mut HashMap<MacAddr, bool>,
                        rng: &mut dyn FnMut() -> f64| {
            if sample_idx.is_multiple_of(self.period) {
                for on in state.values_mut() {
                    let flip = if *on { rng() < self.p } else { rng() < self.q };
                    if flip {
                        *on = !*on;
                    }
                }
            }
            rec.retain_macs(|m| state.get(&m).copied().unwrap_or(true));
            sample_idx += 1;
        };
        let mut draw = || rng.random::<f64>();
        for rec in dataset.train.records_mut() {
            step(rec, &mut state, &mut draw);
        }
        for t in dataset.test.iter_mut() {
            step(&mut t.record, &mut state, &mut draw);
        }
    }

    /// Stationary probability of being ON (diagnostic; `p + q > 0`).
    pub fn stationary_on(&self) -> f64 {
        if self.p + self.q == 0.0 {
            1.0
        } else {
            self.q / (self.p + self.q)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_signal::{Label, LabeledRecord, SignalRecord};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mac(i: u64) -> MacAddr {
        MacAddr::from_raw(i)
    }

    fn record_set(n: usize, macs: &[u64]) -> RecordSet {
        (0..n)
            .map(|i| {
                SignalRecord::from_pairs(i as f64, macs.iter().map(|&m| (mac(m), -60.0 - m as f32)))
            })
            .collect()
    }

    #[test]
    fn prune_removes_requested_fraction() {
        let mut rs = record_set(20, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let mut rng = StdRng::seed_from_u64(1);
        let removed = prune_macs(&mut rs, 0.3, &mut rng);
        assert_eq!(removed.len(), 3);
        assert_eq!(rs.mac_universe().len(), 7);
        for m in &removed {
            assert!(!rs.mac_universe().contains(m));
        }
    }

    #[test]
    fn prune_zero_is_noop() {
        let mut rs = record_set(5, &[1, 2, 3]);
        let before = rs.clone();
        let removed = prune_macs(&mut rs, 0.0, &mut StdRng::seed_from_u64(2));
        assert!(removed.is_empty());
        assert_eq!(rs, before);
    }

    #[test]
    fn prune_from_test_targets_specific_macs() {
        let mut test = vec![LabeledRecord {
            record: SignalRecord::from_pairs(0.0, [(mac(1), -50.0), (mac(2), -60.0)]),
            label: Label::In,
        }];
        prune_macs_from_test(&mut test, &[mac(2)]);
        assert_eq!(test[0].record.len(), 1);
        assert!(test[0].record.rssi_of(mac(1)).is_some());
    }

    #[test]
    fn markov_off_deletes_readings() {
        // p = 1, q = 0: every MAC turns OFF at the first epoch and stays off.
        let chain = MarkovOnOff::new(1.0, 0.0);
        let mut ds = Dataset::new(
            record_set(5, &[1, 2]),
            (0..5)
                .map(|_| LabeledRecord {
                    record: SignalRecord::from_pairs(0.0, [(mac(1), -50.0)]),
                    label: Label::In,
                })
                .collect(),
        );
        chain.apply(&mut ds, &mut StdRng::seed_from_u64(3));
        assert!(ds.train.iter().all(|r| r.is_empty()));
        assert!(ds.test.iter().all(|t| t.record.is_empty()));
    }

    #[test]
    fn markov_p_zero_keeps_everything() {
        let chain = MarkovOnOff::new(0.0, 0.5);
        let mut ds = Dataset::new(record_set(40, &[1, 2, 3]), Vec::new());
        let before = ds.train.clone();
        chain.apply(&mut ds, &mut StdRng::seed_from_u64(4));
        assert_eq!(ds.train, before);
    }

    #[test]
    fn markov_occupancy_tracks_stationary_distribution() {
        let chain = MarkovOnOff { p: 0.3, q: 0.6, period: 1 };
        assert!((chain.stationary_on() - 2.0 / 3.0).abs() < 1e-12);
        let mut ds = Dataset::new(record_set(6000, &[1]), Vec::new());
        chain.apply(&mut ds, &mut StdRng::seed_from_u64(5));
        let on_frac = ds.train.iter().filter(|r| !r.is_empty()).count() as f64 / 6000.0;
        assert!((on_frac - 2.0 / 3.0).abs() < 0.05, "on fraction {on_frac}");
    }

    #[test]
    fn markov_transitions_only_at_period_boundaries() {
        let chain = MarkovOnOff::new(0.5, 0.5); // period 30
        let mut ds = Dataset::new(record_set(90, &[1]), Vec::new());
        chain.apply(&mut ds, &mut StdRng::seed_from_u64(6));
        // Within each 30-sample block the MAC's presence is constant.
        for block in ds.train.records().chunks(30) {
            let first = !block[0].is_empty();
            assert!(block.iter().all(|r| r.is_empty() != first));
        }
    }
}
