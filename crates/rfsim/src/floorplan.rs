//! Floorplans: rooms, walls, materials, floors.

use serde::{Deserialize, Serialize};

use crate::geometry::{Point, Rect, Segment};

/// Wall construction material with its one-pass attenuation at 2.4 GHz.
/// The paper's discussion section quotes ~3 dB for drywall and up to 10 dB
/// for brick; 5 GHz signals lose more per wall (a band factor applied by
/// the propagation model).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Material {
    /// Interior partition, ≈3 dB.
    Drywall,
    /// Brick wall, ≈10 dB.
    Brick,
    /// Load-bearing concrete, ≈13 dB.
    Concrete,
    /// Glass pane / window, ≈2 dB.
    Glass,
}

impl Material {
    /// One-pass attenuation in dB at 2.4 GHz.
    pub fn attenuation_db(self) -> f64 {
        match self {
            Material::Drywall => 3.0,
            Material::Brick => 10.0,
            Material::Concrete => 13.0,
            Material::Glass => 2.0,
        }
    }
}

/// A wall: a segment on a given floor with a material.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Wall {
    /// Wall footprint.
    pub segment: Segment,
    /// Floor index the wall stands on.
    pub floor: i32,
    /// Construction material.
    pub material: Material,
}

/// A rectangular room on a floor. The union of rooms is the geofenced
/// premises.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Room {
    /// Room footprint.
    pub rect: Rect,
    /// Floor index.
    pub floor: i32,
}

/// A 2.5-D position: planar coordinates plus a floor index.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Position {
    /// Planar point, meters.
    pub point: Point,
    /// Floor index (0 = ground).
    pub floor: i32,
}

impl Position {
    /// Constructor.
    pub const fn new(x: f64, y: f64, floor: i32) -> Self {
        Position { point: Point::new(x, y), floor }
    }

    /// 3-D distance given a floor height.
    pub fn distance(self, other: Position, floor_height_m: f64) -> f64 {
        let dz = (self.floor - other.floor) as f64 * floor_height_m;
        (self.point.distance(other.point).powi(2) + dz * dz).sqrt()
    }
}

/// The premises floorplan: rooms, walls, and vertical geometry.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Floorplan {
    /// Rooms forming the premises.
    pub rooms: Vec<Room>,
    /// Walls (exterior and interior).
    pub walls: Vec<Wall>,
    /// Slab-to-slab floor height, meters.
    pub floor_height_m: f64,
    /// One-pass attenuation of a floor slab, dB (≈15–20 dB in practice).
    pub slab_attenuation_db: f64,
}

impl Floorplan {
    /// Creates an empty plan with standard vertical geometry.
    pub fn new() -> Self {
        Floorplan {
            rooms: Vec::new(),
            walls: Vec::new(),
            floor_height_m: 3.0,
            slab_attenuation_db: 17.0,
        }
    }

    /// Adds a room and surrounds it with walls of the given material
    /// (shared edges between adjacent rooms double up, which approximates
    /// a single interior partition well enough at our fidelity).
    pub fn add_room(&mut self, rect: Rect, floor: i32, material: Material) {
        self.rooms.push(Room { rect, floor });
        for seg in rect.edges() {
            self.walls.push(Wall { segment: seg, floor, material });
        }
    }

    /// Adds a free-standing wall.
    pub fn add_wall(&mut self, segment: Segment, floor: i32, material: Material) {
        self.walls.push(Wall { segment, floor, material });
    }

    /// True when the position lies inside the premises.
    pub fn contains(&self, pos: Position) -> bool {
        self.rooms.iter().any(|r| r.floor == pos.floor && r.rect.contains(pos.point))
    }

    /// Total premises floor area, m².
    pub fn area_m2(&self) -> f64 {
        self.rooms.iter().map(|r| r.rect.area()).sum()
    }

    /// Total wall attenuation (dB at 2.4 GHz) along the straight path from
    /// `a` to `b`: counts wall crossings on both endpoint floors for the
    /// planar projection, plus slab attenuation per floor crossed. A
    /// `band_wall_factor` scales the per-wall losses (>1 for 5 GHz).
    pub fn attenuation_db(&self, a: Position, b: Position, band_wall_factor: f64) -> f64 {
        let path = Segment::new(a.point, b.point);
        let mut floors = [a.floor, b.floor];
        floors.sort_unstable();
        let mut db = 0.0;
        for wall in &self.walls {
            let on_a_floor = wall.floor == a.floor;
            let on_b_floor = wall.floor == b.floor && b.floor != a.floor;
            if (on_a_floor || on_b_floor) && path.intersects(wall.segment) {
                db += wall.material.attenuation_db() * band_wall_factor;
            }
        }
        db += self.slab_attenuation_db * (floors[1] - floors[0]) as f64;
        db
    }

    /// Rooms on a given floor.
    pub fn rooms_on(&self, floor: i32) -> impl Iterator<Item = &Room> {
        self.rooms.iter().filter(move |r| r.floor == floor)
    }

    /// Bounding rectangle of the whole plan's footprint (all floors).
    pub fn bounding_rect(&self) -> Option<Rect> {
        let mut it = self.rooms.iter();
        let first = it.next()?.rect;
        let mut min = first.min;
        let mut max = first.max;
        for r in it {
            min.x = min.x.min(r.rect.min.x);
            min.y = min.y.min(r.rect.min.y);
            max.x = max.x.max(r.rect.max.x);
            max.y = max.y.max(r.rect.max.y);
        }
        Some(Rect { min, max })
    }
}

impl Default for Floorplan {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_room_plan() -> Floorplan {
        let mut p = Floorplan::new();
        p.add_room(Rect::new(0.0, 0.0, 5.0, 4.0), 0, Material::Brick);
        p
    }

    #[test]
    fn contains_respects_floor() {
        let p = one_room_plan();
        assert!(p.contains(Position::new(2.0, 2.0, 0)));
        assert!(!p.contains(Position::new(2.0, 2.0, 1)));
        assert!(!p.contains(Position::new(9.0, 2.0, 0)));
    }

    #[test]
    fn wall_attenuation_counts_crossings() {
        let p = one_room_plan();
        // Inside → inside: no wall crossed.
        let a = Position::new(1.0, 1.0, 0);
        let b = Position::new(4.0, 3.0, 0);
        assert_eq!(p.attenuation_db(a, b, 1.0), 0.0);
        // Inside → outside: one brick wall.
        let c = Position::new(8.0, 1.0, 0);
        assert_eq!(p.attenuation_db(a, c, 1.0), 10.0);
        // Band factor scales wall loss.
        assert_eq!(p.attenuation_db(a, c, 1.6), 16.0);
        // Straight through the room from outside to outside: two walls.
        let d = Position::new(-2.0, 1.0, 0);
        assert_eq!(p.attenuation_db(d, c, 1.0), 20.0);
    }

    #[test]
    fn slab_attenuation_between_floors() {
        let mut p = one_room_plan();
        p.add_room(Rect::new(0.0, 0.0, 5.0, 4.0), 1, Material::Brick);
        let a = Position::new(1.0, 1.0, 0);
        let b = Position::new(1.0, 1.0, 1);
        // Same planar point: degenerate path crosses no walls, one slab.
        assert_eq!(p.attenuation_db(a, b, 1.0), p.slab_attenuation_db);
    }

    #[test]
    fn position_distance_includes_height() {
        let a = Position::new(0.0, 0.0, 0);
        let b = Position::new(0.0, 4.0, 1);
        assert_eq!(a.distance(b, 3.0), 5.0);
    }

    #[test]
    fn area_and_bounding_rect() {
        let mut p = one_room_plan();
        p.add_room(Rect::new(5.0, 0.0, 8.0, 4.0), 0, Material::Drywall);
        assert_eq!(p.area_m2(), 20.0 + 12.0);
        let bb = p.bounding_rect().unwrap();
        assert_eq!(bb, Rect::new(0.0, 0.0, 8.0, 4.0));
        assert_eq!(p.rooms_on(0).count(), 2);
        assert_eq!(p.rooms_on(1).count(), 0);
    }

    #[test]
    fn empty_plan() {
        let p = Floorplan::new();
        assert!(p.bounding_rect().is_none());
        assert_eq!(p.area_m2(), 0.0);
    }
}
