//! User mobility: perimeter walks for initial training and waypoint roams
//! for test streams.

use rand::RngExt;

use crate::floorplan::Position;
use crate::geometry::Rect;

/// Walks the inner perimeter of `rect` (inset by `margin` meters) on
/// `floor` for `laps` laps at `speed_mps`, emitting one position every
/// `sample_period_s`. This is exactly the paper's initial-training
/// procedure ("walk roughly along the perimeter inside the area").
pub fn perimeter_walk(
    rect: Rect,
    floor: i32,
    margin: f64,
    speed_mps: f64,
    laps: f64,
    sample_period_s: f64,
) -> Vec<Position> {
    assert!(speed_mps > 0.0 && sample_period_s > 0.0 && laps > 0.0);
    let inner = rect.shrink(margin);
    let corners = inner.corners();
    let mut edge_len = [0.0f64; 4];
    let mut perimeter = 0.0;
    for i in 0..4 {
        edge_len[i] = corners[i].distance(corners[(i + 1) % 4]);
        perimeter += edge_len[i];
    }
    if perimeter <= 0.0 {
        return vec![Position { point: inner.center(), floor }];
    }
    let total_dist = laps * perimeter;
    let step = speed_mps * sample_period_s;
    let n = (total_dist / step).ceil() as usize;
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut along = (k as f64 * step) % perimeter;
        let mut edge = 0usize;
        while along > edge_len[edge] && edge < 3 {
            along -= edge_len[edge];
            edge += 1;
        }
        let t = if edge_len[edge] > 0.0 { along / edge_len[edge] } else { 0.0 };
        let p = corners[edge].lerp(corners[(edge + 1) % 4], t.min(1.0));
        out.push(Position { point: p, floor });
    }
    out
}

/// A random-waypoint roam across a set of regions: repeatedly pick a
/// region (uniform by area) and a uniform point inside it, move toward it
/// in a straight line at `speed_mps`, emitting one position per
/// `sample_period_s`, until `n_samples` positions have been produced.
///
/// Region floors may differ (e.g. a two-story house); floor changes are
/// instantaneous at waypoint boundaries, which is adequate for scan-level
/// fidelity.
pub fn waypoint_roam(
    regions: &[(Rect, i32)],
    speed_mps: f64,
    sample_period_s: f64,
    n_samples: usize,
    rng: &mut impl RngExt,
) -> Vec<Position> {
    assert!(!regions.is_empty(), "waypoint_roam needs at least one region");
    assert!(speed_mps > 0.0 && sample_period_s > 0.0);
    let areas: Vec<f64> = regions.iter().map(|(r, _)| r.area().max(1e-6)).collect();
    let total_area: f64 = areas.iter().sum();

    fn pick(
        regions: &[(Rect, i32)],
        areas: &[f64],
        total_area: f64,
        rng: &mut impl RngExt,
    ) -> Position {
        let mut target = rng.random::<f64>() * total_area;
        let mut idx = regions.len() - 1;
        for (i, &a) in areas.iter().enumerate() {
            target -= a;
            if target <= 0.0 {
                idx = i;
                break;
            }
        }
        let (rect, floor) = regions[idx];
        let x = rect.min.x + rng.random::<f64>() * rect.width();
        let y = rect.min.y + rng.random::<f64>() * rect.height();
        Position::new(x, y, floor)
    }

    let mut cur = pick(regions, &areas, total_area, rng);
    let mut goal = pick(regions, &areas, total_area, rng);
    let step = speed_mps * sample_period_s;
    let mut out = Vec::with_capacity(n_samples);
    while out.len() < n_samples {
        out.push(cur);
        let dist = cur.point.distance(goal.point);
        if dist <= step || cur.floor != goal.floor {
            cur = goal;
            goal = pick(regions, &areas, total_area, rng);
        } else {
            let t = step / dist;
            cur = Position { point: cur.point.lerp(goal.point, t), floor: cur.floor };
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perimeter_walk_stays_inside_and_on_boundary_ring() {
        let rect = Rect::new(0.0, 0.0, 6.0, 4.0);
        let pts = perimeter_walk(rect, 0, 0.5, 0.8, 2.0, 1.5);
        assert!(!pts.is_empty());
        let inner = rect.shrink(0.5);
        for p in &pts {
            assert!(rect.contains(p.point));
            // Points lie on the inner ring's boundary.
            let on_x =
                (p.point.x - inner.min.x).abs() < 1e-9 || (p.point.x - inner.max.x).abs() < 1e-9;
            let on_y =
                (p.point.y - inner.min.y).abs() < 1e-9 || (p.point.y - inner.max.y).abs() < 1e-9;
            assert!(on_x || on_y, "{:?} not on ring", p.point);
        }
    }

    #[test]
    fn slower_walk_with_same_laps_gives_more_samples() {
        let rect = Rect::new(0.0, 0.0, 10.0, 10.0);
        let slow = perimeter_walk(rect, 0, 0.5, 0.4, 2.0, 1.5);
        let fast = perimeter_walk(rect, 0, 0.5, 1.2, 2.0, 1.5);
        assert!(slow.len() > 2 * fast.len());
    }

    #[test]
    fn perimeter_walk_consecutive_spacing_matches_speed() {
        let rect = Rect::new(0.0, 0.0, 20.0, 20.0);
        let pts = perimeter_walk(rect, 0, 0.5, 1.0, 1.0, 2.0);
        // Between consecutive samples the walker covers ≤ speed·period
        // (corners can shorten the chord, never lengthen it).
        for w in pts.windows(2) {
            assert!(w[0].point.distance(w[1].point) <= 2.0 + 1e-9);
        }
    }

    #[test]
    fn roam_emits_requested_samples_inside_regions() {
        let regions = [(Rect::new(0.0, 0.0, 5.0, 5.0), 0), (Rect::new(10.0, 0.0, 12.0, 5.0), 1)];
        let mut rng = StdRng::seed_from_u64(3);
        let pts = waypoint_roam(&regions, 0.8, 1.5, 200, &mut rng);
        assert_eq!(pts.len(), 200);
        // Transit between regions happens on straight lines, so every
        // sample stays inside the bounding box of the region union.
        let hull = Rect::new(0.0, 0.0, 12.0, 5.0);
        for p in &pts {
            assert!(hull.contains(p.point), "sample {:?} escaped the region hull", p.point);
        }
        // Both floors eventually visited.
        assert!(pts.iter().any(|p| p.floor == 0));
        assert!(pts.iter().any(|p| p.floor == 1));
    }

    #[test]
    fn roam_is_deterministic_per_seed() {
        let regions = [(Rect::new(0.0, 0.0, 5.0, 5.0), 0)];
        let a = waypoint_roam(&regions, 0.8, 1.5, 50, &mut StdRng::seed_from_u64(9));
        let b = waypoint_roam(&regions, 0.8, 1.5, 50, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
