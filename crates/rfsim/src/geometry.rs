//! 2-D geometric primitives for floorplans and radio line-of-sight tests.

use serde::{Deserialize, Serialize};

/// A 2-D point in meters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// X coordinate, meters.
    pub x: f64,
    /// Y coordinate, meters.
    pub y: f64,
}

impl Point {
    /// Constructor.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Linear interpolation `self + t·(other - self)`.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(self.x + t * (other.x - self.x), self.y + t * (other.y - self.y))
    }
}

/// A 2-D line segment.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl Segment {
    /// Constructor.
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    pub fn length(self) -> f64 {
        self.a.distance(self.b)
    }

    /// Robust proper/improper segment intersection test (shared endpoints
    /// and collinear overlap count as intersections).
    pub fn intersects(self, other: Segment) -> bool {
        fn orient(p: Point, q: Point, r: Point) -> f64 {
            (q.x - p.x) * (r.y - p.y) - (q.y - p.y) * (r.x - p.x)
        }
        fn on_segment(p: Point, q: Point, r: Point) -> bool {
            // With orient(p,q,r) == 0, is r within the bounding box of pq?
            r.x >= p.x.min(q.x) - 1e-12
                && r.x <= p.x.max(q.x) + 1e-12
                && r.y >= p.y.min(q.y) - 1e-12
                && r.y <= p.y.max(q.y) + 1e-12
        }
        let d1 = orient(other.a, other.b, self.a);
        let d2 = orient(other.a, other.b, self.b);
        let d3 = orient(self.a, self.b, other.a);
        let d4 = orient(self.a, self.b, other.b);
        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            return true;
        }
        (d1.abs() < 1e-12 && on_segment(other.a, other.b, self.a))
            || (d2.abs() < 1e-12 && on_segment(other.a, other.b, self.b))
            || (d3.abs() < 1e-12 && on_segment(self.a, self.b, other.a))
            || (d4.abs() < 1e-12 && on_segment(self.a, self.b, other.b))
    }
}

/// An axis-aligned rectangle (rooms, regions).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Builds a rectangle from corner coordinates (sorted automatically).
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Rect { min: Point::new(x0.min(x1), y0.min(y1)), max: Point::new(x0.max(x1), y0.max(y1)) }
    }

    /// Width in meters.
    pub fn width(self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height in meters.
    pub fn height(self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in square meters.
    pub fn area(self) -> f64 {
        self.width() * self.height()
    }

    /// Point-in-rectangle test (closed).
    pub fn contains(self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Center point.
    pub fn center(self) -> Point {
        Point::new((self.min.x + self.max.x) / 2.0, (self.min.y + self.max.y) / 2.0)
    }

    /// Rectangle shrunk inward by `margin` on every side (clamped so it
    /// never inverts).
    pub fn shrink(self, margin: f64) -> Rect {
        let m = margin.min(self.width() / 2.0 - 1e-9).min(self.height() / 2.0 - 1e-9).max(0.0);
        Rect::new(self.min.x + m, self.min.y + m, self.max.x - m, self.max.y - m)
    }

    /// The four corners in counter-clockwise order starting at `min`.
    pub fn corners(self) -> [Point; 4] {
        [self.min, Point::new(self.max.x, self.min.y), self.max, Point::new(self.min.x, self.max.y)]
    }

    /// The four edges as segments, counter-clockwise.
    pub fn edges(self) -> [Segment; 4] {
        let c = self.corners();
        [
            Segment::new(c[0], c[1]),
            Segment::new(c[1], c[2]),
            Segment::new(c[2], c[3]),
            Segment::new(c[3], c[0]),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_and_lerp() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        let mid = a.lerp(b, 0.5);
        assert_eq!(mid, Point::new(1.5, 2.0));
    }

    #[test]
    fn crossing_segments_intersect() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let s2 = Segment::new(Point::new(0.0, 2.0), Point::new(2.0, 0.0));
        assert!(s1.intersects(s2));
        assert!(s2.intersects(s1));
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 0.0));
        let s2 = Segment::new(Point::new(0.0, 1.0), Point::new(2.0, 1.0));
        assert!(!s1.intersects(s2));
    }

    #[test]
    fn touching_endpoint_counts() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        let s2 = Segment::new(Point::new(1.0, 0.0), Point::new(1.0, 1.0));
        assert!(s1.intersects(s2));
    }

    #[test]
    fn collinear_disjoint_do_not_intersect() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        let s2 = Segment::new(Point::new(2.0, 0.0), Point::new(3.0, 0.0));
        assert!(!s1.intersects(s2));
    }

    #[test]
    fn rect_contains_and_shrink() {
        let r = Rect::new(0.0, 0.0, 4.0, 2.0);
        assert!(r.contains(Point::new(2.0, 1.0)));
        assert!(r.contains(Point::new(0.0, 0.0))); // closed boundary
        assert!(!r.contains(Point::new(4.1, 1.0)));
        let s = r.shrink(0.5);
        assert_eq!(s, Rect::new(0.5, 0.5, 3.5, 1.5));
        assert_eq!(r.area(), 8.0);
        // Over-shrink clamps instead of inverting.
        let tiny = r.shrink(5.0);
        assert!(tiny.width() >= 0.0 && tiny.height() >= 0.0);
    }

    #[test]
    fn edges_form_closed_loop() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        let edges = r.edges();
        for i in 0..4 {
            assert_eq!(edges[i].b, edges[(i + 1) % 4].a);
        }
        let perimeter: f64 = edges.iter().map(|e| e.length()).sum();
        assert!((perimeter - 4.0).abs() < 1e-12);
    }

    #[test]
    fn new_sorts_corners() {
        let r = Rect::new(5.0, 3.0, 1.0, 7.0);
        assert_eq!(r.min, Point::new(1.0, 3.0));
        assert_eq!(r.max, Point::new(5.0, 7.0));
    }
}
