//! Device-fleet workload synthesis for load generation.
//!
//! A geofencing fleet is driven by commodity devices that scan on a
//! fixed period while their owners live a day: at home in the morning,
//! out in the afternoon, back in the evening. This module turns one
//! [`Scenario`] (one premises' world) into per-device scan streams with
//! exactly that shape:
//!
//! * **diurnal schedules** — each device's day is a sequence of
//!   [`ScheduleSegment`]s over the scenario's [`TimeProfile`]s, with
//!   per-device phase jitter so a fleet never moves in lockstep;
//! * **in/out trajectories** — waypoint roams over the scenario's
//!   inside/outside regions, one RNG stream per device, so two devices
//!   on the same premises still walk different paths;
//! * **AP churn** — ambient (non-home) MACs disappear mid-stream and
//!   new ones replace them, like a real radio neighborhood.
//!
//! Streams are deterministic in `(scenario seed, device id)`: a load
//! generator and a server that agree on the scenario config generate
//! bit-identical worlds, so the server's model actually recognizes the
//! records the simulated devices send.

use std::collections::HashSet;

use gem_signal::{Label, LabeledRecord, MacAddr};

use crate::dynamics::churn_macs;
use crate::geometry::Rect;
use crate::scenario::{Scenario, TimeProfile};
use crate::trajectory::waypoint_roam;

/// One phase of a device's day: where the device is and under which
/// radio profile, for how many scans.
#[derive(Clone, Debug)]
pub struct ScheduleSegment {
    /// Radio conditions during the segment.
    pub profile: TimeProfile,
    /// True while the device is inside the premises.
    pub inside: bool,
    /// Scans emitted during the segment.
    pub scans: usize,
}

/// A device's diurnal schedule: morning at home, out over the
/// afternoon, home again in the evening, quiet night. The split of
/// `scans` across phases shifts with `device_id` (different households
/// leave and return at different times), and a small minority of
/// devices spends the night segment outside (shift workers). The
/// segment scan counts always sum to exactly `scans`.
pub fn diurnal_schedule(device_id: u64, scans: usize) -> Vec<ScheduleSegment> {
    // Phase fractions in percent; jitter moves up to 12% of the day
    // from the afternoon-out phase into the morning-home phase.
    let jitter = (device_id % 5) as usize * 3;
    let morning = scans * (25 + jitter) / 100;
    let afternoon = scans * (35 - jitter) / 100;
    let evening = scans * 25 / 100;
    let night = scans - morning - afternoon - evening;
    let night_inside = device_id % 7 != 3;
    vec![
        ScheduleSegment { profile: TimeProfile::MORNING, inside: true, scans: morning },
        ScheduleSegment { profile: TimeProfile::AFTERNOON, inside: false, scans: afternoon },
        ScheduleSegment { profile: TimeProfile::EVENING, inside: true, scans: evening },
        ScheduleSegment { profile: TimeProfile::QUIET, inside: night_inside, scans: night },
    ]
}

/// MACs of the access points physically inside the premises — the ones
/// ambient churn must never touch (a neighborhood changes around a
/// home; the home's own APs stay).
fn home_macs(scenario: &Scenario) -> HashSet<MacAddr> {
    scenario
        .world
        .aps
        .iter()
        .filter(|ap| scenario.world.plan.contains(ap.pos))
        .flat_map(|ap| (0..ap.bands.len()).map(|b| ap.mac(b)))
        .collect()
}

/// Generates one device's scan stream: `scans` labeled records walking
/// the [`diurnal_schedule`], with ambient-MAC churn applied at
/// `churn_fraction` (0 disables). Timestamps advance by the scenario's
/// scan period across the whole day. Labels carry the ground truth
/// (inside/outside) so a closed-loop client can score the server's
/// decisions, not just time them.
pub fn device_stream(
    scenario: &Scenario,
    device_id: u64,
    scans: usize,
    churn_fraction: f64,
) -> Vec<LabeledRecord> {
    let schedule = diurnal_schedule(device_id, scans);
    device_stream_with(scenario, device_id, &schedule, churn_fraction)
}

/// [`device_stream`] with an explicit schedule.
pub fn device_stream_with(
    scenario: &Scenario,
    device_id: u64,
    schedule: &[ScheduleSegment],
    churn_fraction: f64,
) -> Vec<LabeledRecord> {
    // One RNG stream per device, derived from the scenario seed, so
    // devices differ from each other but reproduce run to run.
    let mut rng = scenario.rng(0xD0DE_u64 ^ device_id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let inside_regions: Vec<(Rect, i32)> =
        scenario.world.inside_regions.iter().map(|&(r, f)| (r.shrink(0.2), f)).collect();
    let total: usize = schedule.iter().map(|s| s.scans).sum();
    let mut out: Vec<LabeledRecord> = Vec::with_capacity(total);
    let mut start_t = 0.0;
    for seg in schedule {
        if seg.scans == 0 {
            continue;
        }
        let regions = if seg.inside { &inside_regions } else { &scenario.world.outside_regions };
        let positions = waypoint_roam(
            regions,
            scenario.cfg.speed_mps,
            scenario.cfg.sample_period_s,
            seg.scans,
            &mut rng,
        );
        let records = scenario.sense_positions(&positions, &seg.profile, start_t, &mut rng);
        start_t += seg.scans as f64 * scenario.cfg.sample_period_s;
        let label = if seg.inside { Label::In } else { Label::Out };
        out.extend(
            records.into_records().into_iter().map(|record| LabeledRecord { record, label }),
        );
    }
    if churn_fraction > 0.0 {
        let home = home_macs(scenario);
        churn_macs(&mut out, &home, churn_fraction, &mut rng);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    fn scenario() -> Scenario {
        let mut cfg = ScenarioConfig::user(1);
        cfg.train_duration_s = 30.0;
        Scenario::build(cfg)
    }

    #[test]
    fn schedule_scan_counts_sum_exactly() {
        for device in 0..20u64 {
            for scans in [1usize, 7, 40, 399] {
                let total: usize = diurnal_schedule(device, scans).iter().map(|s| s.scans).sum();
                assert_eq!(total, scans, "device {device}, scans {scans}");
            }
        }
    }

    #[test]
    fn schedules_differ_across_devices() {
        let a = diurnal_schedule(0, 100);
        let b = diurnal_schedule(1, 100);
        assert_ne!(
            a.iter().map(|s| s.scans).collect::<Vec<_>>(),
            b.iter().map(|s| s.scans).collect::<Vec<_>>()
        );
    }

    #[test]
    fn streams_are_deterministic_and_device_distinct() {
        let s = scenario();
        let a1 = device_stream(&s, 3, 24, 0.1);
        let a2 = device_stream(&s, 3, 24, 0.1);
        let b = device_stream(&s, 4, 24, 0.1);
        assert_eq!(a1.len(), 24);
        assert_eq!(a1, a2, "same (seed, device) must reproduce bit-identically");
        assert_ne!(a1, b, "different devices must walk different days");
    }

    #[test]
    fn timestamps_advance_monotonically() {
        let s = scenario();
        let stream = device_stream(&s, 5, 40, 0.0);
        for pair in stream.windows(2) {
            assert!(
                pair[1].record.timestamp_s > pair[0].record.timestamp_s,
                "timestamps must advance"
            );
        }
    }

    #[test]
    fn stream_mixes_in_and_out_scans() {
        let s = scenario();
        let stream = device_stream(&s, 2, 40, 0.0);
        let ins = stream.iter().filter(|r| r.label.is_in()).count();
        assert!(ins > 0 && ins < stream.len(), "a day has both home and away scans: {ins}");
    }

    #[test]
    fn churn_rewrites_some_ambient_macs() {
        let s = scenario();
        let calm = device_stream(&s, 6, 40, 0.0);
        let churned = device_stream(&s, 6, 40, 0.5);
        assert_ne!(calm, churned, "churn must perturb the stream");
        // Home APs survive churn: every home MAC seen in the calm
        // stream that churn_macs could have touched stays present.
        let home = home_macs(&s);
        let seen_home = |recs: &[LabeledRecord]| {
            recs.iter()
                .flat_map(|r| r.record.readings.iter())
                .filter(|r| home.contains(&r.mac))
                .count()
        };
        assert_eq!(seen_home(&calm), seen_home(&churned), "home MACs must survive churn");
    }
}
