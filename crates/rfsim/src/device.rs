//! The IoT device's sensing model.

use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Models how a phone/watch turns a true received power into a scan entry:
/// a soft sensitivity threshold (weak beacons are missed probabilistically),
/// quantization to whole dBm, and the chipset's reporting range clamp.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Nominal sensitivity, dBm: at this level detection probability is ½.
    pub sensitivity_dbm: f64,
    /// Softness of the detection roll-off, dB (logistic scale).
    pub softness_db: f64,
    /// Weakest RSS the chipset ever reports.
    pub floor_dbm: f64,
    /// Strongest RSS the chipset ever reports.
    pub ceil_dbm: f64,
}

impl Default for DeviceModel {
    fn default() -> Self {
        DeviceModel { sensitivity_dbm: -95.0, softness_db: 2.0, floor_dbm: -100.0, ceil_dbm: -20.0 }
    }
}

impl DeviceModel {
    /// Probability that a beacon at `rss_dbm` is detected at all.
    pub fn detection_probability(&self, rss_dbm: f64) -> f64 {
        1.0 / (1.0 + (-(rss_dbm - self.sensitivity_dbm) / self.softness_db).exp())
    }

    /// Simulates one sensing attempt: `None` when missed, otherwise the
    /// quantized, clamped RSS the device would report.
    pub fn sense(&self, rng: &mut impl RngExt, rss_dbm: f64) -> Option<f32> {
        if rng.random::<f64>() >= self.detection_probability(rss_dbm) {
            return None;
        }
        let clamped = rss_dbm.clamp(self.floor_dbm, self.ceil_dbm);
        Some(clamped.round() as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn strong_signals_always_sensed() {
        let d = DeviceModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            assert!(d.sense(&mut rng, -50.0).is_some());
        }
    }

    #[test]
    fn very_weak_signals_never_sensed() {
        let d = DeviceModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..500).filter(|_| d.sense(&mut rng, -115.0).is_some()).count();
        assert_eq!(hits, 0);
    }

    #[test]
    fn threshold_is_soft() {
        let d = DeviceModel::default();
        let p = d.detection_probability(d.sensitivity_dbm);
        assert!((p - 0.5).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..4000).filter(|_| d.sense(&mut rng, d.sensitivity_dbm).is_some()).count();
        let frac = hits as f64 / 4000.0;
        assert!((frac - 0.5).abs() < 0.05, "frac {frac}");
    }

    #[test]
    fn readings_are_quantized_and_clamped() {
        let d = DeviceModel::default();
        let mut rng = StdRng::seed_from_u64(4);
        let r = d.sense(&mut rng, -63.4).unwrap();
        assert_eq!(r, -63.0);
        let strong = d.sense(&mut rng, -5.0).unwrap();
        assert_eq!(strong, -20.0);
    }

    #[test]
    fn detection_probability_monotone() {
        let d = DeviceModel::default();
        assert!(d.detection_probability(-80.0) > d.detection_probability(-95.0));
        assert!(d.detection_probability(-95.0) > d.detection_probability(-105.0));
    }
}
