//! Radio propagation: log-distance path loss per band plus spatially
//! correlated shadow fading.

use serde::{Deserialize, Serialize};

use crate::floorplan::Position;

/// WiFi frequency band.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BandKind {
    /// 2.4 GHz — longer reach, thinner walls.
    Ghz24,
    /// 5 GHz — higher free-space loss and wall losses, better confinement.
    Ghz5,
}

impl BandKind {
    /// Multiplier applied to per-wall attenuation for this band.
    pub fn wall_factor(self) -> f64 {
        match self {
            BandKind::Ghz24 => 1.0,
            BandKind::Ghz5 => 1.6,
        }
    }
}

/// Log-distance path-loss model:
/// `PL(d) = pl0 + 10·n·log10(max(d, d_min))` in dB.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PathLossModel {
    /// Path loss at 1 m, dB.
    pub pl0_db: f64,
    /// Path-loss exponent (≈2.7–3.3 indoors).
    pub exponent: f64,
    /// Amplitude of the spatially correlated shadow fading, dB.
    pub shadow_sd_db: f64,
    /// Per-sample temporal noise standard deviation, dB.
    pub noise_sd_db: f64,
}

impl PathLossModel {
    /// Typical indoor model for a band.
    pub fn indoor(band: BandKind) -> Self {
        match band {
            BandKind::Ghz24 => {
                PathLossModel { pl0_db: 40.0, exponent: 2.8, shadow_sd_db: 3.0, noise_sd_db: 4.0 }
            }
            BandKind::Ghz5 => {
                PathLossModel { pl0_db: 47.0, exponent: 3.0, shadow_sd_db: 3.5, noise_sd_db: 4.5 }
            }
        }
    }

    /// Distance-dependent loss in dB (no walls, no fading).
    pub fn path_loss_db(&self, distance_m: f64) -> f64 {
        self.pl0_db + 10.0 * self.exponent * (distance_m.max(0.5)).log10()
    }
}

/// A deterministic, spatially smooth noise field used for shadow fading.
///
/// Shadow fading is *location*-dependent: two scans taken a step apart see
/// nearly the same obstruction pattern, while scans far apart are
/// uncorrelated. We model it with per-stream 2-D value noise: hash the
/// surrounding grid cell corners and interpolate with a smoothstep. The
/// field is a pure function of `(seed, stream, position)`, so datasets are
/// reproducible.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NoiseField {
    /// Base seed shared by the whole world.
    pub seed: u64,
    /// Correlation length in meters (grid cell size).
    pub cell_m: f64,
}

impl NoiseField {
    /// Creates a field with the given seed and correlation length.
    pub fn new(seed: u64, cell_m: f64) -> Self {
        NoiseField { seed, cell_m }
    }

    fn hash(&self, stream: u64, ix: i64, iy: i64, floor: i32) -> f64 {
        let mut z = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(stream.wrapping_mul(0xD6E8_FEB8_6659_FD93))
            .wrapping_add((ix as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
            .wrapping_add((iy as u64).wrapping_mul(0x1656_67B1_9E37_79F9))
            .wrapping_add(floor as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Map the top 52 bits to [0, 1), then to [-1, 1).
        (z >> 12) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
    }

    /// Field value in `[-1, 1]` for a stream (e.g. one per AP transceiver)
    /// at a position; bilinear smoothstep interpolation of cell corners.
    pub fn value(&self, stream: u64, pos: Position) -> f64 {
        let gx = pos.point.x / self.cell_m;
        let gy = pos.point.y / self.cell_m;
        let ix = gx.floor() as i64;
        let iy = gy.floor() as i64;
        let fx = gx - ix as f64;
        let fy = gy - iy as f64;
        // Smoothstep for C¹ continuity.
        let sx = fx * fx * (3.0 - 2.0 * fx);
        let sy = fy * fy * (3.0 - 2.0 * fy);
        let v00 = self.hash(stream, ix, iy, pos.floor);
        let v10 = self.hash(stream, ix + 1, iy, pos.floor);
        let v01 = self.hash(stream, ix, iy + 1, pos.floor);
        let v11 = self.hash(stream, ix + 1, iy + 1, pos.floor);
        let a = v00 + sx * (v10 - v00);
        let b = v01 + sx * (v11 - v01);
        a + sy * (b - a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_loss_monotone_in_distance() {
        let m = PathLossModel::indoor(BandKind::Ghz24);
        let mut prev = m.path_loss_db(0.5);
        for d in [1.0, 2.0, 5.0, 10.0, 30.0, 100.0] {
            let pl = m.path_loss_db(d);
            assert!(pl > prev, "PL must grow with distance");
            prev = pl;
        }
    }

    #[test]
    fn path_loss_clamps_close_range() {
        let m = PathLossModel::indoor(BandKind::Ghz24);
        assert_eq!(m.path_loss_db(0.0), m.path_loss_db(0.5));
    }

    #[test]
    fn five_ghz_loses_more() {
        let m24 = PathLossModel::indoor(BandKind::Ghz24);
        let m5 = PathLossModel::indoor(BandKind::Ghz5);
        for d in [1.0, 5.0, 20.0] {
            assert!(m5.path_loss_db(d) > m24.path_loss_db(d));
        }
        assert!(BandKind::Ghz5.wall_factor() > BandKind::Ghz24.wall_factor());
    }

    #[test]
    fn noise_field_is_deterministic_and_bounded() {
        let f = NoiseField::new(7, 2.5);
        for i in 0..100 {
            let p = Position::new(i as f64 * 0.37, (i % 13) as f64 * 0.91, 0);
            let v = f.value(3, p);
            assert_eq!(v, f.value(3, p));
            assert!((-1.0..=1.0).contains(&v), "v={v}");
        }
    }

    #[test]
    fn noise_field_is_spatially_smooth() {
        let f = NoiseField::new(7, 2.5);
        // Nearby points differ slightly; far points can differ a lot.
        let p = Position::new(10.0, 10.0, 0);
        let near = Position::new(10.05, 10.0, 0);
        assert!((f.value(1, p) - f.value(1, near)).abs() < 0.1);
    }

    #[test]
    fn noise_field_streams_are_independent() {
        let f = NoiseField::new(7, 2.5);
        let p = Position::new(3.3, 4.4, 0);
        assert_ne!(f.value(1, p), f.value(2, p));
    }

    #[test]
    fn noise_field_distinguishes_floors() {
        let f = NoiseField::new(7, 2.5);
        let a = Position::new(3.3, 4.4, 0);
        let b = Position::new(3.3, 4.4, 1);
        assert_ne!(f.value(1, a), f.value(1, b));
    }
}
