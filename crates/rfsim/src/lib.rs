//! RF propagation and mobility simulator.
//!
//! The paper evaluates GEM on WiFi scans collected by volunteers in real
//! homes. That data (and the radio environment that produced it) is not
//! available, so this crate simulates the closest synthetic equivalent —
//! see DESIGN.md for the substitution argument. The simulator is
//! physically grounded:
//!
//! * [`geometry`] — points, segments, rectangles, intersection tests;
//! * [`floorplan`] — rooms, walls with per-material attenuation, floors;
//! * [`propagation`] — log-distance path loss per band, spatially
//!   correlated shadow fading (a deterministic value-noise field), and
//!   per-sample temporal noise;
//! * [`device`] — the IoT device's sensing model: sensitivity threshold,
//!   probabilistic detection near the floor, dBm quantization;
//! * [`trajectory`] — perimeter walks (initial training), waypoint roams
//!   (testing, inside and outside);
//! * [`scenario`] — complete worlds: AP populations, dataset generation,
//!   the ten Table-II user presets and the lab environment;
//! * [`dynamics`] — the evaluation's environment perturbations: MAC
//!   pruning (Figs. 10–11), the two-state ON-OFF Markov model (Figs.
//!   12–13), and time-of-day profiles (Table IV / Fig. 15b).

pub mod device;
pub mod dynamics;
pub mod floorplan;
pub mod geometry;
pub mod propagation;
pub mod scenario;
pub mod trajectory;
pub mod workload;

pub use device::DeviceModel;
pub use dynamics::{prune_macs, MarkovOnOff};
pub use floorplan::{Floorplan, Material, Position, Room, Wall};
pub use geometry::{Point, Rect, Segment};
pub use propagation::{BandKind, NoiseField, PathLossModel};
pub use scenario::{AccessPoint, Scenario, ScenarioConfig, TimeProfile, World};
pub use trajectory::{perimeter_walk, waypoint_roam};
pub use workload::{device_stream, device_stream_with, diurnal_schedule, ScheduleSegment};
