//! Property-based tests for the simulator's geometry and physics.

use proptest::prelude::*;

use gem_rfsim::floorplan::{Floorplan, Material};
use gem_rfsim::propagation::{BandKind, NoiseField, PathLossModel};
use gem_rfsim::{Point, Position, Rect, Segment};

fn point_strategy() -> impl Strategy<Value = Point> {
    (-50.0f64..50.0, -50.0f64..50.0).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Segment intersection is symmetric.
    #[test]
    fn intersection_is_symmetric(
        a in point_strategy(), b in point_strategy(),
        c in point_strategy(), d in point_strategy(),
    ) {
        let s1 = Segment::new(a, b);
        let s2 = Segment::new(c, d);
        prop_assert_eq!(s1.intersects(s2), s2.intersects(s1));
    }

    /// A segment always intersects itself and shares its endpoints.
    #[test]
    fn segment_self_intersection(a in point_strategy(), b in point_strategy()) {
        let s = Segment::new(a, b);
        prop_assert!(s.intersects(s));
        prop_assert!(s.intersects(Segment::new(a, a)));
    }

    /// Distance is a metric (symmetry + triangle inequality on a third point).
    #[test]
    fn distance_is_metric(
        a in point_strategy(), b in point_strategy(), c in point_strategy(),
    ) {
        prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
        prop_assert!(a.distance(a) < 1e-12);
    }

    /// Shrinking keeps a rectangle inside itself and never inverts.
    #[test]
    fn shrink_is_contained(
        x0 in -20.0f64..20.0, y0 in -20.0f64..20.0,
        w in 0.1f64..30.0, h in 0.1f64..30.0,
        margin in 0.0f64..40.0,
    ) {
        let r = Rect::new(x0, y0, x0 + w, y0 + h);
        let s = r.shrink(margin);
        prop_assert!(s.width() >= 0.0 && s.height() >= 0.0);
        prop_assert!(r.contains(s.min) && r.contains(s.max));
    }

    /// Wall attenuation is non-negative and symmetric in its endpoints.
    #[test]
    fn attenuation_symmetric_nonnegative(
        ax in 0.0f64..12.0, ay in 0.0f64..8.0,
        bx in -10.0f64..22.0, by in -8.0f64..16.0,
    ) {
        let mut plan = Floorplan::new();
        plan.add_room(Rect::new(0.0, 0.0, 12.0, 8.0), 0, Material::Concrete);
        let a = Position::new(ax, ay, 0);
        let b = Position::new(bx, by, 0);
        let ab = plan.attenuation_db(a, b, 1.0);
        let ba = plan.attenuation_db(b, a, 1.0);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    /// Path loss grows monotonically with distance for both bands.
    #[test]
    fn path_loss_monotone(d1 in 0.5f64..100.0, d2 in 0.5f64..100.0) {
        for band in [BandKind::Ghz24, BandKind::Ghz5] {
            let m = PathLossModel::indoor(band);
            if d1 < d2 {
                prop_assert!(m.path_loss_db(d1) <= m.path_loss_db(d2));
            }
        }
    }

    /// The shadow-fading field is bounded and deterministic.
    #[test]
    fn noise_field_bounded(
        seed in any::<u64>(), stream in 0u64..64,
        x in -100.0f64..100.0, y in -100.0f64..100.0,
    ) {
        let f = NoiseField::new(seed, 2.5);
        let p = Position::new(x, y, 0);
        let v = f.value(stream, p);
        prop_assert!((-1.0..=1.0).contains(&v));
        prop_assert_eq!(v, f.value(stream, p));
    }
}
