//! Deterministic data-parallel executor.
//!
//! A std-only fork-join pool with rayon-like ergonomics, built for GEM's
//! determinism contract: **results must be identical for any thread
//! count.** Every combinator here assigns work by *index*, never by
//! arrival order, and writes each result into its own pre-assigned slot,
//! so the output of `par_map` is exactly `items.map(f)` regardless of
//! how the OS schedules workers.
//!
//! Design:
//! - One lazily-created global pool (`GEM_PAR_THREADS`, else
//!   `GEM_NUM_THREADS`, else `available_parallelism`, minus the calling
//!   thread which also works).
//! - Batch-claim dispatch: a parallel region publishes **one** batch of
//!   tasks to a shared queue; workers take the batch once and then claim
//!   task indices with a lock-free cursor. One lock acquisition per
//!   worker per region, instead of one per task — the per-job channel
//!   handoff of the previous design serialized fine-grained regions.
//! - Scoped execution: jobs may borrow from the caller's stack. A call
//!   blocks until every job completes before returning, which makes the
//!   lifetime erasure at the dispatch boundary sound.
//! - Nested calls degrade to sequential execution on the calling worker
//!   instead of deadlocking the pool; [`thread_cap`] bounds the threads
//!   a region may use without resizing the pool.
//! - Panics in jobs are captured and propagated to the caller after all
//!   jobs finish (no poisoned pool, no detached unwinding workers).
//! - Optional tracing: [`set_trace_ring`] installs a [`TraceRing`] that
//!   receives one `par_span` event per thread per region (who ran how
//!   many tasks for how long), the raw material for per-thread chunk
//!   timelines in the train bench.

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use gem_obs::{TraceEvent, TraceRing};

// ---------------------------------------------------------------------------
// Pool
// ---------------------------------------------------------------------------

/// A type-erased unit of work with a stack lifetime that has been erased;
/// soundness comes from `scope_run` blocking until all jobs finish.
type Job = Box<dyn FnOnce() + Send>;

/// One published parallel region: a slab of claimable tasks.
///
/// Workers claim task indices through `cursor`; `fetch_add` hands out
/// each index to exactly one thread, which is what justifies the
/// `UnsafeCell` access in [`Batch::run_claimed`].
struct Batch {
    tasks: Vec<UnsafeCell<Option<Job>>>,
    cursor: AtomicUsize,
    /// Remaining worker seats: bounds how many pool workers may help
    /// this batch (the caller always participates without a seat), so
    /// [`thread_cap`] holds even when the pool is larger.
    seats: AtomicUsize,
}

// SAFETY: each task cell is accessed only by the thread that claimed its
// index through `cursor.fetch_add`, which hands out every index at most
// once.
unsafe impl Sync for Batch {}

impl Batch {
    fn exhausted(&self) -> bool {
        self.cursor.load(Ordering::Relaxed) >= self.tasks.len()
    }

    fn has_work(&self) -> bool {
        !self.exhausted() && self.seats.load(Ordering::Relaxed) > 0
    }

    fn take_seat(&self) -> bool {
        self.seats.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| s.checked_sub(1)).is_ok()
    }

    /// Claims and runs tasks until the cursor is exhausted. Returns the
    /// number of tasks this thread executed.
    fn run_claimed(&self) -> usize {
        let mut ran = 0usize;
        loop {
            let idx = self.cursor.fetch_add(1, Ordering::AcqRel);
            if idx >= self.tasks.len() {
                return ran;
            }
            // SAFETY: `fetch_add` handed `idx` to this thread exclusively.
            if let Some(job) = unsafe { (*self.tasks[idx].get()).take() } {
                job();
                ran += 1;
            }
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<Arc<Batch>>>,
    available: Condvar,
}

struct Pool {
    shared: Arc<Shared>,
    workers: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// True on pool worker threads; nested parallel calls run
    /// sequentially instead of re-entering the (possibly saturated) pool.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Per-thread cap on region parallelism (including the caller);
    /// `usize::MAX` means uncapped. See [`thread_cap`].
    static THREAD_CAP: Cell<usize> = const { Cell::new(usize::MAX) };
    /// Worker index for trace attribution; `-1` on non-pool threads.
    static WORKER_ID: Cell<i64> = const { Cell::new(-1) };
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let batch = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            'claim: loop {
                // Drop finished batches from the front so the queue
                // stays short-lived even under many publishers.
                while q.front().is_some_and(|b| b.exhausted()) {
                    q.pop_front();
                }
                for b in q.iter() {
                    if b.has_work() && b.take_seat() {
                        break 'claim Arc::clone(b);
                    }
                }
                q = shared.available.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let span = SpanStart::begin();
        let ran = batch.run_claimed();
        span.finish(ran);
    }
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let workers = num_threads().saturating_sub(1);
        let shared =
            Arc::new(Shared { queue: Mutex::new(VecDeque::new()), available: Condvar::new() });
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("gem-par-{i}"))
                .spawn(move || {
                    IN_WORKER.with(|f| f.set(true));
                    WORKER_ID.with(|w| w.set(i as i64));
                    worker_loop(shared);
                })
                .expect("spawn gem-par worker");
        }
        Pool { shared, workers }
    })
}

/// Effective parallelism: `GEM_PAR_THREADS` if set and >= 1 (the CI
/// override, taking precedence), else `GEM_NUM_THREADS`, else the
/// machine's available parallelism.
pub fn num_threads() -> usize {
    for key in ["GEM_PAR_THREADS", "GEM_NUM_THREADS"] {
        if let Ok(v) = std::env::var(key) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
    }
    default_threads()
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// True when called from inside a pool worker (nested parallel region).
pub fn in_parallel_region() -> bool {
    IN_WORKER.with(|f| f.get())
}

// ---------------------------------------------------------------------------
// Thread cap
// ---------------------------------------------------------------------------

/// RAII guard restoring the previous per-thread cap; see [`thread_cap`].
pub struct ThreadCapGuard {
    prev: usize,
}

impl Drop for ThreadCapGuard {
    fn drop(&mut self) {
        THREAD_CAP.with(|c| c.set(self.prev));
    }
}

/// Caps the parallelism (caller thread included) of every parallel
/// region entered from this thread until the guard drops. Nested caps
/// only tighten: `thread_cap(4)` inside `thread_cap(2)` stays at 2.
///
/// This is how callers ask for "exactly N threads" without resizing the
/// global pool — the train bench's 1/2/4-thread sweep and
/// `TrainConfig::num_threads` both use it.
pub fn thread_cap(cap: usize) -> ThreadCapGuard {
    let cap = cap.max(1);
    let prev = THREAD_CAP.with(|c| {
        let p = c.get();
        c.set(cap.min(p));
        p
    });
    ThreadCapGuard { prev }
}

/// Parallelism the next region on this thread will actually use:
/// [`num_threads`] tightened by any active [`thread_cap`].
pub fn effective_threads() -> usize {
    THREAD_CAP.with(|c| c.get()).min(num_threads()).max(1)
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

static TRACE: OnceLock<Arc<TraceRing>> = OnceLock::new();

/// Installs a global trace ring receiving one `par_span` event per
/// thread per parallel region (`worker` is the pool worker index or -1
/// for the calling thread, `tasks` the number of tasks it ran, `busy_ns`
/// the wall time it spent running them). Returns false if a ring was
/// already installed (the first one wins).
pub fn set_trace_ring(ring: Arc<TraceRing>) -> bool {
    TRACE.set(ring).is_ok()
}

/// Start of a per-thread region span; inert unless a ring is installed.
struct SpanStart(Option<Instant>);

impl SpanStart {
    fn begin() -> SpanStart {
        SpanStart(TRACE.get().map(|_| Instant::now()))
    }

    fn finish(self, tasks_run: usize) {
        if let (Some(t0), Some(ring)) = (self.0, TRACE.get()) {
            if tasks_run > 0 {
                ring.push(
                    TraceEvent::new("par_span")
                        .with("worker", WORKER_ID.with(|w| w.get()))
                        .with("tasks", tasks_run)
                        .with("busy_ns", elapsed_ns(t0)),
                );
            }
        }
    }
}

fn elapsed_ns(t0: Instant) -> u64 {
    t0.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

// ---------------------------------------------------------------------------
// Scoped fork-join core
// ---------------------------------------------------------------------------

struct Latch {
    remaining: AtomicUsize,
    mutex: Mutex<()>,
    cond: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch { remaining: AtomicUsize::new(count), mutex: Mutex::new(()), cond: Condvar::new() }
    }

    fn count_down(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.mutex.lock().unwrap_or_else(|e| e.into_inner());
            self.cond.notify_all();
        }
    }

    fn wait(&self) {
        let mut guard = self.mutex.lock().unwrap_or_else(|e| e.into_inner());
        while self.remaining.load(Ordering::Acquire) != 0 {
            guard = self.cond.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Run `tasks.len()` closures to completion, using pool workers plus the
/// calling thread. Blocks until every task has finished. Propagates the
/// first panic (by task index) after all tasks complete.
///
/// Tasks are `FnOnce` closures that may borrow the caller's stack: the
/// blocking barrier is what makes the `'static` transmute sound.
fn scope_run(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
    let n = tasks.len();
    if n == 0 {
        return;
    }
    let allowed = effective_threads();
    let sequential = n == 1 || allowed == 1 || in_parallel_region() || pool().workers == 0;
    if sequential {
        let span = SpanStart::begin();
        for task in tasks {
            task();
        }
        span.finish(n);
        return;
    }

    let latch = Latch::new(n);
    let panics: Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(Vec::new());

    {
        let latch_ref = &latch;
        let panics_ref = &panics;
        let mut jobs: Vec<UnsafeCell<Option<Job>>> = Vec::with_capacity(n);
        for (idx, task) in tasks.into_iter().enumerate() {
            let wrapped = move || {
                let result = panic::catch_unwind(AssertUnwindSafe(task));
                if let Err(payload) = result {
                    panics_ref.lock().unwrap_or_else(|e| e.into_inner()).push((idx, payload));
                }
                latch_ref.count_down();
            };
            // SAFETY: `wrapped` borrows `latch`, `panics`, and the
            // caller's stack through `task`. We block on `latch.wait()`
            // below before any of those borrows go out of scope, so the
            // closure never outlives the data it references. By the time
            // the latch opens every cell has been emptied, so the batch
            // an unwoken worker may still hold a reference to contains
            // no borrowed state.
            let job: Job = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send>>(
                    Box::new(wrapped),
                )
            };
            jobs.push(UnsafeCell::new(Some(job)));
        }
        let batch = Arc::new(Batch {
            tasks: jobs,
            cursor: AtomicUsize::new(0),
            // The caller participates without a seat; workers take the
            // rest, bounded by the active thread cap.
            seats: AtomicUsize::new(allowed.saturating_sub(1).min(pool().workers)),
        });
        {
            let mut q = pool().shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(Arc::clone(&batch));
        }
        pool().shared.available.notify_all();

        // The calling thread claims tasks from its own batch (it would
        // otherwise idle inside `wait`).
        let span = SpanStart::begin();
        let ran = batch.run_claimed();
        span.finish(ran);
        latch.wait();

        // Every task has run; unlink the batch so the queue does not
        // accumulate exhausted batches between publishes.
        let mut q = pool().shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.retain(|b| !Arc::ptr_eq(b, &batch));
    }

    let mut collected = panics.into_inner().unwrap_or_else(|e| e.into_inner());
    if !collected.is_empty() {
        collected.sort_by_key(|(idx, _)| *idx);
        let (_, payload) = collected.remove(0);
        panic::resume_unwind(payload);
    }
}

// ---------------------------------------------------------------------------
// Public combinators
// ---------------------------------------------------------------------------

/// Parallel map preserving input order: `par_map(items, f)[i] == f(&items[i])`.
///
/// Work is split into contiguous chunks, one per available thread, so
/// cache locality of sequential iteration is preserved within a chunk.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    par_map_indexed(items, |_idx, item| f(item))
}

/// Parallel indexed map preserving input order.
pub fn par_map_indexed<T: Sync, R: Send>(items: &[T], f: impl Fn(usize, &T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    {
        let chunk = chunk_size(n);
        let f_ref = &f;
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        for (slot_chunk, (start, item_chunk)) in out
            .chunks_mut(chunk)
            .zip(items.chunks(chunk).enumerate().map(|(ci, c)| (ci * chunk, c)))
        {
            tasks.push(Box::new(move || {
                for (offset, (slot, item)) in
                    slot_chunk.iter_mut().zip(item_chunk.iter()).enumerate()
                {
                    *slot = Some(f_ref(start + offset, item));
                }
            }));
        }
        scope_run(tasks);
    }
    out.into_iter().map(|slot| slot.expect("gem-par: missing result slot")).collect()
}

/// Parallel for-each over mutable chunks of `data`, passing each task its
/// chunk index and the chunk. Chunk boundaries depend only on
/// `chunk_len`, so the decomposition is thread-count independent.
pub fn par_chunks_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(chunk_len > 0, "chunk_len must be positive");
    let f_ref = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = data
        .chunks_mut(chunk_len)
        .enumerate()
        .map(|(idx, chunk)| {
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || f_ref(idx, chunk));
            task
        })
        .collect();
    scope_run(tasks);
}

/// Parallel for-each over individual mutable items: runs `f(i, &mut
/// items[i])` for every index, one task per item. Use when each item is a
/// substantial unit of work (a training chunk, a tree build) that mutates
/// in place; for fine-grained items prefer [`par_chunks_mut`] with a
/// larger chunk so dispatch overhead amortizes.
pub fn par_for_each_mut<T: Send>(items: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
    par_chunks_mut(items, 1, |idx, chunk| f(idx, &mut chunk[0]));
}

/// Run independent closures in parallel, returning their results in
/// argument order.
pub fn par_join<A: Send, B: Send>(
    a: impl FnOnce() -> A + Send,
    b: impl FnOnce() -> B + Send,
) -> (A, B) {
    let mut ra: Option<A> = None;
    let mut rb: Option<B> = None;
    {
        let task_a: Box<dyn FnOnce() + Send + '_> = Box::new(|| ra = Some(a()));
        let task_b: Box<dyn FnOnce() + Send + '_> = Box::new(|| rb = Some(b()));
        scope_run(vec![task_a, task_b]);
    }
    (ra.expect("gem-par: join arm a missing"), rb.expect("gem-par: join arm b missing"))
}

/// Chunk size that gives every thread one contiguous chunk (bounded
/// below to amortize dispatch overhead on tiny inputs). Batch-claim
/// dispatch makes finer splitting for load balance unnecessary: a
/// straggler's chunk is the only one left, and everything else was
/// claimed without extra locking anyway.
fn chunk_size(n: usize) -> usize {
    if n == 0 {
        return 1;
    }
    let threads = effective_threads();
    n.div_ceil(threads).clamp(64.min(n), n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential() {
        let items: Vec<u64> = (0..10_000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        let got = par_map(&items, |x| x * x + 1);
        assert_eq!(got, expect);
    }

    #[test]
    fn par_map_indexed_sees_true_indices() {
        let items: Vec<u32> = (0..5000).collect();
        let got = par_map_indexed(&items, |i, &x| (i as u32, x));
        for (i, &(idx, x)) in got.iter().enumerate() {
            assert_eq!(idx as usize, i);
            assert_eq!(x as usize, i);
        }
    }

    #[test]
    fn par_chunks_mut_covers_everything_once() {
        let mut data = vec![0u32; 4097];
        par_chunks_mut(&mut data, 64, |_idx, chunk| {
            for v in chunk {
                *v += 1;
            }
        });
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn par_for_each_mut_runs_one_task_per_item() {
        let mut data: Vec<(usize, u32)> = (0..97).map(|i| (usize::MAX, i as u32)).collect();
        par_for_each_mut(&mut data, |idx, item| {
            item.0 = idx;
            item.1 *= 2;
        });
        for (i, &(idx, v)) in data.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(v as usize, 2 * i);
        }
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = par_join(|| 21 * 2, || "right".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "right");
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        let outer: Vec<usize> = (0..64).collect();
        let result = par_map(&outer, |&i| {
            let inner: Vec<usize> = (0..32).collect();
            par_map(&inner, |&j| i * 100 + j).iter().sum::<usize>()
        });
        assert_eq!(result.len(), 64);
        let expect: usize = (0..32).sum();
        assert_eq!(result[0], expect);
    }

    #[test]
    fn panics_propagate() {
        let items: Vec<u32> = (0..1000).collect();
        let caught = std::panic::catch_unwind(|| {
            par_map(&items, |&x| {
                if x == 567 {
                    panic!("boom at {x}");
                }
                x
            })
        });
        assert!(caught.is_err());
        // Pool must still be usable afterwards.
        let ok = par_map(&items, |&x| x + 1);
        assert_eq!(ok[999], 1000);
    }

    #[test]
    fn borrows_from_stack() {
        let base = vec![10u64; 256];
        let items: Vec<usize> = (0..256).collect();
        let got = par_map(&items, |&i| base[i] + i as u64);
        assert_eq!(got[255], 265);
    }

    #[test]
    fn thread_cap_tightens_and_restores() {
        let uncapped = effective_threads();
        {
            let _g = thread_cap(1);
            assert_eq!(effective_threads(), 1);
            {
                // Nested caps only tighten, never widen.
                let _g2 = thread_cap(8);
                assert_eq!(effective_threads(), 1);
            }
            assert_eq!(effective_threads(), 1);
        }
        assert_eq!(effective_threads(), uncapped);
    }

    #[test]
    fn thread_cap_one_still_computes_correctly() {
        let _g = thread_cap(1);
        let items: Vec<u64> = (0..4096).collect();
        let got = par_map(&items, |x| x * 3);
        let expect: Vec<u64> = items.iter().map(|x| x * 3).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn concurrent_regions_from_multiple_threads() {
        // Several non-pool threads each publish batches at once; every
        // region must see exactly its own results.
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for round in 0..8u64 {
                        let items: Vec<u64> = (0..512).collect();
                        let got = par_map(&items, |x| x * (t + 1) + round);
                        for (i, &v) in got.iter().enumerate() {
                            assert_eq!(v, i as u64 * (t + 1) + round);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn trace_ring_records_region_spans() {
        let ring = Arc::new(TraceRing::new(64));
        // First set wins; either way a ring is installed for this test
        // binary from here on.
        set_trace_ring(Arc::clone(&ring));
        let items: Vec<u64> = (0..1024).collect();
        let _ = par_map(&items, |x| x + 1);
        let events = ring.snapshot();
        assert!(!events.is_empty(), "expected at least one par_span event");
        let total_tasks: u64 = events
            .iter()
            .filter(|e| e.kind == "par_span")
            .flat_map(|e| e.fields.iter())
            .filter_map(|(k, v)| match (k, v) {
                (&"tasks", gem_obs::TraceValue::U64(n)) => Some(*n),
                _ => None,
            })
            .sum();
        assert!(total_tasks >= 1, "spans must attribute the executed tasks");
    }
}
