//! Deterministic data-parallel executor.
//!
//! A std-only fork-join pool with rayon-like ergonomics, built for GEM's
//! determinism contract: **results must be identical for any thread
//! count.** Every combinator here assigns work by *index*, never by
//! arrival order, and writes each result into its own pre-assigned slot,
//! so the output of `par_map` is exactly `items.map(f)` regardless of
//! how the OS schedules workers.
//!
//! Design:
//! - One lazily-created global pool (`GEM_NUM_THREADS` or
//!   `available_parallelism`, minus the calling thread which also works).
//! - Scoped execution: jobs may borrow from the caller's stack. A call
//!   blocks until every job completes before returning, which makes the
//!   lifetime erasure at the dispatch boundary sound.
//! - Nested calls degrade to sequential execution on the calling worker
//!   instead of deadlocking the pool.
//! - Panics in jobs are captured and propagated to the caller after all
//!   jobs finish (no poisoned pool, no detached unwinding workers).

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Condvar, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Pool
// ---------------------------------------------------------------------------

/// A type-erased unit of work with a stack lifetime that has been erased;
/// soundness comes from `scope_run` blocking until all jobs finish.
type Job = Box<dyn FnOnce() + Send>;

struct Pool {
    injector: Sender<Job>,
    workers: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// True on pool worker threads; nested parallel calls run
    /// sequentially instead of re-entering the (possibly saturated) pool.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let workers = num_threads().saturating_sub(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = std::sync::Arc::new(Mutex::new(rx));
        for i in 0..workers {
            let rx = std::sync::Arc::clone(&rx);
            std::thread::Builder::new()
                .name(format!("gem-par-{i}"))
                .spawn(move || {
                    IN_WORKER.with(|f| f.set(true));
                    loop {
                        let job = {
                            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                            guard.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break,
                        }
                    }
                })
                .expect("spawn gem-par worker");
        }
        Pool { injector: tx, workers }
    })
}

/// Effective parallelism: `GEM_NUM_THREADS` if set and >= 1, else the
/// machine's available parallelism.
pub fn num_threads() -> usize {
    match std::env::var("GEM_NUM_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// True when called from inside a pool worker (nested parallel region).
pub fn in_parallel_region() -> bool {
    IN_WORKER.with(|f| f.get())
}

// ---------------------------------------------------------------------------
// Scoped fork-join core
// ---------------------------------------------------------------------------

struct Latch {
    remaining: AtomicUsize,
    mutex: Mutex<()>,
    cond: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch { remaining: AtomicUsize::new(count), mutex: Mutex::new(()), cond: Condvar::new() }
    }

    fn count_down(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.mutex.lock().unwrap_or_else(|e| e.into_inner());
            self.cond.notify_all();
        }
    }

    fn wait(&self) {
        let mut guard = self.mutex.lock().unwrap_or_else(|e| e.into_inner());
        while self.remaining.load(Ordering::Acquire) != 0 {
            guard = self.cond.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Run `tasks.len()` closures to completion, using pool workers plus the
/// calling thread. Blocks until every task has finished. Propagates the
/// first panic (by task index) after all tasks complete.
///
/// Tasks are `FnOnce` closures that may borrow the caller's stack: the
/// blocking barrier is what makes the `'static` transmute sound.
fn scope_run(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
    let n = tasks.len();
    if n == 0 {
        return;
    }
    let sequential = n == 1 || in_parallel_region() || pool().workers == 0;
    if sequential {
        for task in tasks {
            task();
        }
        return;
    }

    let latch = Latch::new(n);
    let panics: Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(Vec::new());

    {
        let latch_ref = &latch;
        let panics_ref = &panics;
        let mut queue: Vec<Job> = Vec::with_capacity(n.saturating_sub(1));
        let mut own_task: Option<Box<dyn FnOnce() + Send + '_>> = None;
        for (idx, task) in tasks.into_iter().enumerate() {
            if idx == 0 {
                own_task = Some(task);
                continue;
            }
            let wrapped = move || {
                let result = panic::catch_unwind(AssertUnwindSafe(task));
                if let Err(payload) = result {
                    panics_ref.lock().unwrap_or_else(|e| e.into_inner()).push((idx, payload));
                }
                latch_ref.count_down();
            };
            // SAFETY: `wrapped` borrows `latch`, `panics`, and the
            // caller's stack through `task`. We block on `latch.wait()`
            // below before any of those borrows go out of scope, so the
            // closure never outlives the data it references.
            let job: Job = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send>>(
                    Box::new(wrapped),
                )
            };
            queue.push(job);
        }
        for job in queue {
            // If the pool is somehow gone, run the job inline rather than
            // leaving the latch forever uncounted.
            if let Err(failed) = pool().injector.send(job) {
                (failed.0)();
            }
        }
        // The calling thread runs task 0 itself (it would otherwise idle
        // inside `wait`), then helps nothing else: remaining jobs are
        // already with the workers.
        if let Some(task) = own_task {
            let result = panic::catch_unwind(AssertUnwindSafe(task));
            if let Err(payload) = result {
                panics.lock().unwrap_or_else(|e| e.into_inner()).push((0, payload));
            }
            latch.count_down();
        }
        latch.wait();
    }

    let mut collected = panics.into_inner().unwrap_or_else(|e| e.into_inner());
    if !collected.is_empty() {
        collected.sort_by_key(|(idx, _)| *idx);
        let (_, payload) = collected.remove(0);
        panic::resume_unwind(payload);
    }
}

// ---------------------------------------------------------------------------
// Public combinators
// ---------------------------------------------------------------------------

/// Parallel map preserving input order: `par_map(items, f)[i] == f(&items[i])`.
///
/// Work is split into contiguous chunks, one per available thread, so
/// cache locality of sequential iteration is preserved within a chunk.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    par_map_indexed(items, |_idx, item| f(item))
}

/// Parallel indexed map preserving input order.
pub fn par_map_indexed<T: Sync, R: Send>(items: &[T], f: impl Fn(usize, &T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    {
        let chunk = chunk_size(n);
        let f_ref = &f;
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        for (slot_chunk, (start, item_chunk)) in out
            .chunks_mut(chunk)
            .zip(items.chunks(chunk).enumerate().map(|(ci, c)| (ci * chunk, c)))
        {
            tasks.push(Box::new(move || {
                for (offset, (slot, item)) in
                    slot_chunk.iter_mut().zip(item_chunk.iter()).enumerate()
                {
                    *slot = Some(f_ref(start + offset, item));
                }
            }));
        }
        scope_run(tasks);
    }
    out.into_iter().map(|slot| slot.expect("gem-par: missing result slot")).collect()
}

/// Parallel for-each over mutable chunks of `data`, passing each task its
/// chunk index and the chunk. Chunk boundaries depend only on
/// `chunk_len`, so the decomposition is thread-count independent.
pub fn par_chunks_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(chunk_len > 0, "chunk_len must be positive");
    let f_ref = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = data
        .chunks_mut(chunk_len)
        .enumerate()
        .map(|(idx, chunk)| {
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || f_ref(idx, chunk));
            task
        })
        .collect();
    scope_run(tasks);
}

/// Parallel for-each over individual mutable items: runs `f(i, &mut
/// items[i])` for every index, one task per item. Use when each item is a
/// substantial unit of work (a training chunk, a tree build) that mutates
/// in place; for fine-grained items prefer [`par_chunks_mut`] with a
/// larger chunk so dispatch overhead amortizes.
pub fn par_for_each_mut<T: Send>(items: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
    par_chunks_mut(items, 1, |idx, chunk| f(idx, &mut chunk[0]));
}

/// Run independent closures in parallel, returning their results in
/// argument order.
pub fn par_join<A: Send, B: Send>(
    a: impl FnOnce() -> A + Send,
    b: impl FnOnce() -> B + Send,
) -> (A, B) {
    let mut ra: Option<A> = None;
    let mut rb: Option<B> = None;
    {
        let task_a: Box<dyn FnOnce() + Send + '_> = Box::new(|| ra = Some(a()));
        let task_b: Box<dyn FnOnce() + Send + '_> = Box::new(|| rb = Some(b()));
        scope_run(vec![task_a, task_b]);
    }
    (ra.expect("gem-par: join arm a missing"), rb.expect("gem-par: join arm b missing"))
}

/// Chunk size that gives every thread about two chunks (bounded below to
/// amortize dispatch overhead on tiny inputs).
fn chunk_size(n: usize) -> usize {
    if n == 0 {
        return 1;
    }
    let threads = num_threads().max(1);
    n.div_ceil(threads * 2).clamp(16.min(n), n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential() {
        let items: Vec<u64> = (0..10_000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        let got = par_map(&items, |x| x * x + 1);
        assert_eq!(got, expect);
    }

    #[test]
    fn par_map_indexed_sees_true_indices() {
        let items: Vec<u32> = (0..5000).collect();
        let got = par_map_indexed(&items, |i, &x| (i as u32, x));
        for (i, &(idx, x)) in got.iter().enumerate() {
            assert_eq!(idx as usize, i);
            assert_eq!(x as usize, i);
        }
    }

    #[test]
    fn par_chunks_mut_covers_everything_once() {
        let mut data = vec![0u32; 4097];
        par_chunks_mut(&mut data, 64, |_idx, chunk| {
            for v in chunk {
                *v += 1;
            }
        });
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn par_for_each_mut_runs_one_task_per_item() {
        let mut data: Vec<(usize, u32)> = (0..97).map(|i| (usize::MAX, i as u32)).collect();
        par_for_each_mut(&mut data, |idx, item| {
            item.0 = idx;
            item.1 *= 2;
        });
        for (i, &(idx, v)) in data.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(v as usize, 2 * i);
        }
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = par_join(|| 21 * 2, || "right".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "right");
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        let outer: Vec<usize> = (0..64).collect();
        let result = par_map(&outer, |&i| {
            let inner: Vec<usize> = (0..32).collect();
            par_map(&inner, |&j| i * 100 + j).iter().sum::<usize>()
        });
        assert_eq!(result.len(), 64);
        let expect: usize = (0..32).sum();
        assert_eq!(result[0], expect);
    }

    #[test]
    fn panics_propagate() {
        let items: Vec<u32> = (0..1000).collect();
        let caught = std::panic::catch_unwind(|| {
            par_map(&items, |&x| {
                if x == 567 {
                    panic!("boom at {x}");
                }
                x
            })
        });
        assert!(caught.is_err());
        // Pool must still be usable afterwards.
        let ok = par_map(&items, |&x| x + 1);
        assert_eq!(ok[999], 1000);
    }

    #[test]
    fn borrows_from_stack() {
        let base = vec![10u64; 256];
        let items: Vec<usize> = (0..256).collect();
        let got = par_map(&items, |&i| base[i] + i as u64);
        assert_eq!(got[255], 265);
    }
}
