//! GraphSAGE baseline (Hamilton et al., 2017), applied to the bipartite
//! graph *as if it were homogeneous* — the paper's "GraphSAGE + OD" row.
//!
//! Differences from BiSAGE, exactly as the paper frames them: a single
//! embedding per node (no primary/auxiliary split), uniform neighbor
//! sampling, plain-mean aggregation, and the standard single-embedding
//! negative-sampling loss.

use rand::rngs::StdRng;

use gem_core::pipeline::Embedder;
use gem_graph::{BipartiteGraph, NegativeTable, NodeId, RecordId, WalkConfig, WalkPairs, WeightFn};
use gem_nn::tape::{Activation, Graph, ParamId, ParamStore, Var};
use gem_nn::{init, Adam, Optimizer, Tensor};
use gem_signal::rng::child_rng;
use gem_signal::{RecordSet, SignalRecord};

/// GraphSAGE hyperparameters (kept deliberately parallel to BiSAGE's so
/// the comparison isolates the algorithmic differences).
#[derive(Clone, Debug)]
pub struct GraphSageConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Aggregation rounds.
    pub rounds: usize,
    /// Neighbors sampled per depth.
    pub sample_sizes: Vec<usize>,
    /// Nonlinearity.
    pub activation: Activation,
    /// Learning rate.
    pub learning_rate: f32,
    /// Epochs over the walk-pair stream.
    pub epochs: usize,
    /// Pairs per step.
    pub batch_size: usize,
    /// Walk schedule (uniform transitions, per GraphSAGE).
    pub walks: WalkConfig,
    /// Negatives per pair.
    pub negative_samples: usize,
    /// Edge-weight function used only to *build* the graph (weights are
    /// ignored by the homogeneous algorithm).
    pub weight_fn: WeightFn,
    /// Top-K cap for deterministic inference neighborhoods.
    pub inference_cap: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for GraphSageConfig {
    fn default() -> Self {
        GraphSageConfig {
            dim: 32,
            rounds: 2,
            sample_sizes: vec![8, 4],
            activation: Activation::LeakyRelu,
            learning_rate: 0.003,
            epochs: 3,
            batch_size: 128,
            walks: WalkConfig { walks_per_node: 4, walk_length: 5 },
            negative_samples: 4,
            weight_fn: WeightFn::OffsetLinear { c: 120.0 },
            inference_cap: 48,
            seed: 42,
        }
    }
}

fn node_row(node: NodeId) -> usize {
    match node {
        NodeId::Record(r) => 2 * r.0 as usize,
        NodeId::Mac(m) => 2 * m.0 as usize + 1,
    }
}

/// The fitted GraphSAGE model + graph, usable as a streaming [`Embedder`].
pub struct GraphSage {
    /// Hyperparameters.
    pub cfg: GraphSageConfig,
    graph: BipartiteGraph,
    w: Vec<Tensor>,
    base: Tensor,
    initialized: Vec<bool>,
    rng: StdRng,
    /// Pseudo-label gate, mirroring GEM's: streamed records classified as
    /// outliers are excluded from future neighborhood expansion.
    trusted: Vec<bool>,
    last_added: Option<RecordId>,
}

struct Tree {
    layers: Vec<Vec<NodeId>>,
    offsets: Vec<Vec<u32>>,
    weights: Vec<Vec<f32>>,
}

impl GraphSage {
    /// Builds the graph from the training records and trains the model.
    /// Returns the model and the training-record embedding matrix.
    pub fn fit(cfg: GraphSageConfig, train: &RecordSet) -> (GraphSage, Tensor) {
        let graph = BipartiteGraph::from_records(cfg.weight_fn, train.iter());
        let mut rng = child_rng(cfg.seed, 0x65A6E);
        let d = cfg.dim;
        let mut model = GraphSage {
            w: (0..cfg.rounds).map(|_| init::xavier_uniform(&mut rng, 2 * d, d)).collect(),
            base: Tensor::zeros(0, d),
            initialized: Vec::new(),
            rng: child_rng(cfg.seed, 0x65A6F),
            trusted: vec![true; graph.n_records()],
            last_added: None,
            cfg,
            graph,
        };
        model.ensure_rows();
        model.train();
        let train_embeddings = model.embed_all_records();
        (model, train_embeddings)
    }

    fn ensure_rows(&mut self) {
        let needed = 2 * self.graph.n_records().max(self.graph.n_macs());
        let d = self.cfg.dim;
        if self.base.rows() < needed {
            let grown = needed.max(self.base.rows() * 2).max(16);
            let mut nb = Tensor::zeros(grown, d);
            for i in 0..self.base.rows() {
                nb.set_row(i, self.base.row(i));
            }
            self.base = nb;
            self.initialized.resize(grown, false);
        }
        // MAC rows first so new records can average them.
        let macs: Vec<NodeId> =
            (0..self.graph.n_macs() as u32).map(|m| NodeId::Mac(gem_graph::MacId(m))).collect();
        let recs: Vec<NodeId> =
            (0..self.graph.n_records() as u32).map(|r| NodeId::Record(RecordId(r))).collect();
        for node in macs.into_iter().chain(recs) {
            let row = node_row(node);
            if self.initialized[row] {
                continue;
            }
            let mut acc = vec![0.0f32; d];
            let mut n = 0usize;
            let neighbors: Vec<NodeId> = match node {
                NodeId::Record(r) => {
                    self.graph.record_neighbors(r).map(|(m, _)| NodeId::Mac(m)).collect()
                }
                NodeId::Mac(m) => {
                    self.graph.mac_neighbors(m).map(|(r, _)| NodeId::Record(r)).collect()
                }
            };
            for nbr in neighbors {
                let nrow = node_row(nbr);
                if nrow < self.initialized.len() && self.initialized[nrow] {
                    for (a, &v) in acc.iter_mut().zip(self.base.row(nrow)) {
                        *a += v;
                    }
                    n += 1;
                }
            }
            if n > 0 {
                let norm = acc.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
                for a in &mut acc {
                    *a /= norm;
                }
                self.base.set_row(row, &acc);
            } else {
                let r = init::unit_rows(&mut self.rng, 1, d);
                self.base.set_row(row, r.row(0));
            }
            self.initialized[row] = true;
        }
    }

    fn build_tree(&self, targets: &[NodeId], mut rng: Option<&mut StdRng>) -> Tree {
        let mut layers = vec![targets.to_vec()];
        let mut offsets = Vec::new();
        let mut weights = Vec::new();
        for depth in 0..self.cfg.rounds {
            let s = self.cfg.sample_sizes[depth];
            let cur = &layers[depth];
            let mut next = Vec::new();
            let mut offs = vec![0u32];
            let mut wts = Vec::new();
            for &node in cur {
                let sampled: Vec<NodeId> = match rng.as_deref_mut() {
                    // Uniform sampling: GraphSAGE ignores edge weights.
                    Some(rng) => self
                        .graph
                        .sample_neighbors_uniform(node, s, rng)
                        .into_iter()
                        .map(|(n, _)| n)
                        .collect(),
                    None => {
                        let mut all: Vec<NodeId> = match node {
                            NodeId::Record(r) => self
                                .graph
                                .record_neighbors(r)
                                .map(|(m, _)| NodeId::Mac(m))
                                .collect(),
                            NodeId::Mac(m) => self
                                .graph
                                .mac_neighbors(m)
                                .filter(|&(r, _)| {
                                    self.trusted.get(r.0 as usize).copied().unwrap_or(true)
                                })
                                .map(|(r, _)| NodeId::Record(r))
                                .collect(),
                        };
                        all.truncate(self.cfg.inference_cap);
                        all
                    }
                };
                let w = 1.0 / sampled.len().max(1) as f32;
                for n in sampled {
                    next.push(n);
                    wts.push(w);
                }
                offs.push(next.len() as u32);
            }
            layers.push(next);
            offsets.push(offs);
            weights.push(wts);
        }
        Tree { layers, offsets, weights }
    }

    fn forward(
        &self,
        g: &mut Graph,
        tree: &Tree,
        store: Option<&ParamStore>,
        params: Option<&(Vec<ParamId>, ParamId)>,
    ) -> Var {
        let mut cur: Vec<Var> = tree
            .layers
            .iter()
            .map(|layer| {
                let idx: Vec<u32> = layer.iter().map(|&n| node_row(n) as u32).collect();
                match (store, params) {
                    (Some(s), Some((_, base))) => g.gather(s, *base, &idx),
                    _ => {
                        let mut t = Tensor::zeros(layer.len(), self.cfg.dim);
                        for (i, &r) in idx.iter().enumerate() {
                            t.set_row(i, self.base.row(r as usize));
                        }
                        g.constant(t)
                    }
                }
            })
            .collect();
        for k in 1..=self.cfg.rounds {
            let w_var = match (store, params) {
                (Some(s), Some((w, _))) => g.param(s, w[k - 1]),
                _ => g.constant(self.w[k - 1].clone()),
            };
            let depths = self.cfg.rounds - k;
            let mut new = Vec::with_capacity(depths + 1);
            for d in 0..=depths {
                let agg = g.segment_weighted_sum(
                    cur[d + 1],
                    tree.offsets[d].clone(),
                    tree.weights[d].clone(),
                );
                let cat = g.concat_cols(cur[d], agg);
                let lin = g.matmul(cat, w_var);
                let act = g.activation(lin, self.cfg.activation);
                new.push(g.row_l2_normalize(act));
            }
            cur = new;
        }
        cur[0]
    }

    fn train(&mut self) {
        let mut rng = child_rng(self.cfg.seed, 0x65A70);
        let Some(negatives) = NegativeTable::build(&self.graph, 0.75) else {
            return;
        };
        let mut store = ParamStore::new();
        let w_ids: Vec<ParamId> =
            (0..self.cfg.rounds).map(|k| store.add(format!("w{k}"), self.w[k].clone())).collect();
        let rows = 2 * self.graph.n_records().max(self.graph.n_macs());
        let mut base = Tensor::zeros(rows, self.cfg.dim);
        for i in 0..rows {
            base.set_row(i, self.base.row(i));
        }
        let base_id = store.add("base", base);
        let params = (w_ids, base_id);
        let mut opt = Adam::new(self.cfg.learning_rate);

        for _ in 0..self.cfg.epochs {
            let mut pairs = WalkPairs::generate(&self.graph, self.cfg.walks, &mut rng);
            if pairs.is_empty() {
                break;
            }
            pairs.shuffle(&mut rng);
            for chunk in pairs.pairs.chunks(self.cfg.batch_size) {
                let b = chunk.len();
                let kn = self.cfg.negative_samples;
                let mut targets: Vec<NodeId> = Vec::with_capacity(2 * b + b * kn);
                targets.extend(chunk.iter().map(|&(x, _)| x));
                targets.extend(chunk.iter().map(|&(_, y)| y));
                for &(x, y) in chunk {
                    for _ in 0..kn {
                        targets.push(negatives.sample_excluding(x, y, &mut rng));
                    }
                }
                let tree = self.build_tree(&targets, Some(&mut rng));
                let mut g = Graph::new();
                let z = self.forward(&mut g, &tree, Some(&store), Some(&params));
                let x_idx: Vec<u32> = (0..b as u32).collect();
                let y_idx: Vec<u32> = (b as u32..2 * b as u32).collect();
                let z_idx: Vec<u32> = (2 * b as u32..(2 * b + b * kn) as u32).collect();
                let x_rep: Vec<u32> =
                    (0..b as u32).flat_map(|i| std::iter::repeat_n(i, kn)).collect();
                let zx = g.select_rows(z, &x_idx);
                let zy = g.select_rows(z, &y_idx);
                let zz = g.select_rows(z, &z_idx);
                let zx_rep = g.select_rows(z, &x_rep);
                let pos = g.rows_dot(zx, zy);
                let neg = g.rows_dot(zx_rep, zz);
                let lp = g.bce_with_logits_mean(pos, vec![1.0; b]);
                let ln = g.bce_with_logits_mean(neg, vec![0.0; b * kn]);
                let loss = g.add(lp, ln);
                g.backward(loss, &mut store);
                store.clip_grad_norm(5.0);
                opt.step(&mut store);
                store.zero_grads();
            }
        }
        for k in 0..self.cfg.rounds {
            self.w[k] = store.value(params.0[k]).clone();
        }
        let trained = store.value(params.1);
        for i in 0..trained.rows() {
            self.base.set_row(i, trained.row(i));
        }
        // Same inductive-consistency rule as BiSAGE: record bases are
        // re-derived from MAC bases so streamed records are exchangeable
        // with training records.
        for r in 0..self.graph.n_records() as u32 {
            self.derive_record_base(RecordId(r));
        }
    }

    fn derive_record_base(&mut self, r: RecordId) {
        let d = self.cfg.dim;
        let mut acc = vec![0.0f32; d];
        let mut n = 0usize;
        let nbrs: Vec<NodeId> =
            self.graph.record_neighbors(r).map(|(m, _)| NodeId::Mac(m)).collect();
        for nbr in nbrs {
            let nrow = node_row(nbr);
            if nrow < self.initialized.len() && self.initialized[nrow] {
                for (a, &v) in acc.iter_mut().zip(self.base.row(nrow)) {
                    *a += v;
                }
                n += 1;
            }
        }
        if n == 0 {
            return;
        }
        let norm = acc.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
        for a in &mut acc {
            *a /= norm;
        }
        let row = node_row(NodeId::Record(r));
        self.base.set_row(row, &acc);
        self.initialized[row] = true;
    }

    /// Deterministic embeddings of all current record nodes.
    pub fn embed_all_records(&self) -> Tensor {
        let nodes: Vec<NodeId> =
            (0..self.graph.n_records() as u32).map(|r| NodeId::Record(RecordId(r))).collect();
        if nodes.is_empty() {
            return Tensor::zeros(0, self.cfg.dim);
        }
        let tree = self.build_tree(&nodes, None);
        let mut g = Graph::new();
        let z = self.forward(&mut g, &tree, None, None);
        g.value(z).clone()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }
}

impl Embedder for GraphSage {
    fn embed(&mut self, record: &SignalRecord) -> Option<Vec<f32>> {
        if record.is_empty() || !self.graph.has_known_mac(record) {
            return None;
        }
        let rid = self.graph.add_record(record);
        // Visible to its own expansion, untrusted until classified.
        self.trusted.push(true);
        self.last_added = Some(rid);
        self.ensure_rows();
        self.derive_record_base(rid);
        let tree = self.build_tree(&[NodeId::Record(rid)], None);
        let mut g = Graph::new();
        let z = self.forward(&mut g, &tree, None, None);
        Some(g.value(z).row(0).to_vec())
    }

    fn dim(&self) -> usize {
        self.cfg.dim
    }

    fn feedback(&mut self, outlier: bool) {
        if let Some(rid) = self.last_added.take() {
            self.trusted[rid.0 as usize] = !outlier;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_signal::MacAddr;

    fn mac(i: u64) -> MacAddr {
        MacAddr::from_raw(i)
    }

    fn two_cluster_records() -> RecordSet {
        let mut rs = RecordSet::new();
        for i in 0..10 {
            rs.push(SignalRecord::from_pairs(
                i as f64,
                [(mac(1), -50.0), (mac(2), -60.0), (mac(3), -70.0)],
            ));
        }
        for i in 0..10 {
            rs.push(SignalRecord::from_pairs(
                (10 + i) as f64,
                [(mac(11), -50.0), (mac(12), -60.0), (mac(13), -70.0)],
            ));
        }
        rs
    }

    fn small_cfg() -> GraphSageConfig {
        GraphSageConfig {
            dim: 16,
            epochs: 3,
            learning_rate: 0.01,
            sample_sizes: vec![6, 3],
            ..GraphSageConfig::default()
        }
    }

    #[test]
    fn fit_produces_unit_embeddings() {
        let (gs, emb) = GraphSage::fit(small_cfg(), &two_cluster_records());
        assert_eq!(emb.rows(), 20);
        assert_eq!(emb.cols(), 16);
        for i in 0..emb.rows() {
            let n = emb.row(i).iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4);
        }
        assert_eq!(gs.graph().n_records(), 20);
    }

    #[test]
    fn clusters_separate() {
        let (_, emb) = GraphSage::fit(small_cfg(), &two_cluster_records());
        let dist = |i: usize, j: usize| Tensor::row_distance(&emb, i, &emb, j);
        let within = (dist(0, 5) + dist(11, 17)) / 2.0;
        let between = dist(0, 15);
        assert!(between > within, "between {between} within {within}");
    }

    #[test]
    fn embeds_new_records_and_rejects_aliens() {
        let (mut gs, _) = GraphSage::fit(small_cfg(), &two_cluster_records());
        let known = SignalRecord::from_pairs(99.0, [(mac(1), -55.0), (mac(2), -65.0)]);
        assert_eq!(gs.embed(&known).unwrap().len(), 16);
        let alien = SignalRecord::from_pairs(99.0, [(mac(999), -40.0)]);
        assert!(gs.embed(&alien).is_none());
        assert!(gs.embed(&SignalRecord::new(0.0)).is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let (_, a) = GraphSage::fit(small_cfg(), &two_cluster_records());
        let (_, b) = GraphSage::fit(small_cfg(), &two_cluster_records());
        assert_eq!(a, b);
    }
}
