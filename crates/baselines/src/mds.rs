//! Classical multidimensional scaling baseline ("MDS + OD").
//!
//! Following the paper's convention, pairwise distances are `1 − cosine
//! similarity` between padded signal vectors (missing entries at −120
//! dBm). Training embeddings come from double-centering + the top-`d`
//! eigenpairs (via the Jacobi solver); streamed records are embedded with
//! the standard Gower/landmark out-of-sample formula.

use gem_core::pipeline::Embedder;
use gem_nn::linalg::{double_center, jacobi_eigen, EigenDecomposition};
use gem_nn::Tensor;
use gem_signal::{PaddedMatrix, RecordSet, SignalRecord, RSS_PAD_DBM};

/// The fitted MDS model.
pub struct Mds {
    /// Embedding dimension.
    pub dim: usize,
    universe: PaddedMatrix,
    /// Shifted training vectors (pad-relative, for cosine).
    train_rows: Vec<Vec<f32>>,
    eigen: EigenDecomposition,
    /// Column means of the squared-distance matrix (out-of-sample term).
    d2_col_mean: Vec<f64>,
    /// Eigenvalues actually used (positive ones, up to `dim`).
    used: usize,
}

fn shift(pad: f32, row: &[f32]) -> Vec<f32> {
    // Shift so the pad value maps to 0: cosine similarity then reflects
    // shared *presence and strength* rather than shared absence.
    row.iter().map(|&v| v - pad).collect()
}

fn cosine_distance(a: &[f32], b: &[f32]) -> f64 {
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        dot += (x as f64) * (y as f64);
        na += (x as f64) * (x as f64);
        nb += (y as f64) * (y as f64);
    }
    if na <= 0.0 || nb <= 0.0 {
        return 1.0;
    }
    (1.0 - dot / (na.sqrt() * nb.sqrt())).max(0.0)
}

impl Mds {
    /// Fits classical MDS on the training records; returns the model and
    /// the training embeddings.
    pub fn fit(dim: usize, train: &RecordSet) -> (Mds, Tensor) {
        assert!(!train.is_empty(), "MDS needs training data");
        let universe = train.to_matrix(RSS_PAD_DBM);
        let n = universe.rows;
        let train_rows: Vec<Vec<f32>> =
            (0..n).map(|i| shift(universe.pad, universe.row(i))).collect();
        let mut d2 = vec![0.0f64; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = cosine_distance(&train_rows[i], &train_rows[j]);
                d2[i * n + j] = d * d;
                d2[j * n + i] = d * d;
            }
        }
        let d2_col_mean: Vec<f64> =
            (0..n).map(|j| (0..n).map(|i| d2[i * n + j]).sum::<f64>() / n as f64).collect();
        let b = double_center(n, &d2);
        let eigen = jacobi_eigen(b, 1e-9, 60);
        let used = eigen.values.iter().take(dim).filter(|&&v| v > 1e-9).count();

        let mut emb = Tensor::zeros(n, dim);
        for i in 0..n {
            for k in 0..used {
                emb[(i, k)] = (eigen.values[k].sqrt() * eigen.vector_component(k, i)) as f32;
            }
        }
        (Mds { dim, universe, train_rows, eigen, d2_col_mean, used }, emb)
    }

    /// Out-of-sample embedding (Gower's formula): for a new point with
    /// squared distances `δ` to the training points,
    /// `y_k = v_kᵀ (δ̄ − δ) / (2 √λ_k)`.
    fn embed_distances(&self, d2_new: &[f64]) -> Vec<f32> {
        let n = self.train_rows.len();
        let mut out = vec![0.0f32; self.dim];
        for (k, slot) in out.iter_mut().enumerate().take(self.used) {
            let lambda = self.eigen.values[k];
            let mut acc = 0.0f64;
            for (i, &d2) in d2_new.iter().enumerate().take(n) {
                acc += self.eigen.vector_component(k, i) * (self.d2_col_mean[i] - d2);
            }
            *slot = (acc / (2.0 * lambda.sqrt())) as f32;
        }
        out
    }
}

impl Embedder for Mds {
    fn embed(&mut self, record: &SignalRecord) -> Option<Vec<f32>> {
        if record.is_empty() {
            return None;
        }
        let (row, dropped) = self.universe.project(record);
        if dropped == record.len() {
            return None;
        }
        let shifted = shift(self.universe.pad, &row);
        let d2: Vec<f64> = self
            .train_rows
            .iter()
            .map(|t| {
                let d = cosine_distance(&shifted, t);
                d * d
            })
            .collect();
        Some(self.embed_distances(&d2))
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_signal::MacAddr;

    fn mac(i: u64) -> MacAddr {
        MacAddr::from_raw(i)
    }

    fn two_cluster_records() -> RecordSet {
        let mut rs = RecordSet::new();
        for i in 0..8 {
            rs.push(SignalRecord::from_pairs(
                i as f64,
                [(mac(1), -45.0 - (i % 3) as f32), (mac(2), -55.0)],
            ));
        }
        for i in 0..8 {
            rs.push(SignalRecord::from_pairs(
                (8 + i) as f64,
                [(mac(11), -45.0), (mac(12), -55.0 - (i % 3) as f32)],
            ));
        }
        rs
    }

    #[test]
    fn training_embeddings_preserve_cluster_structure() {
        let (_, emb) = Mds::fit(8, &two_cluster_records());
        let d = |i: usize, j: usize| Tensor::row_distance(&emb, i, &emb, j);
        assert!(d(0, 4) < d(0, 12), "within {} between {}", d(0, 4), d(0, 12));
        assert!(d(9, 13) < d(9, 3));
    }

    #[test]
    fn embedding_distances_match_input_distances() {
        // With full rank, MDS reproduces the pairwise distances.
        let rs = two_cluster_records();
        let (mds, emb) = Mds::fit(16, &rs);
        let a = shift(RSS_PAD_DBM, mds.universe.row(0));
        let b = shift(RSS_PAD_DBM, mds.universe.row(12));
        let want = cosine_distance(&a, &b);
        let got = Tensor::row_distance(&emb, 0, &emb, 12) as f64;
        assert!((got - want).abs() < 0.05, "want {want} got {got}");
    }

    #[test]
    fn out_of_sample_lands_near_its_cluster() {
        let rs = two_cluster_records();
        let (mut mds, emb) = Mds::fit(8, &rs);
        let new = SignalRecord::from_pairs(99.0, [(mac(1), -46.0), (mac(2), -56.0)]);
        let y = mds.embed(&new).unwrap();
        let yt = Tensor::from_vec(1, y.len(), y);
        let d_a: f32 = (0..8).map(|i| Tensor::row_distance(&yt, 0, &emb, i)).sum::<f32>() / 8.0;
        let d_b: f32 = (8..16).map(|i| Tensor::row_distance(&yt, 0, &emb, i)).sum::<f32>() / 8.0;
        assert!(d_a < d_b, "cluster A {d_a} vs B {d_b}");
    }

    #[test]
    fn rejects_unembeddable_records() {
        let (mut mds, _) = Mds::fit(8, &two_cluster_records());
        assert!(mds.embed(&SignalRecord::new(0.0)).is_none());
        let alien = SignalRecord::from_pairs(0.0, [(mac(777), -40.0)]);
        assert!(mds.embed(&alien).is_none());
    }

    #[test]
    fn identical_record_embeds_like_training_row() {
        let rs = two_cluster_records();
        let (mut mds, emb) = Mds::fit(8, &rs);
        let same = rs.records()[0].clone();
        let y = mds.embed(&same).unwrap();
        let yt = Tensor::from_vec(1, y.len(), y);
        let d = Tensor::row_distance(&yt, 0, &emb, 0);
        assert!(d < 0.05, "distance to own training embedding {d}");
    }
}
