//! Isolation forest (Liu, Ting & Zhou, 2008) — "BiSAGE + iForest".

use rand::rngs::StdRng;
use rand::RngExt;

use gem_core::pipeline::OutlierModel;
use gem_nn::Tensor;
use gem_signal::rng::child_rng;

/// One node of an isolation tree.
enum Node {
    Split { dim: usize, value: f32, left: Box<Node>, right: Box<Node> },
    Leaf { size: usize },
}

/// Average unsuccessful-search path length in a BST of `n` nodes — the
/// normalizer `c(n)` from the paper.
fn c(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let n = n as f64;
    2.0 * ((n - 1.0).ln() + 0.577_215_664_9) - 2.0 * (n - 1.0) / n
}

fn build(points: &mut Vec<Vec<f32>>, depth: usize, max_depth: usize, rng: &mut StdRng) -> Node {
    if points.len() <= 1 || depth >= max_depth {
        return Node::Leaf { size: points.len() };
    }
    let dims = points[0].len();
    // Find a dimension with spread; give up after a few attempts.
    for _ in 0..dims.max(4) {
        let dim = rng.random_range(0..dims);
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for p in points.iter() {
            lo = lo.min(p[dim]);
            hi = hi.max(p[dim]);
        }
        if hi <= lo {
            continue;
        }
        let value = rng.random_range(lo..hi);
        let (mut left, mut right) = (Vec::new(), Vec::new());
        for p in points.drain(..) {
            if p[dim] < value {
                left.push(p);
            } else {
                right.push(p);
            }
        }
        return Node::Split {
            dim,
            value,
            left: Box::new(build(&mut left, depth + 1, max_depth, rng)),
            right: Box::new(build(&mut right, depth + 1, max_depth, rng)),
        };
    }
    Node::Leaf { size: points.len() }
}

fn path_length(node: &Node, point: &[f32], depth: f64) -> f64 {
    match node {
        Node::Leaf { size } => depth + c(*size),
        Node::Split { dim, value, left, right } => {
            if point[*dim] < *value {
                path_length(left, point, depth + 1.0)
            } else {
                path_length(right, point, depth + 1.0)
            }
        }
    }
}

/// An isolation forest fitted on embedding vectors.
pub struct IsolationForest {
    trees: Vec<Node>,
    /// Subsample size used per tree.
    pub subsample: usize,
    /// Decision threshold on the anomaly score.
    pub threshold: f64,
}

impl IsolationForest {
    /// Fits `n_trees` trees on subsamples of `subsample` points and sets
    /// the decision threshold at the `1 − contamination` quantile of the
    /// training scores.
    pub fn fit(
        train: &Tensor,
        n_trees: usize,
        subsample: usize,
        contamination: f64,
        seed: u64,
    ) -> Self {
        assert!(train.rows() > 0, "iForest needs training data");
        let mut rng = child_rng(seed, 0x1F0); // forest-level stream
        let psi = subsample.min(train.rows()).max(2);
        let max_depth = (psi as f64).log2().ceil() as usize + 1;
        let trees: Vec<Node> = (0..n_trees)
            .map(|_| {
                let mut sample: Vec<Vec<f32>> = (0..psi)
                    .map(|_| train.row(rng.random_range(0..train.rows())).to_vec())
                    .collect();
                build(&mut sample, 0, max_depth, &mut rng)
            })
            .collect();
        let mut model = IsolationForest { trees, subsample: psi, threshold: 0.5 };
        let mut scores: Vec<f64> =
            (0..train.rows()).map(|i| model.anomaly_score(train.row(i))).collect();
        scores.sort_by(|a, b| a.total_cmp(b));
        let idx = (((train.rows() - 1) as f64) * (1.0 - contamination)) as usize;
        model.threshold = scores[idx];
        model
    }

    /// The standard iForest anomaly score `2^{-E[h(x)] / c(ψ)}` in
    /// `(0, 1)`; higher = more anomalous.
    pub fn anomaly_score(&self, point: &[f32]) -> f64 {
        let mean_path: f64 = self.trees.iter().map(|t| path_length(t, point, 0.0)).sum::<f64>()
            / self.trees.len() as f64;
        2f64.powf(-mean_path / c(self.subsample).max(1e-9))
    }
}

impl OutlierModel for IsolationForest {
    fn score(&self, sample: &[f32]) -> f64 {
        self.anomaly_score(sample)
    }

    fn is_outlier(&self, sample: &[f32]) -> bool {
        self.anomaly_score(sample) > self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pseudo-random (distinct, dense) cluster in the unit cube.
    fn cluster() -> Tensor {
        Tensor::from_fn(128, 4, |i, j| (((i * 7919 + j * 104_729 + 41) % 997) as f32) / 997.0)
    }

    fn fit() -> IsolationForest {
        IsolationForest::fit(&cluster(), 60, 64, 0.05, 7)
    }

    #[test]
    fn outliers_score_higher_than_inliers() {
        let f = fit();
        let inlier = [0.5f32, 0.5, 0.5, 0.5];
        let outlier = [4.0f32, -3.0, 5.0, -2.0];
        assert!(f.anomaly_score(&outlier) > f.anomaly_score(&inlier) + 0.1);
    }

    #[test]
    fn decision_respects_threshold() {
        let f = fit();
        assert!(f.is_outlier(&[4.0, -3.0, 5.0, -2.0]));
        assert!(!f.is_outlier(&[0.5, 0.5, 0.5, 0.5]));
    }

    #[test]
    fn contamination_bounds_training_rejections() {
        let f = fit();
        let train = cluster();
        let rejected = (0..train.rows()).filter(|&i| f.is_outlier(train.row(i))).count();
        assert!(rejected <= train.rows() / 10, "rejected {rejected}");
    }

    #[test]
    fn scores_are_in_unit_interval() {
        let f = fit();
        for p in [[0.0f32, 0.0, 0.0, 0.0], [9.0, 9.0, 9.0, 9.0]] {
            let s = f.anomaly_score(&p);
            assert!((0.0..=1.0).contains(&s), "score {s}");
        }
    }

    #[test]
    fn c_matches_known_values() {
        assert_eq!(c(1), 0.0);
        assert!((c(2) - 2.0 * (0.577_215_664_9) + 1.0).abs() < 1e-6);
        assert!(c(256) > c(64));
    }
}
