//! Local outlier factor (Breunig et al., 2000) — "BiSAGE + LOF".
//!
//! Fitted on the training embeddings; query points are scored against the
//! training set as reference (the one-class usage of Table I).

use gem_core::pipeline::OutlierModel;
use gem_nn::Tensor;

/// A fitted LOF reference set.
pub struct Lof {
    points: Vec<Vec<f32>>,
    k: usize,
    /// Local reachability density of each training point.
    lrd: Vec<f64>,
    /// k-distance of each training point.
    k_dist: Vec<f64>,
    /// Decision threshold on the LOF score.
    pub threshold: f64,
}

fn dist(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| ((x - y) as f64).powi(2)).sum::<f64>().sqrt()
}

/// Indices and distances of the `k` nearest points to `q` among
/// `points`, excluding index `skip` (pass `usize::MAX` to keep all).
fn knn(points: &[Vec<f32>], q: &[f32], k: usize, skip: usize) -> Vec<(usize, f64)> {
    let mut all: Vec<(usize, f64)> = points
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != skip)
        .map(|(i, p)| (i, dist(q, p)))
        .collect();
    all.sort_by(|a, b| a.1.total_cmp(&b.1));
    all.truncate(k);
    all
}

impl Lof {
    /// Fits LOF with neighborhood size `k`; the threshold is the
    /// `1 − contamination` quantile of leave-one-out training LOF scores.
    pub fn fit(train: &Tensor, k: usize, contamination: f64) -> Self {
        let n = train.rows();
        assert!(n > k + 1, "LOF needs more than k+1 training points");
        let points: Vec<Vec<f32>> = (0..n).map(|i| train.row(i).to_vec()).collect();

        // k-distance of every training point (leave-one-out).
        let neighbors: Vec<Vec<(usize, f64)>> =
            (0..n).map(|i| knn(&points, &points[i], k, i)).collect();
        let k_dist: Vec<f64> = neighbors.iter().map(|nb| nb.last().map_or(0.0, |x| x.1)).collect();

        // Local reachability densities.
        let lrd: Vec<f64> = (0..n)
            .map(|i| {
                let sum: f64 = neighbors[i].iter().map(|&(j, d)| d.max(k_dist[j])).sum();
                neighbors[i].len() as f64 / sum.max(1e-12)
            })
            .collect();

        let mut model = Lof { points, k, lrd, k_dist, threshold: 1.5 };
        let mut scores: Vec<f64> = (0..n)
            .map(|i| {
                let nb = &neighbors[i];
                let mean_lrd: f64 =
                    nb.iter().map(|&(j, _)| model.lrd[j]).sum::<f64>() / nb.len() as f64;
                mean_lrd / model.lrd[i].max(1e-12)
            })
            .collect();
        scores.sort_by(|a, b| a.total_cmp(b));
        let idx = (((n - 1) as f64) * (1.0 - contamination)) as usize;
        model.threshold = scores[idx];
        model
    }

    /// LOF score of a query point against the training reference
    /// (≈1 for inliers, ≫1 for outliers).
    pub fn lof_score(&self, q: &[f32]) -> f64 {
        let nb = knn(&self.points, q, self.k, usize::MAX);
        let reach_sum: f64 = nb.iter().map(|&(j, d)| d.max(self.k_dist[j])).sum();
        let lrd_q = nb.len() as f64 / reach_sum.max(1e-12);
        let mean_lrd: f64 = nb.iter().map(|&(j, _)| self.lrd[j]).sum::<f64>() / nb.len() as f64;
        mean_lrd / lrd_q.max(1e-12)
    }
}

impl OutlierModel for Lof {
    fn score(&self, sample: &[f32]) -> f64 {
        self.lof_score(sample)
    }

    fn is_outlier(&self, sample: &[f32]) -> bool {
        self.lof_score(sample) > self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pseudo-random (distinct, dense) cluster in the unit cube.
    fn cluster() -> Tensor {
        Tensor::from_fn(80, 3, |i, j| (((i * 7919 + j * 104_729 + 13) % 997) as f32) / 997.0)
    }

    #[test]
    fn inliers_score_near_one() {
        let train = cluster();
        let lof = Lof::fit(&train, 10, 0.05);
        let s = lof.lof_score(train.row(17));
        assert!(s < 1.3, "inlier LOF {s}");
    }

    #[test]
    fn outliers_score_much_higher() {
        let train = cluster();
        let lof = Lof::fit(&train, 10, 0.05);
        let s_in = lof.lof_score(train.row(3));
        let s_out = lof.lof_score(&[6.0, -6.0, 6.0]);
        assert!(s_out > 3.0 * s_in, "in {s_in} out {s_out}");
        assert!(lof.is_outlier(&[6.0, -6.0, 6.0]));
        assert!(!lof.is_outlier(train.row(3)));
    }

    #[test]
    fn training_rejection_rate_respects_contamination() {
        let train = cluster();
        let lof = Lof::fit(&train, 10, 0.05);
        // Score each training point with itself present in the
        // reference; near-duplicates keep scores low.
        let rejected = (0..train.rows()).filter(|&i| lof.is_outlier(train.row(i))).count();
        assert!(rejected <= train.rows() / 8, "rejected {rejected}");
    }

    #[test]
    #[should_panic(expected = "more than k+1")]
    fn rejects_tiny_training_sets() {
        Lof::fit(&Tensor::zeros(5, 2), 10, 0.05);
    }
}
