//! Feature bagging for outlier detection (Lazarevic & Kumar, 2005) —
//! "BiSAGE + Feature bagging".
//!
//! An ensemble of LOF detectors, each fitted on a random feature subset
//! of size between `⌈d/2⌉` and `d − 1`; member scores are combined by
//! cumulative sum, the paper's breadth-first variant's simpler sibling.

use rand::RngExt;

use gem_core::pipeline::OutlierModel;
use gem_nn::Tensor;
use gem_signal::rng::child_rng;

use crate::lof::Lof;

/// One ensemble member: a feature subset and a LOF model over it.
struct Member {
    features: Vec<usize>,
    lof: Lof,
}

/// The fitted feature-bagging ensemble.
pub struct FeatureBagging {
    members: Vec<Member>,
    /// Decision threshold on the combined score.
    pub threshold: f64,
}

fn project(features: &[usize], sample: &[f32]) -> Vec<f32> {
    features.iter().map(|&j| sample[j]).collect()
}

impl FeatureBagging {
    /// Fits `n_members` LOF detectors on random feature subsets.
    pub fn fit(train: &Tensor, n_members: usize, k: usize, contamination: f64, seed: u64) -> Self {
        let d = train.cols();
        assert!(d >= 2, "feature bagging needs at least two features");
        let mut rng = child_rng(seed, 0xFBA6);
        let members: Vec<Member> = (0..n_members)
            .map(|_| {
                let size = rng.random_range(d.div_ceil(2)..d.max(d / 2 + 2));
                let size = size.clamp(1, d);
                // Partial Fisher–Yates to pick `size` distinct features.
                let mut all: Vec<usize> = (0..d).collect();
                for i in 0..size {
                    let j = rng.random_range(i..d);
                    all.swap(i, j);
                }
                let features: Vec<usize> = all[..size].to_vec();
                let mut sub = Tensor::zeros(train.rows(), size);
                for i in 0..train.rows() {
                    sub.set_row(i, &project(&features, train.row(i)));
                }
                Member { features, lof: Lof::fit(&sub, k.min(train.rows() - 2), contamination) }
            })
            .collect();
        let mut model = FeatureBagging { members, threshold: 0.0 };
        let mut scores: Vec<f64> =
            (0..train.rows()).map(|i| model.combined_score(train.row(i))).collect();
        scores.sort_by(|a, b| a.total_cmp(b));
        let idx = (((train.rows() - 1) as f64) * (1.0 - contamination)) as usize;
        model.threshold = scores[idx];
        model
    }

    /// Cumulative-sum combination of member LOF scores.
    pub fn combined_score(&self, sample: &[f32]) -> f64 {
        self.members.iter().map(|m| m.lof.lof_score(&project(&m.features, sample))).sum()
    }
}

impl OutlierModel for FeatureBagging {
    fn score(&self, sample: &[f32]) -> f64 {
        self.combined_score(sample)
    }

    fn is_outlier(&self, sample: &[f32]) -> bool {
        self.combined_score(sample) > self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pseudo-random (distinct, dense) cluster in the unit cube.
    fn cluster() -> Tensor {
        Tensor::from_fn(70, 5, |i, j| (((i * 7919 + j * 104_729 + 7) % 997) as f32) / 997.0)
    }

    #[test]
    fn combined_scores_separate_outliers() {
        let train = cluster();
        let fb = FeatureBagging::fit(&train, 8, 10, 0.05, 3);
        let s_in = fb.combined_score(train.row(11));
        let s_out = fb.combined_score(&[7.0, -7.0, 7.0, -7.0, 7.0]);
        assert!(s_out > 2.0 * s_in, "in {s_in} out {s_out}");
        assert!(fb.is_outlier(&[7.0, -7.0, 7.0, -7.0, 7.0]));
        assert!(!fb.is_outlier(train.row(11)));
    }

    #[test]
    fn members_use_distinct_subsets() {
        let fb = FeatureBagging::fit(&cluster(), 10, 10, 0.05, 3);
        assert_eq!(fb.members.len(), 10);
        for m in &fb.members {
            assert!(m.features.len() >= 2);
            assert!(m.features.len() <= 5);
            let mut f = m.features.clone();
            f.sort_unstable();
            f.dedup();
            assert_eq!(f.len(), m.features.len(), "features must be distinct");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = FeatureBagging::fit(&cluster(), 6, 8, 0.05, 9);
        let b = FeatureBagging::fit(&cluster(), 6, 8, 0.05, 9);
        let p = [0.4f32, 0.6, 0.2, 0.8, 0.1];
        assert_eq!(a.combined_score(&p), b.combined_score(&p));
    }
}
